"""M/D/1 queueing model of a supernode's uplink.

A supernode serving ``k`` players receives one segment per player per
cadence tick, with near-deterministic service time (segment bytes over
the uplink rate). Poisson-izing the arrival process (player phases are
independent and uniform) gives an M/D/1 queue, whose mean waiting time is
the Pollaczek–Khinchine formula with zero service variance:

    W = ρ · E[S] / (2 · (1 − ρ))

The model predicts two things the DES must agree with:

* the *saturation knee*: satisfaction collapses where offered load
  crosses the uplink (ρ → 1), i.e. at ``k* = uplink / mean_bitrate``;
* the *latency inflation* at moderate load: observed queueing delay in
  the DES should track W within a small factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streaming.video import (
    SEGMENT_DURATION_S,
    highest_level_for_latency,
)
from repro.workload.games import GAMES


@dataclass(frozen=True, slots=True)
class MD1Model:
    """An M/D/1 queue: Poisson arrivals, deterministic service."""

    arrival_rate_per_s: float
    service_time_s: float

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s < 0 or self.service_time_s <= 0:
            raise ValueError("rates must be nonnegative, service positive")

    @property
    def utilization(self) -> float:
        """ρ = λ · E[S]."""
        return self.arrival_rate_per_s * self.service_time_s

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    @property
    def mean_wait_s(self) -> float:
        """Mean time in queue (excluding service); ∞ when unstable."""
        rho = self.utilization
        if rho >= 1.0:
            return float("inf")
        return rho * self.service_time_s / (2.0 * (1.0 - rho))

    @property
    def mean_sojourn_s(self) -> float:
        """Mean time in system (queue + service)."""
        return self.mean_wait_s + self.service_time_s

    def wait_quantile_s(self, q: float) -> float:
        """Approximate waiting-time quantile via the exponential-tail
        heavy-traffic approximation W_q ≈ W · (−ln(1−q))."""
        if not 0.0 <= q < 1.0:
            raise ValueError("q must lie in [0, 1)")
        w = self.mean_wait_s
        if not np.isfinite(w):
            return float("inf")
        return float(w * -np.log(1.0 - q))


def mean_initial_bitrate_bps() -> float:
    """Mean of the games' initial encoding bitrates (uniform game mix)."""
    return float(np.mean([
        highest_level_for_latency(g.latency_req_s).bitrate_bps
        for g in GAMES
    ]))


def supernode_uplink_model(
    n_players: int,
    uplink_rate_bps: float,
    bitrate_bps: float | None = None,
    segment_interval_s: float = SEGMENT_DURATION_S,
) -> MD1Model:
    """The M/D/1 model of one supernode's uplink under ``n_players``."""
    if n_players < 0 or uplink_rate_bps <= 0:
        raise ValueError("invalid player count or uplink rate")
    rate = n_players / segment_interval_s  # segments per second
    mean_bitrate = (bitrate_bps if bitrate_bps is not None
                    else mean_initial_bitrate_bps())
    segment_bytes = mean_bitrate * segment_interval_s / 8.0
    service = 8.0 * segment_bytes / uplink_rate_bps
    return MD1Model(arrival_rate_per_s=rate, service_time_s=service)


def saturation_players(
    uplink_rate_bps: float,
    bitrate_bps: float | None = None,
) -> float:
    """k* — the player count at which the uplink saturates (ρ = 1)."""
    mean_bitrate = (bitrate_bps if bitrate_bps is not None
                    else mean_initial_bitrate_bps())
    return uplink_rate_bps / mean_bitrate


def predicted_queue_delay_s(
    n_players: int,
    uplink_rate_bps: float,
    bitrate_bps: float | None = None,
) -> float:
    """Predicted mean queueing delay per segment (∞ past saturation)."""
    return supernode_uplink_model(
        n_players, uplink_rate_bps, bitrate_bps).mean_wait_s
