"""Closed-form analysis used to cross-validate the simulator.

The discrete-event results should not be taken on faith: where queueing
theory has an answer, the simulator must agree with it. This package
holds those answers — the M/D/1 model of a supernode's uplink and the
derived saturation/deadline predictions — and the test suite checks the
DES against them (`tests/analysis/`).
"""

from repro.analysis.queueing import (
    MD1Model,
    saturation_players,
    supernode_uplink_model,
)

__all__ = ["MD1Model", "saturation_players", "supernode_uplink_model"]
