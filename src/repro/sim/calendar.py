"""Calendar-queue future event list (Brown, CACM 1988).

A bucketed alternative to the binary heap behind
:class:`~repro.sim.engine.Environment`. Events hash into ``n_buckets``
time slots of ``width`` seconds each; the slots wrap around like days on
a wall calendar, so one bucket holds every event whose timestamp lands
on "its day of any year". Dequeue walks the calendar from the current
day forward and pops the first event dated in the day being examined;
enqueue drops an event straight into its day's bucket. With the bucket
count tracking the queue size (doubling/halving on thresholds) both
operations are amortized O(1), versus the heap's O(log n) — the
difference that makes million-player event populations affordable
(DESIGN.md §11).

Determinism contract
--------------------
The queue's total order is ``(time, seq)`` — *exactly* the heap's
order. Equal timestamps always land in the same bucket, where the
per-bucket sort breaks the tie by ``seq`` (insertion order). A
simulation therefore pops the identical event sequence from either
structure, which is what lets the golden-digest tests demand
byte-identical traces from the heap and calendar kernels.

Day membership is decided by the integer day number
``int(time * inv_width)`` — the same expression that buckets an event
on push — never by accumulated floating-point day boundaries, so an
event can never straddle a day edge by a rounding ULP and be popped
out of order.

Implementation notes
--------------------
* Each bucket is a list sorted ascending by ``(time, seq)`` with a
  *consumed-head offset*: pops advance the offset (O(1)) and the dead
  prefix is compacted away once it outweighs the live tail, amortized
  O(1) per pop. Crucially, a tick-synchronised simulation pushes runs
  of events with the *same* timestamp and increasing ``seq`` — in
  ascending order those land at the tail, so ``bisect.insort`` degrades
  to an append instead of a front-insert memmove.
* The bucket located as holding the minimum is cached and kept valid
  across pushes (an event dated after the cursor's day can never beat
  the located head; one dated before *is* the new minimum) so
  steady-state pop/peek does no scanning at all.
* Timestamps must be nonnegative and finite (the engine never schedules
  in the past, and ``float("inf")`` would break the day arithmetic).
* A full lap of the calendar without a hit (every event lives in a
  future year) falls back to a direct minimum scan and jumps the
  cursor to the minimum's day — the standard escape for sparse queues.
"""

from __future__ import annotations

from bisect import insort
from heapq import nsmallest
from typing import Any

_INF = float("inf")


class CalendarQueue:
    """Bucketed priority queue over ``(time, seq)`` keys.

    Parameters
    ----------
    n_buckets:
        Initial bucket count (rounded up to a power of two).
    width_s:
        Initial bucket width in seconds. Both parameters are retuned
        automatically as the queue grows and shrinks; the defaults only
        matter until the first resize at ~32 events.
    """

    #: Bucket-count floor (and initial size); always a power of two.
    MIN_BUCKETS = 8
    #: Resize up when ``size > GROW_FACTOR * n_buckets`` …
    GROW_FACTOR = 2
    #: … and down when ``size * SHRINK_FACTOR < n_buckets``.
    SHRINK_FACTOR = 8
    #: Events sampled from the queue head when re-estimating the width.
    WIDTH_SAMPLE = 64
    #: Width multiplier over the mean head inter-event gap: a few events
    #: per day keeps both the insort and the day scan O(1).
    WIDTH_GAIN = 3.0
    #: Width floor, guarding against a degenerate all-ties estimate.
    MIN_WIDTH_S = 1e-9
    #: Compact a bucket's consumed prefix once it reaches this length
    #: *and* outweighs the live tail.
    COMPACT_THRESHOLD = 64

    __slots__ = ("_buckets", "_heads", "_mask", "_width", "_inv_width",
                 "_size", "_cur_day", "_located", "_grow_above",
                 "_shrink_below")

    def __init__(self, n_buckets: int = MIN_BUCKETS,
                 width_s: float = 1.0):
        nb = self.MIN_BUCKETS
        while nb < n_buckets:
            nb *= 2
        if width_s <= 0:
            raise ValueError(f"bucket width must be positive, got {width_s}")
        self._buckets: list[list[tuple[float, int, Any]]] = [
            [] for _ in range(nb)]
        #: Per-bucket consumed-head offsets (entries before are dead).
        self._heads: list[int] = [0] * nb
        self._mask = nb - 1
        self._width = float(width_s)
        self._inv_width = 1.0 / self._width
        self._size = 0
        #: Cursor: the integer day currently under examination.
        #: Invariant: no queued event is dated on an earlier day.
        self._cur_day = 0
        #: Bucket index holding the global minimum; -1 when unknown.
        #: Invariant when >= 0: that bucket's head entry is dated
        #: ``_cur_day`` and is the queue's least ``(time, seq)``.
        self._located = -1
        self._set_thresholds(nb)

    def _set_thresholds(self, nb: int) -> None:
        """Precompute the resize triggers (hot-path comparisons)."""
        self._grow_above = self.GROW_FACTOR * nb
        # size * SHRINK_FACTOR < nb  ⟺  size < nb // SHRINK_FACTOR
        # (nb is a power of two ≥ MIN_BUCKETS, so the division is exact).
        self._shrink_below = (nb // self.SHRINK_FACTOR
                              if nb > self.MIN_BUCKETS else 0)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def n_buckets(self) -> int:
        return self._mask + 1

    @property
    def width_s(self) -> float:
        return self._width

    def __repr__(self) -> str:
        return (f"<CalendarQueue size={self._size} "
                f"buckets={self.n_buckets} width={self._width:g}>")

    # -- core operations ---------------------------------------------------
    def push(self, time: float, seq: int, item: Any) -> None:
        """Insert ``item`` keyed by ``(time, seq)``."""
        if not time >= 0.0 or time == _INF:
            raise ValueError(
                f"calendar queue times must be finite and >= 0, got {time}")
        day = int(time * self._inv_width)
        idx = day & self._mask
        insort(self._buckets[idx], (time, seq, item), lo=self._heads[idx])
        size = self._size = self._size + 1
        if day < self._cur_day:
            # Earlier than every queued event: it is the new minimum,
            # so rewind the cursor and point the cache at its bucket.
            self._cur_day = day
            self._located = idx
        if size > self._grow_above:
            self._resize((self._mask + 1) * 2)

    def pop(self) -> tuple[float, int, Any]:
        """Remove and return the least ``(time, seq, item)`` entry."""
        idx = self._located
        if idx < 0:
            idx = self._locate()
            if idx < 0:
                raise IndexError("pop from an empty CalendarQueue")
        b = self._buckets[idx]
        head = self._heads[idx]
        entry = b[head]
        head += 1
        if head >= self.COMPACT_THRESHOLD and head * 2 >= len(b):
            del b[:head]
            head = 0
        self._heads[idx] = head
        size = self._size = self._size - 1
        # Keep the cache warm: with a few events per day, the next
        # minimum usually sits right behind the popped one.
        if not (head < len(b)
                and int(b[head][0] * self._inv_width) == self._cur_day):
            self._located = -1
        if size < self._shrink_below:
            self._resize((self._mask + 1) // 2)
        return entry

    def peek_time(self) -> float:
        """Timestamp of the least entry, or ``inf`` when empty."""
        idx = self._located
        if idx < 0:
            idx = self._locate()
            if idx < 0:
                return _INF
        return self._buckets[idx][self._heads[idx]][0]

    # -- internals ---------------------------------------------------------
    def _locate(self) -> int:
        """Find the bucket holding the minimum entry; -1 when empty.

        Advances the persistent day cursor and refreshes the
        located-bucket cache.
        """
        if self._size == 0:
            return -1
        day = self._cur_day
        inv_width = self._inv_width
        mask = self._mask
        buckets = self._buckets
        heads = self._heads
        for day in range(day, day + mask + 1):
            idx = day & mask
            b = buckets[idx]
            h = heads[idx]
            if h < len(b) and int(b[h][0] * inv_width) == day:
                self._cur_day = day
                self._located = idx
                return idx
        # A whole year without a hit: every event lives in a later year.
        # Direct-search the minimum and jump the calendar to its day.
        best = -1
        best_key = (_INF, _INF)
        for idx, b in enumerate(buckets):
            h = heads[idx]
            if h >= len(b):
                continue
            key = (b[h][0], b[h][1])
            if key < best_key:
                best_key = key
                best = idx
        self._cur_day = int(best_key[0] * inv_width)
        self._located = best
        return best

    def _resize(self, n_buckets: int) -> None:
        """Re-bucket every entry into ``n_buckets`` slots, retuning width."""
        entries = [e for idx, b in enumerate(self._buckets)
                   for e in b[self._heads[idx]:]]
        entries.sort()
        self._width = self._estimate_width(entries)
        self._inv_width = 1.0 / self._width
        self._buckets = [[] for _ in range(n_buckets)]
        self._heads = [0] * n_buckets
        self._mask = n_buckets - 1
        self._set_thresholds(n_buckets)
        # Entries arrive in ascending (time, seq) order, so appending
        # preserves each bucket's sort.
        for entry in entries:
            self._buckets[int(entry[0] * self._inv_width)
                          & self._mask].append(entry)
        self._cur_day = int(entries[0][0] * self._inv_width) if entries else 0
        self._located = -1

    def _estimate_width(self, entries: list) -> float:
        """Bucket width from the head of the queue (Brown's heuristic).

        A few times the mean gap between the earliest events puts O(1)
        events in each day near the cursor, which is where all the work
        happens. The tail's distribution is irrelevant: far-future
        events just wait in their bucket across many years.
        """
        if len(entries) < 2:
            return self._width
        head = nsmallest(min(self.WIDTH_SAMPLE, len(entries)), entries)
        span = head[-1][0] - head[0][0]
        if span <= 0.0:
            return self._width  # all ties: any width is equivalent
        return max(self.WIDTH_GAIN * span / (len(head) - 1),
                   self.MIN_WIDTH_S)
