"""Named random-number substreams.

Every stochastic component of the reproduction (arrival process, session
lengths, node capacities, latency jitter, game choice, ...) draws from its
own named substream derived from a single master seed via numpy's
``SeedSequence.spawn`` machinery. Two benefits:

* a run is reproducible bit-for-bit from ``(master_seed, code)``;
* changing how often one component draws does not perturb any other
  component's stream, so A/B comparisons (e.g. CloudFog/B vs CloudFog/A
  on the same workload) see *identical* workloads.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    master_seed:
        Seed for the root ``SeedSequence``. Identical seeds yield identical
        substreams for identical names, regardless of creation order.

    Examples
    --------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("capacities")
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0):
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {master_seed!r}")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream called ``name``.

        The substream seed is derived from ``(master_seed, hash(name))`` so
        it depends only on the name, never on creation order.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            # Stable, order-independent derivation: fold the name's bytes
            # into the seed sequence entropy.
            name_key = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence([self.master_seed, *name_key])
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        """Names of all instantiated substreams, sorted."""
        return sorted(self._streams)

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one's.

        Used to give each repetition of an experiment fresh randomness
        while keeping the whole sweep a function of the master seed.
        """
        return RngRegistry(self.master_seed * 1_000_003 + salt)

    def __repr__(self) -> str:
        return (f"<RngRegistry seed={self.master_seed} "
                f"streams={len(self._streams)}>")


_U64 = np.uint64
_SPLITMIX_GAMMA = _U64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = _U64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = _U64(0x94D049BB133111EB)
#: 2**-53 as an exact float — the uniform conversion is a single exact
#: division, never a libm call.
_INV_2_53 = 1.0 / 9007199254740992.0


def counter_u01(ids: np.ndarray, step: int, salt: int) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` keyed by ``(id, step, salt)``.

    A counter-based generator (splitmix64 finalizer over a mixed key):
    no state to carry or synchronise, so a value depends only on its
    key — the property that lets a cohort's vectorised draw and a
    materialised player's individual draw produce the *same* number for
    the same player at the same tick (DESIGN.md §11). Everything up to
    the final ``* 2⁻⁵³`` is uint64 integer arithmetic, and that product
    is exact, so results are bit-identical across platforms, SIMD
    widths, and numpy builds.

    Parameters
    ----------
    ids:
        Integer identity array (e.g. player ids); any integer dtype.
    step:
        Time-like counter (e.g. tick number).
    salt:
        Stream separator (mix the run seed and a per-purpose constant).
    """
    mask = (1 << 64) - 1
    x = ids.astype(np.uint64, copy=True)
    x ^= _U64((step * 0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019) & mask)
    x *= _SPLITMIX_GAMMA
    x ^= _U64((salt * 0xD1B54A32D192ED03 + 0x8CB92BA72F3D8DD7) & mask)
    x ^= x >> _U64(30)
    x *= _SPLITMIX_M1
    x ^= x >> _U64(27)
    x *= _SPLITMIX_M2
    x ^= x >> _U64(31)
    return (x >> _U64(11)).astype(np.float64) * _INV_2_53


def counter_u01_one(ident: int, step: int, salt: int) -> float:
    """Scalar :func:`counter_u01` — bit-identical, pure Python integers.

    The single-player fast path of the cohort advance kernel calls this
    instead of paying numpy array overhead for one element. Python's
    arbitrary-precision integers masked to 64 bits reproduce the uint64
    wraparound exactly, and the final ``int * float`` is the same exact
    product, so ``counter_u01_one(i, t, s) ==
    counter_u01(np.array([i]), t, s)[0]`` for every input (pinned by
    the rng tests).
    """
    mask = (1 << 64) - 1
    x = int(ident) & mask
    x ^= (step * 0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019) & mask
    x = (x * 0x9E3779B97F4A7C15) & mask
    x ^= (salt * 0xD1B54A32D192ED03 + 0x8CB92BA72F3D8DD7) & mask
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & mask
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & mask
    x ^= x >> 31
    return (x >> 11) * _INV_2_53
