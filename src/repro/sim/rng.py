"""Named random-number substreams.

Every stochastic component of the reproduction (arrival process, session
lengths, node capacities, latency jitter, game choice, ...) draws from its
own named substream derived from a single master seed via numpy's
``SeedSequence.spawn`` machinery. Two benefits:

* a run is reproducible bit-for-bit from ``(master_seed, code)``;
* changing how often one component draws does not perturb any other
  component's stream, so A/B comparisons (e.g. CloudFog/B vs CloudFog/A
  on the same workload) see *identical* workloads.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    master_seed:
        Seed for the root ``SeedSequence``. Identical seeds yield identical
        substreams for identical names, regardless of creation order.

    Examples
    --------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("capacities")
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0):
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {master_seed!r}")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream called ``name``.

        The substream seed is derived from ``(master_seed, hash(name))`` so
        it depends only on the name, never on creation order.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            # Stable, order-independent derivation: fold the name's bytes
            # into the seed sequence entropy.
            name_key = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence([self.master_seed, *name_key])
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        """Names of all instantiated substreams, sorted."""
        return sorted(self._streams)

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one's.

        Used to give each repetition of an experiment fresh randomness
        while keeping the whole sweep a function of the master seed.
        """
        return RngRegistry(self.master_seed * 1_000_003 + salt)

    def __repr__(self) -> str:
        return (f"<RngRegistry seed={self.master_seed} "
                f"streams={len(self._streams)}>")
