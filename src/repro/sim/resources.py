"""Shared-resource primitives: stores and counted resources.

``Store`` is an unbounded-or-bounded FIFO channel of Python objects —
CloudFog uses it for update-message queues and packet pipelines.
``PriorityStore`` pops the smallest item (by the item's own ordering) —
the deadline-driven sender buffer builds on it. ``Resource`` is a counted
semaphore with FIFO waiters — used for supernode capacity slots.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class StorePut(Event):
    """Request to insert ``item``; fires once the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Request to remove an item; fires with the item as its value."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO object channel with optional capacity.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items; ``inf`` by default.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item`` (waits if the store is full)."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove the oldest item matching ``filter`` (waits if none)."""
        return StoreGet(self, filter)

    # -- internal machinery -------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._insert(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if event.filter is None:
            if self.items:
                event.succeed(self._pop_front())
                return True
            return False
        for idx, item in enumerate(self.items):
            if event.filter(item):
                del self.items[idx]
                event.succeed(item)
                return True
        return False

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _pop_front(self) -> Any:
        return self.items.pop(0)

    def _trigger(self) -> None:
        """Match queued puts and gets until no progress is possible."""
        progress = True
        while progress:
            progress = False
            idx = 0
            while idx < len(self._get_queue):
                get_ev = self._get_queue[idx]
                if get_ev.triggered:
                    del self._get_queue[idx]
                    progress = True
                elif self._do_get(get_ev):
                    del self._get_queue[idx]
                    progress = True
                else:
                    idx += 1
            idx = 0
            while idx < len(self._put_queue):
                put_ev = self._put_queue[idx]
                if put_ev.triggered:
                    del self._put_queue[idx]
                    progress = True
                elif self._do_put(put_ev):
                    del self._put_queue[idx]
                    progress = True
                else:
                    idx += 1


class PriorityStore(Store):
    """A store that always yields its smallest item.

    Items must be mutually orderable; wrap payloads in a ``(key, seq,
    payload)`` tuple or a dataclass with ``order=True`` when the payload
    itself is not comparable.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        super().__init__(env, capacity)

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _pop_front(self) -> Any:
        return heapq.heappop(self.items)

    def peek(self) -> Any:
        """Smallest stored item without removing it."""
        if not self.items:
            raise LookupError("peek() on an empty PriorityStore")
        return self.items[0]

    def remove(self, predicate: Callable[[Any], bool]) -> list[Any]:
        """Remove and return every stored item matching ``predicate``."""
        kept, removed = [], []
        for item in self.items:
            (removed if predicate(item) else kept).append(item)
        if removed:
            self.items = kept
            heapq.heapify(self.items)
        return removed


class ResourceRequest(Event):
    """Pending claim of one resource slot. Usable as a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource with FIFO waiters (a semaphore with bookkeeping).

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrent holders allowed.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[ResourceRequest] = []
        self._queue: list[ResourceRequest] = []

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> ResourceRequest:
        """Claim one slot; the returned event fires once granted."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot (idempotent for cancelled)."""
        try:
            self.users.remove(request)
        except ValueError:
            # Never granted: cancel the pending request instead.
            try:
                self._queue.remove(request)
            except ValueError:
                pass
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.pop(0)
            if req.triggered:
                continue
            self.users.append(req)
            req.succeed()
