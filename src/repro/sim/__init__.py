"""Discrete-event simulation engine.

This package is CloudFog's substitute for the PeerSim simulator used in the
paper: a small, deterministic, generator-based discrete-event kernel in the
style of SimPy, built from scratch so the reproduction has no external
simulator dependency.

Core pieces
-----------
``Environment``
    The event loop: a priority heap of timestamped events plus the
    simulation clock. Equal-time events fire in insertion order, which makes
    every run deterministic for a fixed RNG seed.
``Process``
    Wraps a Python generator; each ``yield``ed event suspends the process
    until the event fires. Processes may be interrupted.
``Timeout`` / ``Event`` / ``AnyOf`` / ``AllOf``
    Waitable primitives.
``Store`` / ``PriorityStore`` / ``Resource``
    Producer/consumer channels and counted resources with FIFO queues.
``RngRegistry``
    Named, independently seeded ``numpy`` random substreams so that each
    stochastic component (arrivals, capacities, jitter, ...) draws from its
    own stream and experiments are reproducible bit-for-bit.
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.engine import (
    QUEUE_KINDS,
    Environment,
    SimulationError,
    StopSimulation,
    default_queue,
    set_default_queue,
    use_queue,
)
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "QUEUE_KINDS",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "default_queue",
    "set_default_queue",
    "use_queue",
]
