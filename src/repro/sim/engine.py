"""The discrete-event simulation kernel.

The :class:`Environment` owns the clock and the future event list.
Entries are ``(time, sequence, event)`` tuples; the monotonically
increasing sequence number breaks time ties in insertion order, so a run
is a pure function of its inputs — the property PeerSim gives the
paper's simulation and that the whole reproduction relies on.

Two interchangeable event structures back the list (DESIGN.md §11):

``"heap"``
    The classic binary heap (``heapq``), O(log n) per operation. The
    default, and the reference for the determinism contract.
``"calendar"``
    A :class:`~repro.sim.calendar.CalendarQueue` — bucketed, amortized
    O(1) per operation, the kernel that makes million-player populations
    affordable. Pops events in exactly the same ``(time, seq)`` order as
    the heap, so traces (and their digests) are byte-identical.

Pick per environment via ``Environment(queue="calendar")``, or switch
the process-wide default with :func:`set_default_queue` /
:func:`use_queue` / the ``CLOUDFOG_SIM_QUEUE`` environment variable so
existing figure specs and the chaos machinery run unchanged on either
kernel.
"""

from __future__ import annotations

import heapq
import os
from contextlib import contextmanager
from typing import Any, Generator, Iterator, Optional, Union

from repro.sim.calendar import CalendarQueue
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Recognised future-event-list implementations.
QUEUE_KINDS = ("heap", "calendar")


def _validated_queue_kind(kind: str) -> str:
    if kind not in QUEUE_KINDS:
        raise ValueError(
            f"unknown event queue kind {kind!r}; expected one of {QUEUE_KINDS}")
    return kind


_default_queue = _validated_queue_kind(
    os.environ.get("CLOUDFOG_SIM_QUEUE", "heap"))


def default_queue() -> str:
    """The queue kind new :class:`Environment` instances use."""
    return _default_queue


def set_default_queue(kind: str) -> None:
    """Set the process-wide default event queue kind."""
    global _default_queue
    _default_queue = _validated_queue_kind(kind)


@contextmanager
def use_queue(kind: str) -> Iterator[None]:
    """Temporarily switch the default event queue kind.

    >>> with use_queue("calendar"):
    ...     env = Environment()  # calendar-backed
    """
    global _default_queue
    previous = _default_queue
    _default_queue = _validated_queue_kind(kind)
    try:
        yield
    finally:
        _default_queue = previous


class SimulationError(Exception):
    """An error raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Environment:
    """Event loop and simulation clock.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (seconds).
    queue:
        Future-event-list implementation: ``"heap"`` or ``"calendar"``
        (see the module docstring). ``None`` (default) resolves to
        :func:`default_queue` at construction time.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    def __init__(self, initial_time: float = 0.0,
                 queue: Optional[str] = None):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.queue_kind = _validated_queue_kind(
            _default_queue if queue is None else queue)
        self._cal: Optional[CalendarQueue] = None
        if self.queue_kind == "calendar":
            self._cal = CalendarQueue()
            # Same instance-attribute swap enable_probe_hooks() uses:
            # the heap fast paths stay byte-identical for the default.
            self.schedule = self._schedule_calendar  # type: ignore[method-assign]
            self.step = self._step_calendar  # type: ignore[method-assign]
        #: Probe hooks (see :mod:`repro.obs.probes`). ``on_schedule``
        #: callbacks receive ``(now_s, at_s, event)`` whenever an event is
        #: queued; ``on_step`` callbacks receive ``(now_s, event)`` as each
        #: event is processed. Both lists are empty by default and the
        #: uninstrumented hot paths never look at them — call
        #: :meth:`enable_probe_hooks` after appending (probe attachers do
        #: this) to swap in the instrumented ``schedule``/``step``, so an
        #: unprobed environment pays nothing at all.
        self.on_schedule: list = []
        self.on_step: list = []

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_instrumented(self, event: Event, delay: float = 0.0) -> None:
        """:meth:`schedule` plus the ``on_schedule`` probe hooks."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        at = self._now + delay
        heapq.heappush(self._heap, (at, self._seq, event))
        for hook in self.on_schedule:
            hook(self._now, at, event)

    def _schedule_calendar(self, event: Event, delay: float = 0.0) -> None:
        """:meth:`schedule` against the calendar queue."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        self._cal.push(self._now + delay, self._seq, event)

    def _schedule_calendar_instrumented(self, event: Event,
                                        delay: float = 0.0) -> None:
        """:meth:`_schedule_calendar` plus the ``on_schedule`` hooks."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        at = self._now + delay
        self._cal.push(at, self._seq, event)
        for hook in self.on_schedule:
            hook(self._now, at, event)

    def enable_probe_hooks(self) -> None:
        """Activate the ``on_schedule``/``on_step`` hook lists.

        Swaps the instrumented ``schedule``/``step`` implementations onto
        this instance. Separating activation from the hook lists keeps
        the unprobed hot paths byte-identical to the uninstrumented
        kernel (zero overhead, not merely a cheap check). Idempotent.
        """
        if self._cal is not None:
            self.schedule = self._schedule_calendar_instrumented  # type: ignore[method-assign]
            self.step = self._step_calendar_instrumented  # type: ignore[method-assign]
        else:
            self.schedule = self._schedule_instrumented  # type: ignore[method-assign]
            self.step = self._step_instrumented  # type: ignore[method-assign]

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._cal is not None:
            return self._cal.peek_time()
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def pending(self) -> int:
        """Number of events awaiting processing."""
        return len(self._cal) if self._cal is not None else len(self._heap)

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Spawn a new process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event. Raises ``SimulationError`` if empty."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._heap)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            self._raise_uncaught(event._value)

    def _step_instrumented(self) -> None:
        """:meth:`step` plus the ``on_step`` probe hooks."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._heap)
        for hook in self.on_step:
            hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            self._raise_uncaught(event._value)

    def _step_calendar(self) -> None:
        """:meth:`step` against the calendar queue."""
        cal = self._cal
        if not cal:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = cal.pop()

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            self._raise_uncaught(event._value)

    def _step_calendar_instrumented(self) -> None:
        """:meth:`_step_calendar` plus the ``on_step`` hooks."""
        cal = self._cal
        if not cal:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = cal.pop()
        for hook in self.on_step:
            hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            self._raise_uncaught(event._value)

    def _raise_uncaught(self, exc: BaseException) -> None:
        """Propagate an exception nobody handled out of the event loop."""
        raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the schedule is exhausted;
            a number
                run until the clock reaches that time (the clock is
                advanced to exactly ``until`` even if no event lies there);
            an :class:`Event`
                run until that event is processed and return its value.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            if until.callbacks is None:  # pragma: no cover - defensive
                raise SimulationError(f"{until!r} already consumed")
            until.callbacks.append(_stop_callback)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})")

        try:
            if self._cal is None:
                heap = self._heap
                while heap:
                    if stop_at is not None and heap[0][0] > stop_at:
                        break
                    self.step()
            else:
                cal = self._cal
                while cal:
                    # peek_time() caches the located bucket, so the pop
                    # inside step() does not scan a second time.
                    if stop_at is not None and cal.peek_time() > stop_at:
                        break
                    self.step()
        except StopSimulation as stop:
            return stop.value

        if isinstance(until, Event):
            if not until.triggered:
                raise SimulationError(
                    "schedule ran dry before the `until` event triggered")
            return until.value  # pragma: no cover - race-free by design
        if stop_at is not None:
            self._now = stop_at
        return None

    def __repr__(self) -> str:
        return (f"<Environment now={self._now} pending={self.pending} "
                f"queue={self.queue_kind}>")


def _stop_callback(event: Event) -> None:
    if event.ok:
        raise StopSimulation(event.value)
    event.defused = True
    raise event.value
