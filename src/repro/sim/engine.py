"""The discrete-event simulation kernel.

The :class:`Environment` owns the clock and the event heap. Heap entries
are ``(time, sequence, event)`` tuples; the monotonically increasing
sequence number breaks time ties in insertion order, so a run is a pure
function of its inputs — the property PeerSim gives the paper's simulation
and that the whole reproduction relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional, Union

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class SimulationError(Exception):
    """An error raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Environment:
    """Event loop and simulation clock.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Probe hooks (see :mod:`repro.obs.probes`). ``on_schedule``
        #: callbacks receive ``(now_s, at_s, event)`` whenever an event is
        #: queued; ``on_step`` callbacks receive ``(now_s, event)`` as each
        #: event is processed. Both lists are empty by default and the
        #: uninstrumented hot paths never look at them — call
        #: :meth:`enable_probe_hooks` after appending (probe attachers do
        #: this) to swap in the instrumented ``schedule``/``step``, so an
        #: unprobed environment pays nothing at all.
        self.on_schedule: list = []
        self.on_step: list = []

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_instrumented(self, event: Event, delay: float = 0.0) -> None:
        """:meth:`schedule` plus the ``on_schedule`` probe hooks."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        at = self._now + delay
        heapq.heappush(self._heap, (at, self._seq, event))
        for hook in self.on_schedule:
            hook(self._now, at, event)

    def enable_probe_hooks(self) -> None:
        """Activate the ``on_schedule``/``on_step`` hook lists.

        Swaps the instrumented ``schedule``/``step`` implementations onto
        this instance. Separating activation from the hook lists keeps
        the unprobed hot paths byte-identical to the uninstrumented
        kernel (zero overhead, not merely a cheap check). Idempotent.
        """
        self.schedule = self._schedule_instrumented  # type: ignore[method-assign]
        self.step = self._step_instrumented  # type: ignore[method-assign]

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Spawn a new process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event. Raises ``SimulationError`` if empty."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._heap)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            self._raise_uncaught(event._value)

    def _step_instrumented(self) -> None:
        """:meth:`step` plus the ``on_step`` probe hooks."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._heap)
        for hook in self.on_step:
            hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            self._raise_uncaught(event._value)

    def _raise_uncaught(self, exc: BaseException) -> None:
        """Propagate an exception nobody handled out of the event loop."""
        raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the schedule is exhausted;
            a number
                run until the clock reaches that time (the clock is
                advanced to exactly ``until`` even if no event lies there);
            an :class:`Event`
                run until that event is processed and return its value.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            if until.callbacks is None:  # pragma: no cover - defensive
                raise SimulationError(f"{until!r} already consumed")
            until.callbacks.append(_stop_callback)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})")

        try:
            while self._heap:
                if stop_at is not None and self._heap[0][0] > stop_at:
                    break
                self.step()
        except StopSimulation as stop:
            return stop.value

        if isinstance(until, Event):
            if not until.triggered:
                raise SimulationError(
                    "schedule ran dry before the `until` event triggered")
            return until.value  # pragma: no cover - race-free by design
        if stop_at is not None:
            self._now = stop_at
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._heap)}>"


def _stop_callback(event: Event) -> None:
    if event.ok:
        raise StopSimulation(event.value)
    event.defused = True
    raise event.value
