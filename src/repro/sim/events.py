"""Waitable event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence: it starts *pending*, is
*triggered* (scheduled with a value or an exception), and finally
*processed* when the environment pops it off the heap and runs its
callbacks. Processes wait on events by ``yield``ing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

# Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The optional ``cause`` carries arbitrary context (e.g. the reason a
    streaming session was torn down).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence.

    Parameters
    ----------
    env:
        Owning environment.

    Notes
    -----
    Callbacks receive the event itself. After :meth:`succeed` or
    :meth:`fail` the event is scheduled for processing at the current
    simulation time; callbacks run when the event is popped.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: True once a failure value has been consumed by some waiter; an
        #: unconsumed failure propagates out of Environment.run().
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value. Raises if the event is still pending."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """Waits for a boolean combination of sub-events.

    The condition's value is a dict mapping each *triggered* sub-event to
    its value at the moment the condition fired.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list["Event"], int], bool],
        events: Iterable["Event"],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0

        for ev in self._events:
            if ev.env is not env:
                raise ValueError("events span multiple environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for ev in self._events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict["Event", Any]:
        # `processed`, not `triggered`: Timeouts carry their value from
        # birth, but they only *happen* when the clock reaches them.
        return {ev: ev._value for ev in self._events if ev.processed}

    def _check(self, event: "Event") -> None:
        if self.triggered:
            # Late failures of already-satisfied conditions must not be
            # swallowed silently.
            if not event._ok and not event.defused:
                event.defused = True
                self.env._raise_uncaught(event._value)
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events: list["Event"], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list["Event"], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]):
        super().__init__(env, Condition.any_events, events)
