"""Generator-driven simulation processes.

A :class:`Process` advances a Python generator. Each value the generator
``yield``s must be an :class:`~repro.sim.events.Event`; the process sleeps
until that event fires, then resumes with the event's value (or the event's
exception thrown into it). A process is itself an event that fires when the
generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Process(Event):
    """A running simulation process (also a waitable event)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None = starting/dead).
        self._target: Optional[Event] = None

        # Kick the process off via an immediate initialisation event.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process currently waits for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it resumes queues both interrupts.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")

        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.env.schedule(interrupt_ev)

    # -- internal ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        # Drop stale wakeups: if we were interrupted while waiting, the
        # original target may still fire later and must be ignored.
        if event is not self._target and self._target is not None:
            if isinstance(event._value, Interrupt):
                # Interrupt wins: detach from the pending target.
                if self._target.callbacks is not None:
                    try:
                        self._target.callbacks.remove(self._resume)
                    except ValueError:  # pragma: no cover - defensive
                        pass
            else:
                return
        if self.triggered:
            return

        self.env._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = getattr(stop, "value", None)
            self.env.schedule(self)
            return
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            self.env.schedule(self)
            return
        finally:
            self.env._active_process = None

        if not isinstance(next_target, Event):
            raise TypeError(
                f"process yielded {next_target!r}, expected an Event")
        if next_target.env is not self.env:
            raise ValueError("yielded event belongs to another environment")

        self._target = next_target
        if next_target.processed:
            # Already done: resume immediately (via schedule to stay fair).
            wake = Event(self.env)
            wake._ok = next_target._ok
            wake._value = next_target._value
            if not next_target._ok:
                next_target.defused = True
                wake.defused = True
            self._target = wake
            wake.callbacks.append(self._resume)
            self.env.schedule(wake)
        else:
            next_target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", repr(self._generator))
        state = "dead" if self.triggered else "alive"
        return f"<Process {name} {state} at {id(self):#x}>"
