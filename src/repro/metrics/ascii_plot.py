"""Terminal plotting for figure series.

Experiments are plotted in the paper; in a terminal, an ASCII chart is
the closest equivalent. ``render`` draws one or more
:class:`~repro.metrics.series.FigureSeries` on a shared scatter canvas
with distinct glyphs per series and a legend — good enough to eyeball a
crossover or a saturation knee without leaving the shell.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.series import FigureSeries

#: Glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def render(
    series: Sequence[FigureSeries],
    width: int = 60,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render series onto one ASCII canvas; returns the chart text."""
    series = [s for s in series if s.x]
    if not series:
        return "(no data)"
    if width < 10 or height < 4:
        raise ValueError("canvas too small")

    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        frac = min(max(frac, 0.0), 1.0)
        return (height - 1) - int(round(frac * (height - 1)))

    for idx, s in enumerate(series):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in zip(s.x, s.y):
            row, col = to_row(y), to_col(x)
            cell = grid[row][col]
            grid[row][col] = glyph if cell in (" ", glyph) else "?"

    lines = []
    y_label = series[0].y_label
    lines.append(f"  {y_label}")
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_hi:8.3g} "
        elif r == height - 1:
            label = f"{y_lo:8.3g} "
        else:
            label = " " * 9
        lines.append(label + "|" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_label = series[0].x_label
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    pad = width - len(left) - len(right)
    lines.append(" " * 10 + left + " " * max(1, pad) + right)
    lines.append(" " * 10 + x_label)
    for idx, s in enumerate(series):
        lines.append(f"   {GLYPHS[idx % len(GLYPHS)]} = {s.label}")
    return "\n".join(lines)


def print_chart(series: Sequence[FigureSeries], title: str = "",
                **kwargs) -> str:
    """Render and print; returns the chart text."""
    text = render(series, **kwargs)
    if title:
        text = f"== {title} ==\n{text}"
    print(text)
    return text
