"""User-coverage computations (Figures 5 and 6).

"A user is covered by datacenter if the response latency is no more than
the latency requirement of the user's game" (§IV). Response latency here
is network round-trip: an action goes up, video comes down.

Two flavours:

* :func:`latency_based_coverage` — pure latency feasibility (a serving
  site within the latency budget exists); vectorized, used for the
  datacenter sweeps where capacity never binds.
* :func:`capacity_aware_coverage` — runs the §III-A-3 assignment protocol
  with supernode capacities, so a nearby-but-full supernode does not
  cover; used for the supernode sweeps where capacity is the point.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import AssignmentParams, assign_players
from repro.network.latency import LatencyModel


def datacenter_coverage(
    latency: LatencyModel,
    player_host_ids: np.ndarray,
    datacenter_host_ids: np.ndarray,
    latency_req_s: float,
) -> float:
    """Fraction of players within ``latency_req_s`` RTT of some datacenter."""
    players = np.asarray(player_host_ids, dtype=int)
    dcs = np.asarray(datacenter_host_ids, dtype=int)
    if players.size == 0:
        return 0.0
    if dcs.size == 0:
        return 0.0
    best = latency.rtt_matrix_s(players, dcs).min(axis=1)
    return float(np.mean(best <= latency_req_s))


def latency_based_coverage(
    latency: LatencyModel,
    player_host_ids: np.ndarray,
    site_host_ids: np.ndarray,
    latency_req_s: float,
) -> float:
    """Fraction of players within budget of *any* serving site."""
    return datacenter_coverage(
        latency, player_host_ids, site_host_ids, latency_req_s)


def capacity_aware_coverage(
    latency: LatencyModel,
    player_host_ids: np.ndarray,
    latency_req_s: float,
    supernode_host_ids: np.ndarray,
    supernode_capacities: np.ndarray,
    datacenter_host_ids: np.ndarray,
    params: AssignmentParams | None = None,
) -> float:
    """Coverage under the real assignment protocol (capacity binds).

    A player is covered when its assigned serving site (supernode via the
    protocol, else nearest datacenter) is reachable within the latency
    requirement (RTT).
    """
    players = np.asarray(player_host_ids, dtype=int)
    if players.size == 0:
        return 0.0
    reqs = np.full(players.shape, latency_req_s)
    results = assign_players(
        latency, players, reqs, supernode_host_ids,
        supernode_capacities, datacenter_host_ids, params)
    covered = 0
    for res in results:
        site = (res.supernode_host_id if res.uses_supernode
                else res.datacenter_host_id)
        if latency.rtt_s(res.player_host_id, site) <= latency_req_s:
            covered += 1
    return covered / players.size
