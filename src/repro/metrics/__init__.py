"""Metric aggregation for experiments.

The raw QoE counters live in
:class:`~repro.streaming.playback.PlaybackStats` (per player) and
:class:`~repro.core.infrastructure.SessionResult` (per run). This package
provides the aggregation layer the experiment drivers and benchmarks use:
figure series containers, summary statistics, and the coverage scan that
Figures 5 and 6 are built from. The *runtime* instruments (counters,
gauges, histograms) live in :mod:`repro.obs.metrics` and are re-exported
here for convenience.
"""

from repro.metrics.series import FigureSeries, Summary, summarize
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.metrics.coverage import (
    capacity_aware_coverage,
    datacenter_coverage,
    latency_based_coverage,
)
from repro.metrics.load_indices import (
    LoadDistribution,
    coefficient_of_variation,
    gini_index,
    herfindahl_index,
    variation_index,
)

__all__ = [
    "Counter",
    "FigureSeries",
    "Gauge",
    "Histogram",
    "LoadDistribution",
    "MetricsRegistry",
    "Summary",
    "capacity_aware_coverage",
    "coefficient_of_variation",
    "datacenter_coverage",
    "gini_index",
    "herfindahl_index",
    "latency_based_coverage",
    "summarize",
    "variation_index",
]
