"""Load-distribution indices (DRAGON game-simulator metrics).

How evenly a placement spreads players over supernodes, measured three
ways (definitions follow the DRAGON mobile-game simulator, SNIPPETS.md
§1, normalised to unit shares; see DESIGN.md §13):

* **Gini index** — twice the area between the Lorenz curve of the load
  vector and the equality diagonal, computed as the relative mean
  absolute difference ``G = Σᵢⱼ|xᵢ−xⱼ| / (2n²μ)``. 0 on uniform load,
  bounded by ``(n−1)/n < 1``, and strictly decreasing under a
  mean-preserving (Pigou–Dalton) transfer from a loaded node to a less
  loaded one.
* **Herfindahl index** — ``H = Σ sᵢ²`` over load shares ``sᵢ = xᵢ/Σx``;
  ``1/n`` on uniform load, 1 when a single node holds everything. (The
  DRAGON simulator uses percentage shares, scaling this by 10⁴.)
* **Coefficient of variation** — population standard deviation over the
  mean; 0 on uniform load, unbounded above.

Plus the DRAGON **variation index** for churn studies: the fraction of
the final population that moved onto a node between two snapshots,
``V = Σ max(afterᵢ − beforeᵢ, 0) / Σ after``.

All functions accept any non-negative vector; degenerate inputs (empty,
single node, zero total) report perfect evenness rather than raising,
so index emission never aborts a session.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _vector(values) -> np.ndarray:
    x = np.asarray(values, dtype=float).ravel()
    if x.size and (np.any(x < 0) or not np.all(np.isfinite(x))):
        raise ValueError("loads must be finite and nonnegative")
    return x


def gini_index(values) -> float:
    """Gini concentration of a load vector, in ``[0, (n−1)/n]``."""
    x = _vector(values)
    n = x.size
    total = float(x.sum())
    if n <= 1 or total <= 0.0:
        return 0.0
    xs = np.sort(x)
    ranks = np.arange(1, n + 1, dtype=float)
    g = (2.0 * float(np.sum(ranks * xs)) - (n + 1) * total) / (n * total)
    return float(min(max(g, 0.0), 1.0))


def herfindahl_index(values) -> float:
    """Herfindahl concentration ``Σ sᵢ²`` of a load vector, in ``[1/n, 1]``.

    Zero total load (nothing placed anywhere) reports the uniform
    floor ``1/n``; an empty vector reports 1.0.
    """
    x = _vector(values)
    if x.size == 0:
        return 1.0
    total = float(x.sum())
    if total <= 0.0:
        return 1.0 / x.size
    shares = x / total
    return float(np.sum(shares * shares))


def coefficient_of_variation(values) -> float:
    """Population standard deviation over the mean; 0 on uniform load."""
    x = _vector(values)
    if x.size == 0:
        return 0.0
    mean = float(x.mean())
    if mean <= 0.0:
        return 0.0
    return float(x.std() / mean)


def variation_index(before, after) -> float:
    """DRAGON churn metric: fraction of the final load that moved in.

    ``Σ max(afterᵢ − beforeᵢ, 0) / Σ after`` over aligned per-node load
    vectors; 0 when nothing moved, 1 when every placement is new.
    """
    b, a = _vector(before), _vector(after)
    if b.shape != a.shape:
        raise ValueError("before/after vectors must align")
    total = float(a.sum())
    if total <= 0.0:
        return 0.0
    return float(np.maximum(a - b, 0.0).sum() / total)


@dataclass(frozen=True, slots=True)
class LoadDistribution:
    """All three indices over users-per-node and utilisation-per-node."""

    n_nodes: int
    gini_users: float
    herfindahl_users: float
    cv_users: float
    gini_utilisation: float
    herfindahl_utilisation: float
    cv_utilisation: float

    @classmethod
    def measure(cls, users_per_node, utilisation_per_node
                ) -> "LoadDistribution":
        users = _vector(users_per_node)
        util = _vector(utilisation_per_node)
        return cls(
            n_nodes=int(users.size),
            gini_users=gini_index(users),
            herfindahl_users=herfindahl_index(users),
            cv_users=coefficient_of_variation(users),
            gini_utilisation=gini_index(util),
            herfindahl_utilisation=herfindahl_index(util),
            cv_utilisation=coefficient_of_variation(util),
        )

    @classmethod
    def from_strategy(cls, strategy) -> "LoadDistribution":
        """Snapshot an :class:`~repro.core.assignment.AssignmentStrategy`."""
        return cls.measure(strategy.users_per_node(),
                           strategy.utilisation_per_node())

    def to_dict(self) -> dict[str, float]:
        return {
            "n_nodes": self.n_nodes,
            "gini_users": self.gini_users,
            "herfindahl_users": self.herfindahl_users,
            "cv_users": self.cv_users,
            "gini_utilisation": self.gini_utilisation,
            "herfindahl_utilisation": self.herfindahl_utilisation,
            "cv_utilisation": self.cv_utilisation,
        }

    def emit(self, registry, prefix: str = "assignment") -> None:
        """Set one gauge per index on a metrics registry."""
        for key, value in self.to_dict().items():
            registry.gauge(f"{prefix}.{key}").set(float(value))
