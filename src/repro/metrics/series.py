"""Figure series and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Summary:
    """Summary statistics of one sample of measurements."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
                f"p50={self.p50:.4g} p95={self.p95:.4g}")


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (empty input allowed)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(0, float("nan"), float("nan"),
                       float("nan"), float("nan"))
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
    )


@dataclass
class FigureSeries:
    """One plotted line: (x, y) pairs plus identification.

    Every experiment driver returns a list of these; the benchmark
    harness prints them as the rows the corresponding paper figure
    reports.
    """

    label: str
    x_label: str
    y_label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def to_dict(self) -> dict[str, object]:
        """Stable JSON schema shared by the CLI ``--json`` output, the
        on-disk result cache and external plotting tools."""
        return {
            "label": self.label,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": list(self.x),
            "y": list(self.y),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FigureSeries":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        return cls(
            label=str(payload["label"]),
            x_label=str(payload["x_label"]),
            y_label=str(payload["y_label"]),
            x=[float(v) for v in payload.get("x", [])],
            y=[float(v) for v in payload.get("y", [])],
        )

    # Back-compat alias; prefer :meth:`to_dict`.
    def as_dict(self) -> dict[str, object]:
        return self.to_dict()

    def format_rows(self, x_fmt: str = "{:g}", y_fmt: str = "{:.3f}") -> str:
        """Human-readable table of the series."""
        lines = [f"# {self.label}  ({self.x_label} -> {self.y_label})"]
        for xv, yv in zip(self.x, self.y):
            lines.append(f"  {x_fmt.format(xv):>10s}  {y_fmt.format(yv)}")
        return "\n".join(lines)


def print_series(series: Sequence[FigureSeries], title: str = "") -> str:
    """Format a whole figure's series; returns the printed text."""
    blocks = [f"== {title} ==" if title else ""]
    for s in series:
        blocks.append(s.format_rows())
    text = "\n".join(b for b in blocks if b)
    print(text)
    return text
