"""Command-line interface: ``cloudfog <experiment> [--scale S] [--seed N]``.

Examples
--------
::

    cloudfog fig5a --scale 0.2        # coverage vs datacenters, PeerSim
    cloudfog fig10 --scale 0.3        # rate-adaptation satisfaction sweep
    cloudfog all --scale 0.05         # quick pass over every figure
    cloudfog all --scale 0.05 --jobs 4 --cache-dir ~/.cache/cloudfog
                                      # parallel sweep tasks + result
                                      # cache: warm re-runs are ~free and
                                      # byte-identical to --jobs 1
    cloudfog fig8a --json out.json    # stable JSON schema for plotting
    cloudfog ladder                   # print the Figure 2 quality ladder
    cloudfog trace --figure fig8 --out trace.jsonl
                                      # run with telemetry + invariant
                                      # checks, dump the JSONL trace and
                                      # print the run digest
    cloudfog chaos --preset crash-recover --scale 0.05
                                      # seed-deterministic fault
                                      # injection: crash the busiest
                                      # supernode, report failover and
                                      # QoE under live invariant checks
    cloudfog orchestrate --skew skewed --scale 0.05
                                      # assignment strategies head to
                                      # head: greedy vs DRAGON-style
                                      # distributed negotiation, with
                                      # Gini/Herfindahl/variation
                                      # load-distribution indices
    cloudfog all --cache-dir ~/.cache/cloudfog --resume
                                      # finish an interrupted sweep:
                                      # the crash-safe journal skips
                                      # every checkpointed task
    cloudfog fig9a --jobs 4 --task-timeout 120 --keep-going
                                      # watchdog + salvage: hung tasks
                                      # are cancelled and retried;
                                      # persistent failures are
                                      # reported, completed points kept
    cloudfog worker --listen 0.0.0.0:7800
                                      # start a worker daemon; then on
                                      # the scheduler host:
    cloudfog all --backend remote --workers host1:7800,host2:7800
                                      # distribute sweep tasks over the
                                      # worker fabric — results are
                                      # byte-identical to --backend
                                      # inline
    cloudfog fig5a --backend remote --launch 4
                                      # or spawn 4 loopback workers
    cloudfog all --backend remote --launch 2 --slots 4 --compress auto
                                      # throughput fabric: 2 daemons x
                                      # 4 task slots each, pipelined
                                      # dispatch, compressed frames
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.config import (
    BACKEND_NAMES,
    COMPRESS_NAMES,
    RunConfig,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    run_experiment,
    run_results,
)
from repro.metrics.series import print_series
from repro.streaming.video import QUALITY_LADDER


def _jobs_arg(value: str) -> int:
    """argparse type for --jobs: a non-negative int (0 = all cores)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def add_execution_args(parser: argparse.ArgumentParser) -> None:
    """Install the shared execution flags (backend, parallelism, cache,
    resilience) on ``parser``.

    Every sweep-running subcommand gets the identical option surface;
    :meth:`repro.experiments.config.RunConfig.from_args` turns the
    parsed namespace into a :class:`RunConfig`.
    """
    group = parser.add_argument_group(
        "execution",
        "where and how sweep tasks run; results are byte-identical "
        "whichever backend/parallelism executes them")
    group.add_argument(
        "--backend", choices=BACKEND_NAMES, default="auto",
        help="execution backend: inline (serial), pool (local worker "
             "processes), remote (worker-daemon fabric); auto picks "
             "inline for --jobs 1 and pool otherwise (default auto)")
    group.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help="run sweep tasks on N worker processes (0 = all cores); "
             "results are byte-identical to --jobs 1 (default 1)")
    group.add_argument(
        "--workers", default="", metavar="HOST:PORT,...",
        help="comma-separated addresses of listening worker daemons "
             "(cloudfog worker --listen ...) to dial; implies "
             "--backend remote")
    group.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="bind the remote scheduler here and accept dial-in "
             "workers (cloudfog worker --connect ...); implies "
             "--backend remote")
    group.add_argument(
        "--launch", type=int, default=0, metavar="N",
        help="spawn N loopback worker daemons for the remote backend; "
             "implies --backend remote")
    group.add_argument(
        "--launcher", default=None, metavar="CMD",
        help="worker launch command template for --launch; {addr} (or "
             "{host}/{port}) is substituted — SSH works: "
             "'ssh gpu1 cloudfog worker --connect {addr}'")
    group.add_argument(
        "--slots", type=int, default=1, metavar="N",
        help="task slots per launched worker daemon: each daemon runs "
             "N slot processes and streams results as slots free up "
             "(default 1; daemons started by hand set their own "
             "cloudfog worker --slots)")
    group.add_argument(
        "--prefetch", type=int, default=2, metavar="N",
        help="pipelining depth: tasks queued on each worker beyond "
             "its executing slots, hiding the dispatch round-trip "
             "(default 2; 0 = stop-and-wait per slot — prefer that "
             "under tight --task-timeout budgets)")
    group.add_argument(
        "--compress", nargs="?", const="auto", default="auto",
        choices=COMPRESS_NAMES, metavar="CODEC",
        help="wire-frame compression for the remote backend: auto "
             "negotiates the best codec both peers support (zstd "
             "where installed, zlib otherwise), none keeps legacy "
             "uncompressed CFW1 frames (default auto)")
    group.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed result cache directory; re-runs skip "
             "sweep points already computed for the same parameters")
    group.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (force fresh execution)")
    group.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry a crashed/raising/hung sweep task up to N times "
             "with exponential backoff (default 2; 0 = fail fast)")
    group.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="per-task wall-clock budget: the pool and remote backends "
             "terminate hung workers and reschedule their tasks "
             "(default: no timeout)")
    group.add_argument(
        "--keep-going", action="store_true",
        help="on task failure, salvage completed sweep points and "
             "report the failed ones instead of aborting the run")
    group.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run from its journal (requires "
             "--cache-dir): only tasks not yet checkpointed execute")


def _config_from_args(parser: argparse.ArgumentParser,
                      args: argparse.Namespace) -> RunConfig:
    """Build the run's :class:`RunConfig`, mapping validation errors to
    ``parser.error`` with CLI-flavoured messages."""
    if args.resume and (not args.cache_dir or args.no_cache):
        parser.error("--resume requires --cache-dir (the run journal "
                     "lives next to the result cache)")
    try:
        return RunConfig.from_args(args)
    except ValueError as exc:
        parser.error(str(exc))


def _print_ladder() -> None:
    print("Figure 2 — video parameters for different quality levels")
    print(f"{'level':>5} {'resolution':>12} {'bitrate':>10} "
          f"{'latency req':>12} {'tolerance':>10}")
    for ql in reversed(QUALITY_LADDER):
        res = f"{ql.resolution[0]}x{ql.resolution[1]}"
        print(f"{ql.level:>5} {res:>12} {ql.bitrate_bps/1000:>7.0f}kbps "
              f"{ql.latency_req_s*1000:>9.0f} ms {ql.latency_tolerance:>10.1f}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cloudfog",
        description="CloudFog (ICPP 2015) reproduction — experiment runner",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "ladder"],
        help="which paper figure to regenerate",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="population scale factor in (0, 1]; 1.0 = paper scale "
             "(default 0.1)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="master RNG seed")
    add_execution_args(parser)
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit series as JSON (stable to_dict schema) to PATH, or "
             "to stdout when PATH is omitted")
    parser.add_argument(
        "--plot", action="store_true",
        help="render series as ASCII charts instead of tables")
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cloudfog trace",
        description="Run one experiment with full telemetry: structured "
                    "JSONL trace, metrics registry export, live invariant "
                    "checking, and a reproducibility digest.",
    )
    parser.add_argument(
        "--figure", default="fig8",
        help="experiment key or figure prefix (e.g. fig8 = fig8a+fig8b; "
             "default fig8)")
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="population scale factor in (0, 1] (default 0.05)")
    parser.add_argument(
        "--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the trace as JSONL to PATH")
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the aggregated metrics snapshot as JSON to PATH")
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the live invariant checkers")
    parser.add_argument(
        "--kernel", action="store_true",
        help="also trace raw kernel schedule/step events (verbose)")
    add_execution_args(parser)
    return parser


def trace_main(argv: list[str] | None = None) -> int:
    """``cloudfog trace``: run an experiment under full observability."""
    from repro.obs import Observability, TraceRecorder, default_checkers
    from repro.experiments.runner import resolve_experiments

    parser = build_trace_parser()
    args = parser.parse_args(argv)
    try:
        keys = resolve_experiments(args.figure)  # fail fast on bad names
    except ValueError as exc:
        parser.error(str(exc))
    cfg = _config_from_args(parser, args)
    obs = Observability(
        trace=TraceRecorder(),
        checkers=[] if args.no_check else default_checkers(),
        trace_kernel=args.kernel,
    )
    t0 = time.time()
    try:
        run_experiment(args.figure, scale=args.scale, seed=args.seed,
                       obs=obs, config=cfg)
    finally:
        cfg.close()
    elapsed = time.time() - t0

    if args.out:
        n = obs.trace.save(args.out)
        print(f"wrote {n} events to {args.out}")
    snapshot = obs.metrics.snapshot()
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            json.dump(snapshot, fp, indent=2, sort_keys=True)
        print(f"wrote {len(snapshot)} metrics to {args.metrics_out}")

    print(f"experiments: {' '.join(keys)}")
    print(f"events:      {len(obs.trace)}")
    print(f"digest:      {obs.digest()}")
    checks = "skipped" if args.no_check else (
        f"passed ({len(obs.checkers)} checkers)")
    print(f"invariants:  {checks}")
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry["kind"] == "histogram":
            print(f"  {name}: n={entry['count']} mean={entry['mean']:.4g}")
        else:
            print(f"  {name}: {entry['value']}")
    print(f"[{elapsed:.1f}s, scale={args.scale}, seed={args.seed}]")
    return 0


def build_chaos_parser() -> argparse.ArgumentParser:
    from repro.faults.plan import PRESETS

    parser = argparse.ArgumentParser(
        prog="cloudfog chaos",
        description="Run one session under a deterministic fault plan: "
                    "crash/recover supernodes, degrade links, partition "
                    "regions — with live invariant checking and a "
                    "failover/recovery report.",
    )
    parser.add_argument(
        "--preset", default="crash-recover", choices=PRESETS,
        help="fault plan preset (default crash-recover)")
    parser.add_argument(
        "--intensity", type=int, default=1,
        help="preset intensity: 0 = empty plan (baseline), higher = "
             "more/larger faults (default 1)")
    parser.add_argument(
        "--plan", default=None, metavar="PATH",
        help="load a FaultPlan from a JSON file instead of a preset")
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="population scale factor in (0, 1] (default 0.05)")
    parser.add_argument(
        "--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--duration", type=float, default=12.0, metavar="S",
        help="session horizon in seconds (default 12)")
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the trace as JSONL to PATH")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the chaos report as JSON to PATH ('-' = stdout)")
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the live invariant checkers")
    add_execution_args(parser)
    return parser


def chaos_main(argv: list[str] | None = None) -> int:
    """``cloudfog chaos``: fault injection + failover under telemetry."""
    import repro.obs as obs_mod
    from repro.obs import Observability, TraceRecorder, default_checkers
    from repro.experiments.chaos import ChaosConfig, run_chaos
    from repro.faults.plan import FaultPlan

    parser = build_chaos_parser()
    args = parser.parse_args(argv)
    # Chaos runs one session rather than a sweep; the shared execution
    # flags are accepted and validated so every subcommand speaks the
    # same language, but only --cache-dir-independent checks matter.
    _config_from_args(parser, args).close()
    plan = None
    if args.plan:
        with open(args.plan, encoding="utf-8") as fp:
            plan = FaultPlan.from_dict(json.load(fp))
    obs = Observability(
        trace=TraceRecorder(),
        checkers=[] if args.no_check else default_checkers(),
    )
    t0 = time.time()
    with obs_mod.use(obs):
        report = run_chaos(
            args.scale, args.seed, preset=args.preset,
            intensity=args.intensity, plan=plan,
            config=ChaosConfig(duration_s=args.duration))
    elapsed = time.time() - t0

    if args.out:
        n = obs.trace.save(args.out)
        print(f"wrote {n} events to {args.out}")
    if args.json:
        if args.json == "-":
            json.dump(report, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fp:
                json.dump(report, fp, indent=2, sort_keys=True)
            print(f"wrote chaos report to {args.json}")

    fs = report["fault_stats"] or {}
    plan_desc = (args.plan if args.plan
                 else f"{args.preset} @ intensity {args.intensity}")
    print(f"plan:        {plan_desc} ({report['n_faults']} faults)")
    print(f"players:     {report['n_players']} "
          f"({report['served_supernode']:.0%} on supernodes)")
    print(f"continuity:  {report['continuity']:.4f}")
    print(f"satisfied:   {report['satisfied']:.4f}")
    print(f"injected:    {fs.get('injected', 0)} "
          f"(cleared {fs.get('cleared', 0)}, "
          f"skipped {fs.get('skipped', 0)})")
    print(f"recoveries:  {fs.get('recoveries', 0)} "
          f"(reconnects {fs.get('reconnects', 0)}, "
          f"migrations {fs.get('migrations', 0)}, "
          f"cloud fallbacks {fs.get('cloud_fallbacks', 0)})")
    mean_rt = fs.get("mean_recovery_time_s")
    if mean_rt is not None:
        print(f"recovery:    mean {mean_rt * 1000:.0f} ms, "
              f"max {fs.get('max_recovery_time_s', 0) * 1000:.0f} ms")
    print(f"lost:        {fs.get('segments_lost_to_faults', 0)} segments "
          f"to faults, {fs.get('stale_suppressed', 0)} stale suppressed")
    print(f"digest:      {obs.digest()}")
    checks = "skipped" if args.no_check else (
        f"passed ({len(obs.checkers)} checkers)")
    print(f"invariants:  {checks}")
    print(f"[{elapsed:.1f}s, scale={args.scale}, seed={args.seed}]")
    return 0


def build_orchestrate_parser() -> argparse.ArgumentParser:
    from repro.core.assignment import STRATEGY_NAMES
    from repro.experiments.orchestration import CHURN_MODES, SKEW_EXPONENTS

    parser = argparse.ArgumentParser(
        prog="cloudfog orchestrate",
        description="Run the assignment strategies head to head on one "
                    "scenario and report per-strategy QoE plus the "
                    "load-distribution indices (Gini, Herfindahl, "
                    "coefficient of variation) that show when the "
                    "DRAGON-style distributed negotiation beats the "
                    "paper's greedy placement.",
    )
    parser.add_argument(
        "--strategies", default=",".join(STRATEGY_NAMES),
        metavar="A,B,...",
        help="comma-separated strategies to compare "
             f"(default {','.join(STRATEGY_NAMES)})")
    parser.add_argument(
        "--skew", default="skewed", choices=sorted(SKEW_EXPONENTS),
        help="population load skew scenario (default skewed)")
    parser.add_argument(
        "--churn", default="none", choices=CHURN_MODES,
        help="supernode churn: none, or the crash-recover fault preset "
             "(default none)")
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="population scale factor in (0, 1] (default 0.05)")
    parser.add_argument(
        "--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--duration", type=float, default=12.0, metavar="S",
        help="session horizon in seconds (default 12)")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the per-strategy report as JSON to PATH "
             "('-' = stdout)")
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the live invariant checkers")
    add_execution_args(parser)
    return parser


def orchestrate_main(argv: list[str] | None = None) -> int:
    """``cloudfog orchestrate``: strategy comparison under telemetry."""
    import repro.obs as obs_mod
    from repro.obs import Observability, TraceRecorder, default_checkers
    from repro.core.assignment import STRATEGY_NAMES
    from repro.experiments.orchestration import (
        OrchestrationConfig,
        run_orchestration,
    )

    parser = build_orchestrate_parser()
    args = parser.parse_args(argv)
    # One comparison run rather than a sweep; shared execution flags are
    # accepted and validated so every subcommand speaks the same language.
    _config_from_args(parser, args).close()
    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    for s in strategies:
        if s not in STRATEGY_NAMES:
            parser.error(f"unknown strategy {s!r}; "
                         f"choose from {STRATEGY_NAMES}")
    cfg = OrchestrationConfig(duration_s=args.duration)

    t0 = time.time()
    reports: dict[str, dict] = {}
    digests: dict[str, str] = {}
    for strategy in strategies:
        obs = Observability(
            trace=TraceRecorder(),
            checkers=[] if args.no_check else default_checkers(),
        )
        with obs_mod.use(obs):
            reports[strategy] = run_orchestration(
                args.scale, args.seed, strategy=strategy,
                skew=args.skew, churn=args.churn, config=cfg)
        digests[strategy] = obs.digest()
    elapsed = time.time() - t0

    if args.json:
        payload = {
            "scenario": {"skew": args.skew, "churn": args.churn,
                         "scale": args.scale, "seed": args.seed,
                         "duration_s": args.duration},
            "strategies": reports,
            "digests": digests,
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
            print(f"wrote orchestration report to {args.json}")

    first = reports[strategies[0]]
    print(f"scenario:    skew={args.skew} churn={args.churn} "
          f"({first['n_players']} players)")
    header = (f"{'strategy':<13} {'contin':>7} {'satisf':>7} {'lat ms':>7} "
              f"{'sn %':>5} {'gini':>6} {'hhi':>6} {'cv':>6} "
              f"{'rounds':>6} {'max':>4}")
    print(header)
    for strategy in strategies:
        rep = reports[strategy]
        li = rep["load_indices"] or {}
        neg = li.get("negotiation") or {}
        rounds = (f"{neg['mean_rounds']:.2f}" if neg else "-")
        max_r = (str(neg["max_rounds_seen"]) if neg else "-")
        print(f"{strategy:<13} {rep['continuity']:>7.4f} "
              f"{rep['satisfied']:>7.4f} "
              f"{rep['mean_latency_s'] * 1000:>7.1f} "
              f"{rep['served_supernode'] * 100:>5.1f} "
              f"{li.get('gini_users', 0.0):>6.3f} "
              f"{li.get('herfindahl_users', 0.0):>6.3f} "
              f"{li.get('cv_users', 0.0):>6.3f} "
              f"{rounds:>6} {max_r:>4}")
    for strategy in strategies:
        print(f"digest[{strategy}]: {digests[strategy]}")
    checks = "skipped" if args.no_check else "passed"
    print(f"invariants:  {checks}")
    print(f"[{elapsed:.1f}s, scale={args.scale}, seed={args.seed}]")
    return 0


def build_scale_parser() -> argparse.ArgumentParser:
    from repro.core.cohort import FAULT_PRESETS
    from repro.sim.engine import QUEUE_KINDS

    parser = argparse.ArgumentParser(
        prog="cloudfog scale",
        description="Run the cohort-vectorised million-player kernel: "
                    "one deterministic multi-region run, reporting "
                    "P50/P95/P99 response latency, satisfaction, and "
                    "kernel statistics.",
    )
    parser.add_argument(
        "--players", type=int, default=100_000,
        help="population size (default 100000; 1000000 works)")
    parser.add_argument(
        "--regions", type=int, default=8,
        help="number of supernode regions (default 8)")
    parser.add_argument(
        "--ticks", type=int, default=120,
        help="simulated playback ticks (default 120)")
    parser.add_argument(
        "--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--mode", choices=("cohort", "per-player"), default="cohort",
        help="execution mode; traces are byte-identical (default cohort)")
    parser.add_argument(
        "--queue", choices=QUEUE_KINDS, default="calendar",
        help="event-queue kind (default calendar)")
    parser.add_argument(
        "--faults", choices=FAULT_PRESETS, default="outage",
        help="fault preset (default outage: one region fails over "
             "for the middle third of the run)")
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the report as JSON to PATH ('-' = stdout)")
    add_execution_args(parser)
    return parser


def scale_main(argv: list[str] | None = None) -> int:
    """``cloudfog scale``: one cohort-kernel run with a latency report."""
    from repro.core.cohort import ScaleSpec, run_scale

    parser = build_scale_parser()
    args = parser.parse_args(argv)
    # Single-kernel run (no sweep); accept + validate the shared
    # execution flags so all subcommands take identical options.
    _config_from_args(parser, args).close()
    try:
        spec = ScaleSpec(
            n_players=args.players, n_regions=args.regions,
            n_ticks=args.ticks, seed=args.seed, mode=args.mode,
            queue=args.queue, faults=args.faults)
    except ValueError as exc:
        parser.error(str(exc))
    t0 = time.time()
    report = run_scale(spec)
    elapsed = time.time() - t0
    if args.json is not None:
        payload = report.to_dict()
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
            print(f"wrote scale report to {args.json}")
    print(report.format_text())
    print(f"[{elapsed:.1f}s, {report.events_scheduled} events, "
          f"{report.events_scheduled / max(elapsed, 1e-9):,.0f} events/s]")
    return 0


def build_dynamics_parser() -> argparse.ArgumentParser:
    from repro.core.cohort import FAULT_PRESETS
    from repro.dynamics import DYNAMICS_PRESETS, DYNAMICS_STRATEGIES
    from repro.sim.engine import QUEUE_KINDS

    parser = argparse.ArgumentParser(
        prog="cloudfog dynamics",
        description="Run the cohort kernel under a deterministic "
                    "population-dynamics plan: join/leave churn, "
                    "regional flash crowds, diurnal load and mobility, "
                    "with overload-graceful supernodes that refuse, "
                    "shed and evict sessions before collapsing.",
    )
    parser.add_argument(
        "--preset", default="flash-crowd", choices=DYNAMICS_PRESETS,
        help="dynamics plan preset (default flash-crowd)")
    parser.add_argument(
        "--intensity", type=int, default=1,
        help="preset intensity: 0 = empty plan (baseline), higher = "
             "more churn / larger surges (default 1)")
    parser.add_argument(
        "--plan", default=None, metavar="PATH",
        help="load a DynamicsPlan from a JSON file instead of a preset")
    parser.add_argument(
        "--players", type=int, default=20_000,
        help="population size (default 20000; 100000+ works)")
    parser.add_argument(
        "--regions", type=int, default=8,
        help="number of supernode regions (default 8)")
    parser.add_argument(
        "--ticks", type=int, default=120,
        help="simulated playback ticks (default 120)")
    parser.add_argument(
        "--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--mode", choices=("cohort", "per-player"), default="cohort",
        help="execution mode; traces are byte-identical (default cohort)")
    parser.add_argument(
        "--queue", choices=QUEUE_KINDS, default="calendar",
        help="event-queue kind (default calendar)")
    parser.add_argument(
        "--faults", choices=FAULT_PRESETS, default="none",
        help="fault preset layered under the dynamics (default none)")
    parser.add_argument(
        "--initial-fraction", type=float, default=0.5, metavar="F",
        help="fraction of the population online at tick 0; the rest "
             "join through the plan (default 0.5; 1.0 with an empty "
             "plan reproduces the static baseline byte-for-byte)")
    parser.add_argument(
        "--strategy", default="graceful", choices=DYNAMICS_STRATEGIES,
        help="overload strategy: graceful = admission control + "
             "quality-ladder shedding, none = serve everyone at full "
             "tier and let queues grow (default graceful)")
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the report as JSON to PATH ('-' = stdout)")
    add_execution_args(parser)
    return parser


def dynamics_main(argv: list[str] | None = None) -> int:
    """``cloudfog dynamics``: population churn + overload degradation."""
    import repro.obs as obs_mod
    from repro.obs import Observability
    from repro.core.cohort import ScaleSpec
    from repro.dynamics import (
        DynamicsPlan,
        DynamicsSpec,
        preset_dynamics,
        run_dynamics,
    )

    parser = build_dynamics_parser()
    args = parser.parse_args(argv)
    # One kernel run, not a sweep; validate the shared execution flags
    # so every subcommand accepts the same options.
    _config_from_args(parser, args).close()
    try:
        base = ScaleSpec(
            n_players=args.players, n_regions=args.regions,
            n_ticks=args.ticks, seed=args.seed, mode=args.mode,
            queue=args.queue, faults=args.faults)
        if args.plan:
            with open(args.plan, encoding="utf-8") as fp:
                plan = DynamicsPlan.from_dict(json.load(fp))
        else:
            plan = preset_dynamics(
                args.preset, horizon_s=args.ticks * base.params.tick_s,
                n_players=args.players, n_regions=args.regions,
                intensity=args.intensity, seed=args.seed)
        initial = (1.0 if plan.is_empty else args.initial_fraction)
        dspec = DynamicsSpec(base=base, plan=plan,
                             initial_fraction=initial,
                             strategy=args.strategy)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))
    obs = Observability()
    t0 = time.time()
    with obs_mod.use(obs):
        report = run_dynamics(dspec, obs=obs)
    elapsed = time.time() - t0
    if args.json is not None:
        payload = report.to_dict()
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
            print(f"wrote dynamics report to {args.json}")
    plan_desc = (args.plan if args.plan
                 else f"{args.preset} @ intensity {args.intensity}")
    print(f"plan:       {plan_desc} ({len(plan)} sources)")
    print(report.format_text())
    print(f"[{elapsed:.1f}s, {report.scale.events_scheduled} events, "
          f"{report.scale.events_scheduled / max(elapsed, 1e-9):,.0f} "
          f"events/s]")
    return 1 if report.invariants else 0


def build_worker_parser() -> argparse.ArgumentParser:
    from repro.experiments.backends.worker import (
        DEFAULT_HEARTBEAT_S,
        DEFAULT_RECONNECT_MAX_S,
        DEFAULT_SCHEDULER_TIMEOUT_S,
    )

    parser = argparse.ArgumentParser(
        prog="cloudfog worker",
        description="Run a sweep worker daemon for the remote execution "
                    "backend. Workers execute pickled sweep tasks with "
                    "the same function the inline backend uses, so a "
                    "remote run's digests are byte-identical to a local "
                    "one. The protocol trusts its peers (pickle): bind "
                    "to loopback or a private network only.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="dial a scheduler (cloudfog ... --backend remote --listen "
             "HOST:PORT) and serve it until it disconnects")
    mode.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="bind here (port 0 = ephemeral; the bound address is "
             "printed) and serve schedulers that dial in via --workers")
    parser.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker id reported to schedulers (default host-pid)")
    parser.add_argument(
        "--once", action="store_true",
        help="with --listen: exit after the first scheduler disconnects")
    parser.add_argument(
        "--reconnect", action="store_true",
        help="with --connect: survive scheduler EOF/silence by "
             "redialling under capped exponential backoff with jitter; "
             "exit only on a clean bye")
    parser.add_argument(
        "--reconnect-max", type=float, default=DEFAULT_RECONNECT_MAX_S,
        metavar="S",
        help="cap on the reconnect backoff delay (default "
             f"{DEFAULT_RECONNECT_MAX_S:g})")
    parser.add_argument(
        "--heartbeat-interval", type=float, default=DEFAULT_HEARTBEAT_S,
        metavar="S",
        help="seconds between liveness heartbeats (default "
             f"{DEFAULT_HEARTBEAT_S:g})")
    parser.add_argument(
        "--slots", type=int, default=1, metavar="N",
        help="execute up to N tasks concurrently in an in-worker "
             "process pool, streaming results as slots free up "
             "(default 1 = sequential in the main thread)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="local payload cache keyed by task digest: repeat tasks "
             "replay from disk, and tasks whose blob the scheduler "
             "already stores are confirmed by hash instead of "
             "re-shipped")
    parser.add_argument(
        "--compress", nargs="?", const="auto", default="auto",
        choices=COMPRESS_NAMES, metavar="CODEC",
        help="wire-frame compression policy negotiated with the "
             "scheduler (default auto; none = legacy CFW1 frames)")
    parser.add_argument(
        "--scheduler-timeout", type=float,
        default=DEFAULT_SCHEDULER_TIMEOUT_S, metavar="S",
        help="declare a vanished scheduler dead after S seconds of "
             "wire silence and (with --listen) return to accepting "
             "(default "
             f"{DEFAULT_SCHEDULER_TIMEOUT_S:g}; 0 disables)")
    return parser


def worker_main(argv: list[str] | None = None) -> int:
    """``cloudfog worker``: serve sweep tasks for a remote scheduler."""
    from repro.experiments.backends.worker import run_worker

    parser = build_worker_parser()
    args = parser.parse_args(argv)
    try:
        return run_worker(connect=args.connect, listen=args.listen,
                          worker_id=args.id, once=args.once,
                          heartbeat_s=args.heartbeat_interval,
                          slots=args.slots, cache_dir=args.cache_dir,
                          compress=args.compress,
                          scheduler_timeout_s=args.scheduler_timeout,
                          reconnect=args.reconnect,
                          reconnect_max_s=args.reconnect_max)
    except ValueError as exc:
        parser.error(str(exc))


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "orchestrate":
        return orchestrate_main(argv[1:])
    if argv and argv[0] == "scale":
        return scale_main(argv[1:])
    if argv and argv[0] == "dynamics":
        return dynamics_main(argv[1:])
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "ladder":
        _print_ladder()
        return 0

    from repro.experiments.backends.remote import RemoteFabricError
    from repro.experiments.resilience import SweepFailure

    cfg = _config_from_args(parser, args)
    cache = cfg.cache

    t0 = time.time()
    names = (list(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    run_results_by_name = {}
    try:
        for name in names:
            run_results_by_name.update(run_results(
                name, scale=args.scale, seed=args.seed, config=cfg))
    except SweepFailure as exc:
        print("sweep failed:", file=sys.stderr)
        print(exc.report(), file=sys.stderr)
        print("(completed tasks are cached and journalled; re-run with "
              "--cache-dir to pick them up, or add --keep-going to "
              "salvage partial results)", file=sys.stderr)
        return 1
    except RemoteFabricError as exc:
        print(f"remote fabric failed: {exc}", file=sys.stderr)
        print("(completed tasks are cached and journalled; re-run with "
              "--cache-dir and --resume once workers are back)",
              file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\ninterrupted — completed tasks were checkpointed; "
              "re-run with --cache-dir and --resume to finish the sweep",
              file=sys.stderr)
        return 130
    finally:
        cfg.close()
    results = {name: r.series for name, r in run_results_by_name.items()}

    if args.json is not None:
        payload = {
            name: [s.to_dict() for s in series]
            for name, series in results.items()
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, indent=2)
            print(f"wrote {sum(len(v) for v in payload.values())} series "
                  f"to {args.json}")
    elif args.plot:
        from repro.metrics.ascii_plot import print_chart
        for name, series in results.items():
            print_chart(series, title=name)
            print()
    else:
        for name, series in results.items():
            print_series(series, title=name)
    if cache is not None:
        errors = f", {cache.errors} errors" if cache.errors else ""
        print(f"[cache] {cache.hits} hits, {cache.misses} misses{errors} "
              f"({len(cache)} entries in {cache.root})")
    resumed = sum(r.tasks_resumed for r in run_results_by_name.values())
    retried = sum(r.tasks_retried for r in run_results_by_name.values())
    if resumed or retried:
        print(f"[resilience] {resumed} task(s) restored from the run "
              f"journal, {retried} retried")
    failures = [f for r in run_results_by_name.values()
                for f in r.failures]
    print(f"\n[{time.time() - t0:.1f}s, scale={args.scale}, "
          f"seed={args.seed}, jobs={args.jobs}]")
    if failures:
        print(f"partial results: {len(failures)} sweep task(s) failed "
              f"after retries:", file=sys.stderr)
        for f in failures:
            print(f"  - {f.describe()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
