"""Host population and metro-clustered placement.

Players, supernodes and datacenters are hosts on the plane. Real user
populations are city-clustered, and that clustering is what makes
supernodes effective in the paper: supernodes are recruited *from the
player population*, so they are near players by construction, while
datacenters sit in a handful of fixed locations.

The topology model:

* ``n_metros`` metro areas with Zipf-like population weights, scattered
  uniformly over the plane;
* each host samples a metro by weight and a Gaussian offset around its
  centre (``metro_spread_km``);
* datacenters are placed at the centres of the most populous metros
  (mirroring where commercial clouds build regions).

A :class:`networkx.Graph` view is available for structural analysis and
visualisation, but the latency model works directly on coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import networkx as nx
import numpy as np

from repro.network.geometry import (
    PLANE_HEIGHT_KM,
    PLANE_WIDTH_KM,
    clip_to_plane,
)


class HostKind(Enum):
    """Role of a host in the gaming infrastructure."""

    PLAYER = "player"
    SUPERNODE = "supernode"
    DATACENTER = "datacenter"
    EDGE_SERVER = "edge_server"


@dataclass(frozen=True, slots=True)
class Metro:
    """A metro area: a population cluster on the plane."""

    metro_id: int
    center_km: tuple[float, float]
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("metro weight must be positive")


@dataclass(slots=True)
class Host:
    """One host: a player machine, supernode, datacenter or edge server."""

    host_id: int
    kind: HostKind
    metro_id: int
    position_km: tuple[float, float]


@dataclass
class Topology:
    """The full placed host population.

    Attributes
    ----------
    metros:
        Metro areas, sorted by descending weight.
    hosts:
        All hosts; ``hosts[i].host_id == i``.
    positions_km:
        ``(n_hosts, 2)`` coordinate array aligned with ``hosts``.
    """

    metros: list[Metro]
    hosts: list[Host] = field(default_factory=list)
    positions_km: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2)))

    def indices_of(self, kind: HostKind) -> np.ndarray:
        """Host ids of all hosts of ``kind``."""
        return np.array(
            [h.host_id for h in self.hosts if h.kind is kind], dtype=int)

    def metro_id_array(self) -> np.ndarray:
        """Metro id of every host, aligned with host ids."""
        return np.array([h.metro_id for h in self.hosts], dtype=int)

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def add_host(
        self,
        kind: HostKind,
        metro_id: int,
        position_km: tuple[float, float],
    ) -> Host:
        """Append a host and keep the coordinate array in sync."""
        host = Host(len(self.hosts), kind, metro_id, position_km)
        self.hosts.append(host)
        self.positions_km = np.vstack(
            [self.positions_km, np.array([position_km])])
        return host

    def graph(self) -> nx.Graph:
        """A networkx view: hosts as nodes, metro co-location as edges."""
        g = nx.Graph()
        for h in self.hosts:
            g.add_node(h.host_id, kind=h.kind.value, metro=h.metro_id,
                       pos=h.position_km)
        by_metro: dict[int, list[int]] = {}
        for h in self.hosts:
            by_metro.setdefault(h.metro_id, []).append(h.host_id)
        for members in by_metro.values():
            hub = members[0]
            for other in members[1:]:
                g.add_edge(hub, other)
        return g


def make_metros(
    rng: np.random.Generator,
    n_metros: int = 50,
    zipf_exponent: float = 1.0,
) -> list[Metro]:
    """Create metros with Zipf-distributed weights at random positions."""
    if n_metros <= 0:
        raise ValueError("need at least one metro")
    ranks = np.arange(1, n_metros + 1, dtype=float)
    weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()
    xs = rng.uniform(0.0, PLANE_WIDTH_KM, size=n_metros)
    ys = rng.uniform(0.0, PLANE_HEIGHT_KM, size=n_metros)
    return [
        Metro(i, (float(xs[i]), float(ys[i])), float(weights[i]))
        for i in range(n_metros)
    ]


def sample_host_positions(
    rng: np.random.Generator,
    metros: list[Metro],
    n_hosts: int,
    metro_spread_km: float = 40.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample host coordinates clustered around metros.

    Returns
    -------
    (positions, metro_ids):
        ``(n_hosts, 2)`` coordinates and the metro index of each host.
    """
    if n_hosts < 0:
        raise ValueError("n_hosts must be nonnegative")
    weights = np.array([m.weight for m in metros])
    weights = weights / weights.sum()
    metro_ids = rng.choice(len(metros), size=n_hosts, p=weights)
    centers = np.array([metros[m].center_km for m in metro_ids]) if n_hosts \
        else np.empty((0, 2))
    offsets = rng.normal(0.0, metro_spread_km, size=(n_hosts, 2))
    return clip_to_plane(centers + offsets), metro_ids


#: Datacenters are built where land and power are cheap, typically a few
#: hundred km from the population centres they serve (us-east-1 is in
#: rural Virginia, not New York). The offset is what keeps datacenter
#: coverage below supernode coverage at strict latency requirements.
DC_OFFSET_KM = 350.0


def build_topology(
    rng: np.random.Generator,
    n_players: int,
    n_datacenters: int,
    n_metros: int = 50,
    metro_spread_km: float = 40.0,
    zipf_exponent: float = 1.0,
    dc_offset_km: float = DC_OFFSET_KM,
) -> Topology:
    """Assemble a topology: metros, datacenters near top metros, players.

    Datacenter hosts come first (ids ``0..n_datacenters-1``), players
    after — experiments rely on this ordering when extending a sweep
    (e.g. "add 5 more datacenters" reuses the same player placement).
    """
    metros = make_metros(rng, n_metros, zipf_exponent)
    ordered = sorted(metros, key=lambda m: -m.weight)
    topo = Topology(metros=ordered)

    for k in range(n_datacenters):
        metro = ordered[k % len(ordered)]
        # Offset from the metro centre in a per-site direction; successive
        # rounds through the metro list land at distinct angles so a 26th
        # datacenter near the top metro is a distinct site.
        angle = 2.0 * np.pi * (k * 0.6180339887498949 % 1.0)
        offset = dc_offset_km * np.array([np.cos(angle), np.sin(angle)])
        pos = clip_to_plane(np.array(metro.center_km) + offset)
        # Unique negative metro id: a datacenter shares no regional
        # network with any metro (it is hundreds of km out of town).
        topo.add_host(HostKind.DATACENTER, -(k + 1),
                      (float(pos[0]), float(pos[1])))

    positions, metro_ids = sample_host_positions(
        rng, ordered, n_players, metro_spread_km)
    for i in range(n_players):
        topo.add_host(HostKind.PLAYER, int(metro_ids[i]),
                      (float(positions[i, 0]), float(positions[i, 1])))
    return topo


@dataclass(frozen=True)
class Regions:
    """A region-granular population for scale runs (DESIGN.md §11).

    The full :class:`Topology` materialises one :class:`Host` object per
    player and an ``(n, 2)`` coordinate row appended per host — fine for
    the paper's 10 000 players, hopeless for a million. At scale the
    simulation only ever needs (a) which *region* a player lives in and
    (b) region-to-region propagation, so this builder keeps exactly
    that: O(regions) centroids plus one int32 region id per player.

    Attributes
    ----------
    centers_km:
        ``(n_regions, 2)`` region centroid coordinates.
    weights:
        Normalised population weight of each region (Zipf-like).
    region_of_player:
        ``(n_players,)`` int32 region id of every player.
    """

    centers_km: np.ndarray
    weights: np.ndarray
    region_of_player: np.ndarray

    @property
    def n_regions(self) -> int:
        return self.centers_km.shape[0]

    @property
    def n_players(self) -> int:
        return self.region_of_player.shape[0]

    def player_counts(self) -> np.ndarray:
        """Players per region (int64, aligned with region ids)."""
        return np.bincount(self.region_of_player,
                           minlength=self.n_regions).astype(np.int64)


def build_regions(
    rng: np.random.Generator,
    n_players: int,
    n_regions: int = 8,
) -> Regions:
    """Build a region-granular scale population, fully vectorised.

    Region centroids are uniform on the plane; population weights follow
    the harmonic (Zipf ``s=1``) profile ``1/rank``, computed by exact
    division rather than ``**`` so the weights — and every digest
    downstream of the region assignment — carry no libm ``pow`` ULP
    variance across platforms. Memory and time are O(regions + players);
    no :class:`Host` objects, no per-host coordinate rows.
    """
    if n_regions <= 0:
        raise ValueError("need at least one region")
    if n_players < 0:
        raise ValueError("n_players must be nonnegative")
    weights = 1.0 / np.arange(1, n_regions + 1, dtype=np.float64)
    weights /= weights.sum()
    xs = rng.uniform(0.0, PLANE_WIDTH_KM, size=n_regions)
    ys = rng.uniform(0.0, PLANE_HEIGHT_KM, size=n_regions)
    centers = np.column_stack([xs, ys])
    region_of_player = rng.choice(
        n_regions, size=n_players, p=weights).astype(np.int32)
    return Regions(centers_km=centers, weights=weights,
                   region_of_player=region_of_player)


def place_edge_servers(
    topo: Topology,
    rng: np.random.Generator,
    n_servers: int,
    metro_spread_km: float = 40.0,
) -> np.ndarray:
    """Add EdgeCloud's randomly distributed edge servers to a topology.

    The paper places EdgeCloud's additional servers "randomly distributed";
    we sample them from the metro population distribution (a server in the
    middle of nowhere would be useless in either system). Unlike
    supernodes — which *are* player machines inside residential access
    networks — edge servers sit at infrastructure locations (server rooms,
    IXPs) near a metro but outside its access networks, so they get unique
    metro ids and do not share the same-metro access discount.
    """
    positions, metro_ids = sample_host_positions(
        rng, topo.metros, n_servers, metro_spread_km)
    ids = []
    for i in range(n_servers):
        h = topo.add_host(HostKind.EDGE_SERVER, -(1000 + i),
                          (float(positions[i, 0]), float(positions[i, 1])))
        ids.append(h.host_id)
    return np.array(ids, dtype=int)


def promote_supernodes(
    topo: Topology,
    candidate_player_ids: np.ndarray,
    n_supernodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mark ``n_supernodes`` random capable players as supernodes.

    Mirrors the paper's setup: 10 % of players "have the capacity to be
    supernodes" and 600 of them are randomly selected. The chosen hosts
    keep their position (they *are* player machines) but change kind.
    """
    candidates = np.asarray(candidate_player_ids, dtype=int)
    if n_supernodes > candidates.size:
        raise ValueError(
            f"cannot promote {n_supernodes} of {candidates.size} candidates")
    chosen = rng.choice(candidates, size=n_supernodes, replace=False)
    for host_id in chosen:
        topo.hosts[int(host_id)].kind = HostKind.SUPERNODE
    return np.sort(chosen)
