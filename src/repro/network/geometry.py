"""Planar geometry for host placement.

Hosts live on a 2-D plane measured in kilometres, sized like the
continental United States (the paper's PlanetLab deployment is
"nationwide"). Euclidean distance approximates great-circle distance well
enough at this scale for latency purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

#: Extent of the continental-US-scale plane, km (roughly west-east).
PLANE_WIDTH_KM = 4200.0
#: Extent of the plane, km (roughly south-north).
PLANE_HEIGHT_KM = 2500.0


@dataclass(frozen=True, slots=True)
class Point:
    """A location on the plane, in kilometres."""

    x_km: float
    y_km: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in kilometres."""
        return float(np.hypot(self.x_km - other.x_km, self.y_km - other.y_km))

    def as_array(self) -> np.ndarray:
        return np.array([self.x_km, self.y_km])


def distance_km(a: Point, b: Point) -> float:
    """Euclidean distance between two points in kilometres."""
    return a.distance_to(b)


def points_to_array(points: Iterable[Point]) -> np.ndarray:
    """Stack points into an ``(n, 2)`` float array."""
    pts = list(points)
    if not pts:
        return np.empty((0, 2))
    return np.array([[p.x_km, p.y_km] for p in pts])


def pairwise_distances_km(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs distances between two ``(n, 2)`` / ``(m, 2)`` arrays.

    Vectorized: this is the hot path of the coverage experiments
    (10 000 players x hundreds of candidate sites).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2 or b.ndim != 2 or b.shape[1] != 2:
        raise ValueError("expected (n, 2) coordinate arrays")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def clip_to_plane(xy: np.ndarray) -> np.ndarray:
    """Clamp coordinates into the plane's bounding box (in place safe)."""
    out = np.array(xy, dtype=float, copy=True)
    out[..., 0] = np.clip(out[..., 0], 0.0, PLANE_WIDTH_KM)
    out[..., 1] = np.clip(out[..., 1], 0.0, PLANE_HEIGHT_KM)
    return out
