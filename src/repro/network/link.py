"""Bandwidth-limited links and upload ports.

A :class:`Link` models a point-to-point path: serialization at the sender's
rate plus a fixed propagation delay. An :class:`UplinkPort` models a host's
*shared* upload: all outgoing transfers serialize FIFO through one port at
the host's upload capacity — the contention that the deadline-driven sender
buffer scheduling is designed to manage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


def degrade_rate(target, factor: float, attr: str = "rate_bps") -> float:
    """Scale a link-like object's rate by ``factor``; returns the
    original value for :func:`restore_rate`.

    Works on anything exposing a rate attribute (:class:`Link`,
    :class:`UplinkPort`, a streaming server's ``uplink_rate_bps``); the
    fault injector's bandwidth throttle is built on this pair.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError("degrade factor must lie in (0, 1]")
    original = getattr(target, attr)
    setattr(target, attr, original * factor)
    return original


def restore_rate(target, original: float, attr: str = "rate_bps") -> None:
    """Undo :func:`degrade_rate` exactly (no float round-tripping)."""
    setattr(target, attr, original)


class Link:
    """A point-to-point path with a rate and a propagation delay.

    Parameters
    ----------
    env:
        Owning environment.
    rate_bps:
        Serialization rate in bits per second.
    propagation_s:
        One-way propagation delay in seconds.
    """

    def __init__(self, env: "Environment", rate_bps: float, propagation_s: float):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if propagation_s < 0:
            raise ValueError("propagation delay must be nonnegative")
        self.env = env
        self.rate_bps = rate_bps
        self.propagation_s = propagation_s

    def transmission_time_s(self, size_bytes: float) -> float:
        """Time to serialize ``size_bytes`` onto the link."""
        return 8.0 * size_bytes / self.rate_bps

    def delivery_time_s(self, size_bytes: float) -> float:
        """Serialization plus propagation for a message of ``size_bytes``."""
        return self.transmission_time_s(size_bytes) + self.propagation_s

    def transfer(self, size_bytes: float):
        """Process generator: wait out a full transfer of ``size_bytes``."""
        yield self.env.timeout(self.delivery_time_s(size_bytes))

    def degrade(self, rate_factor: float = 1.0,
                extra_propagation_s: float = 0.0) -> tuple[float, float]:
        """Apply a reversible degradation; returns a restore token."""
        if extra_propagation_s < 0:
            raise ValueError("extra propagation must be nonnegative")
        token = (self.rate_bps, self.propagation_s)
        degrade_rate(self, rate_factor)
        self.propagation_s += extra_propagation_s
        return token

    def restore(self, token: tuple[float, float]) -> None:
        """Undo :meth:`degrade` exactly."""
        self.rate_bps, self.propagation_s = token


class UplinkPort:
    """A host's shared upload port: FIFO serialization at a fixed rate.

    Transfers are admitted in request order; each occupies the port for its
    serialization time, after which the payload still needs its propagation
    delay to arrive. The port tracks cumulative bytes sent and busy time so
    experiments can report bandwidth consumption and utilization.

    Notes
    -----
    The port implements *work-conserving* FIFO service by keeping a virtual
    "port free at" timestamp — O(1) per transfer, no process context needed.
    """

    def __init__(self, env: "Environment", rate_bps: float):
        if rate_bps <= 0:
            raise ValueError("uplink rate must be positive")
        self.env = env
        self.rate_bps = rate_bps
        self._free_at_s = 0.0
        self.bytes_sent = 0.0
        self.busy_time_s = 0.0

    @property
    def backlog_s(self) -> float:
        """Seconds of already-committed serialization ahead of a new send."""
        return max(0.0, self._free_at_s - self.env.now)

    def utilization(self, since_s: float = 0.0) -> float:
        """Fraction of wall time the port has been busy since ``since_s``."""
        horizon = self.env.now - since_s
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time_s / horizon)

    def send(self, size_bytes: float, propagation_s: float) -> Event:
        """Enqueue a transfer; returns an event firing at delivery time.

        The event's value is the delivery timestamp (seconds).
        """
        if size_bytes < 0:
            raise ValueError("size must be nonnegative")
        start = max(self.env.now, self._free_at_s)
        tx = 8.0 * size_bytes / self.rate_bps
        self._free_at_s = start + tx
        self.bytes_sent += size_bytes
        self.busy_time_s += tx
        done_at = self._free_at_s + propagation_s
        return self.env.timeout(done_at - self.env.now, value=done_at)

    def departure_time_s(self, size_bytes: float) -> float:
        """When the last bit of a hypothetical send would leave the port."""
        start = max(self.env.now, self._free_at_s)
        return start + 8.0 * size_bytes / self.rate_bps


class DownlinkMeter:
    """Accounts a receiver's download rate over a sliding window.

    The receiver-driven rate adaptation needs ``d(t_k)`` — the measured
    downloading rate (Eq. 7). This meter records byte arrivals and reports
    the average rate over the most recent ``window_s`` seconds.
    """

    def __init__(self, env: "Environment", window_s: float = 2.0):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.env = env
        self.window_s = window_s
        self._arrivals: list[tuple[float, float]] = []  # (time, bytes)
        self.total_bytes = 0.0

    def record(self, size_bytes: float) -> None:
        """Register ``size_bytes`` arriving now."""
        self._arrivals.append((self.env.now, size_bytes))
        self.total_bytes += size_bytes
        self._expire()

    def _expire(self) -> None:
        cutoff = self.env.now - self.window_s
        while self._arrivals and self._arrivals[0][0] < cutoff:
            self._arrivals.pop(0)

    def rate_bps(self) -> float:
        """Average download rate over the window, bits per second."""
        self._expire()
        if not self._arrivals:
            return 0.0
        got = sum(b for _, b in self._arrivals)
        return 8.0 * got / self.window_s
