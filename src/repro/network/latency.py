"""One-way latency model between hosts.

Model
-----
``one_way(i, j) = access_i + access_j + inflation * dist(i, j) / v + jitter``

* ``access_i`` — per-host last-mile/access-network delay, drawn once per
  host from a lognormal distribution. This is the dominant term for nearby
  pairs and the reason real datacenter coverage saturates well below 100 %
  (Choy et al., NetGames 2012): a sizeable tail of users has 30+ ms of
  access delay that no amount of datacenters removes.
* propagation — Euclidean distance over the speed of light in fibre
  (~200 km/ms), multiplied by a route-inflation factor (~1.6) because IP
  routes are not geodesics.
* ``jitter`` — nonnegative pairwise noise modelling queueing variation.

Network *response* latency for a served player (the quantity compared to
the paper's 30–110 ms game requirements) is an action upload plus a video
download: ``rtt = 2 × one_way``.

Calibration (see ``tests/network/test_calibration.py``): with the default
parameters, 13 datacenters placed in the largest metros reach ≤80 ms RTT
for roughly 65–75 % of clustered users, matching the Choy et al.
measurement the paper cites; 5 datacenters cover well under half the users
at strict (≤50 ms) requirements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.geometry import pairwise_distances_km

#: Propagation speed of light in fibre, km per second.
FIBRE_KM_PER_S = 200_000.0


@dataclass(frozen=True, slots=True)
class LatencyParams:
    """Constants of the latency model (all latencies in seconds).

    Access latency is bimodal, following the Choy et al. measurement the
    paper builds on: most users have decent last-mile connectivity, but a
    sizeable minority ("a sizeable portion of the population would
    experience significantly degraded QoE") has poor access that no
    datacenter placement fixes.
    """

    #: Median of the well-connected majority's access latency.
    access_median_s: float = 0.012
    #: Log-space sigma of the well-connected access latency.
    access_sigma: float = 0.6
    #: Fraction of hosts with poor last-mile connectivity.
    poor_fraction: float = 0.38
    #: Median access latency of the poorly connected minority.
    poor_median_s: float = 0.055
    #: Log-space sigma of the poor access latency.
    poor_sigma: float = 0.5
    #: Multiplier on geometric distance to account for route inflation.
    route_inflation: float = 2.0
    #: Scale of the exponential pairwise jitter.
    jitter_scale_s: float = 0.002
    #: Access-latency multiplier for *same-metro* pairs. Traffic between
    #: two hosts in one metro stays inside the regional network and skips
    #: the congested peering/transit segments that dominate measured
    #: last-mile latency — the physical reason a neighbourhood supernode
    #: can reach players that no datacenter can (paper §I, §III-A).
    local_access_factor: float = 0.3
    #: TCP window bytes bounding per-path streaming throughput: a long-RTT
    #: path delivers at most ``window × 8 / rtt`` bits per second. This is
    #: why "downstream latency is affected by the game video streaming
    #: rate" (§III-A): remote clouds stream slowly, nearby supernodes fast.
    tcp_window_bytes: float = 48 * 1024

    def __post_init__(self) -> None:
        if self.access_median_s < 0 or self.jitter_scale_s < 0:
            raise ValueError("latency scales must be nonnegative")
        if not 0.0 <= self.poor_fraction <= 1.0:
            raise ValueError("poor_fraction must be in [0, 1]")
        if self.route_inflation < 1.0:
            raise ValueError("route inflation must be >= 1")


class LatencyModel:
    """Computes one-way latencies for a fixed host population.

    Parameters
    ----------
    positions_km:
        ``(n, 2)`` host coordinates.
    rng:
        Source of randomness for access latencies and jitter.
    params:
        Model constants.

    Notes
    -----
    Access latencies are drawn once at construction; pairwise jitter is
    drawn deterministically per (i, j) pair via a counter-based hash of the
    pair, so ``one_way(i, j)`` is stable across calls and symmetric.
    """

    def __init__(
        self,
        positions_km: np.ndarray,
        rng: np.random.Generator,
        params: LatencyParams | None = None,
        metro_ids: np.ndarray | None = None,
    ):
        self.params = params or LatencyParams()
        self.positions_km = np.asarray(positions_km, dtype=float)
        if self.positions_km.ndim != 2 or self.positions_km.shape[1] != 2:
            raise ValueError("positions_km must be (n, 2)")
        if metro_ids is None:
            # No metro info: every host in its own metro (no local paths).
            self.metro_ids = -np.arange(
                1, self.positions_km.shape[0] + 1, dtype=int)
        else:
            self.metro_ids = np.asarray(metro_ids, dtype=int)
            if self.metro_ids.shape[0] != self.positions_km.shape[0]:
                raise ValueError("metro_ids must align with positions")
        n = self.positions_km.shape[0]
        p = self.params
        if p.access_median_s > 0:
            good = rng.lognormal(
                np.log(p.access_median_s), p.access_sigma, size=n)
            if p.poor_fraction > 0 and p.poor_median_s > 0:
                poor = rng.lognormal(
                    np.log(p.poor_median_s), p.poor_sigma, size=n)
                is_poor = rng.uniform(size=n) < p.poor_fraction
                self.access_s = np.where(is_poor, poor, good)
            else:
                self.access_s = good
        else:
            self.access_s = np.zeros(n)
        # Independent per-host jitter seeds; pair jitter is derived from
        # them so it is symmetric and reproducible without an O(n^2) table.
        self._jitter_seed = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)

    def override_access(
        self, host_ids: np.ndarray, access_s: np.ndarray | float
    ) -> None:
        """Replace the access latency of selected hosts.

        Datacenters sit in carrier hotels and supernodes are vetted for
        connection quality (paper §III-A-1 requires supernodes to be
        reliable and stable), so both get far better access links than the
        consumer player population.
        """
        host_ids = np.asarray(host_ids, dtype=int)
        self.access_s[host_ids] = access_s

    @property
    def n_hosts(self) -> int:
        return self.positions_km.shape[0]

    # -- scalar API ---------------------------------------------------------
    def propagation_s(self, i: int, j: int) -> float:
        """Distance-dependent propagation delay between hosts i and j."""
        d_km = float(np.hypot(*(self.positions_km[i] - self.positions_km[j])))
        return self.params.route_inflation * d_km / FIBRE_KM_PER_S

    def _pair_jitter_s(self, i: int, j: int) -> float:
        if self.params.jitter_scale_s == 0:
            return 0.0
        lo, hi = (i, j) if i <= j else (j, i)
        mask = (1 << 64) - 1
        mix = int(self._jitter_seed[lo]) ^ (
            (int(self._jitter_seed[hi]) * 0x9E3779B97F4A7C15) & mask)
        # murmur-style scramble -> uniform in (0, 1)
        x = mix & mask
        x ^= x >> 33
        x = (x * 0xFF51AFD7ED558CCD) & mask
        x ^= x >> 33
        u = (float(x) + 1.0) / (2.0**64 + 2.0)
        return -self.params.jitter_scale_s * float(np.log(u))

    def _access_pair_s(self, i: int, j: int) -> float:
        """Summed access latency of a pair, with the same-metro discount."""
        total = self.access_s[i] + self.access_s[j]
        if self.metro_ids[i] == self.metro_ids[j]:
            total *= self.params.local_access_factor
        return float(total)

    def one_way_s(self, i: int, j: int) -> float:
        """One-way latency between hosts ``i`` and ``j`` in seconds."""
        if i == j:
            return 0.0
        return (self._access_pair_s(i, j)
                + self.propagation_s(i, j) + self._pair_jitter_s(i, j))

    def rtt_s(self, i: int, j: int) -> float:
        """Round-trip (network response) latency between two hosts."""
        return 2.0 * self.one_way_s(i, j)

    # -- vectorized API -----------------------------------------------------
    def one_way_matrix_s(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """One-way latency from each source host to each target host.

        Parameters
        ----------
        sources, targets:
            Integer index arrays into the host population.

        Returns
        -------
        ``(len(sources), len(targets))`` latency matrix in seconds.

        Notes
        -----
        Jitter here uses its expected value (``jitter_scale_s``) rather
        than the per-pair draw: the matrix form exists for the coverage
        scans over 10 000 x 600 pairs where the per-pair scramble would
        dominate runtime without changing any reported aggregate.
        """
        sources = np.asarray(sources, dtype=int)
        targets = np.asarray(targets, dtype=int)
        dist = pairwise_distances_km(
            self.positions_km[sources], self.positions_km[targets])
        prop = self.params.route_inflation * dist / FIBRE_KM_PER_S
        access = (self.access_s[sources][:, None]
                  + self.access_s[targets][None, :])
        if sources.size and targets.size:
            same_metro = (self.metro_ids[sources][:, None]
                          == self.metro_ids[targets][None, :])
            access = np.where(
                same_metro, access * self.params.local_access_factor, access)
        lat = access + prop + self.params.jitter_scale_s
        if sources.size and targets.size:
            same = sources[:, None] == targets[None, :]
            lat = np.where(same, 0.0, lat)
        return lat

    def rtt_matrix_s(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Round-trip latency matrix (2 x one-way)."""
        return 2.0 * self.one_way_matrix_s(sources, targets)

    # -- streaming throughput -------------------------------------------------
    def path_throughput_bps(self, i: int, j: int) -> float:
        """Best-case streaming throughput of the (i, j) path.

        Window-limited transport over a long path delivers at most
        ``window × 8 / rtt`` — the mechanism that makes remote-cloud
        video streaming slow and neighbourhood streaming fast.
        """
        rtt = self.rtt_s(i, j)
        if rtt <= 0:
            return float("inf")
        return 8.0 * self.params.tcp_window_bytes / rtt


class RegionalLatency:
    """Lazy region-granular propagation latency (DESIGN.md §11).

    The all-pairs host model above precomputes or derives O(n²)
    quantities — unusable for a million players. At scale the latency of
    a served player decomposes into a per-player access term plus a
    region-to-region propagation term, so this model keeps only region
    centroids and computes each region's propagation *row* on first use,
    caching it. Memory is O(regions²) in the worst case (every row
    touched) and O(regions × rows_touched) typically — never O(players²).

    All row math uses ``sqrt(dx² + dy²)`` and exact ``+ * /`` only (no
    ``hypot``, no libm), so cached rows — and the digests of every run
    built on them — are bit-identical across platforms.
    """

    def __init__(self, centers_km: np.ndarray,
                 params: LatencyParams | None = None):
        self.params = params or LatencyParams()
        self.centers_km = np.asarray(centers_km, dtype=np.float64)
        if self.centers_km.ndim != 2 or self.centers_km.shape[1] != 2:
            raise ValueError("centers_km must be (n_regions, 2)")
        self._rows: dict[int, np.ndarray] = {}

    @property
    def n_regions(self) -> int:
        return self.centers_km.shape[0]

    @property
    def cached_rows(self) -> int:
        """Propagation rows computed so far (memory-bound observability)."""
        return len(self._rows)

    def propagation_row_s(self, region: int) -> np.ndarray:
        """Propagation delay from ``region`` to every region (cached)."""
        row = self._rows.get(region)
        if row is None:
            if not 0 <= region < self.n_regions:
                raise IndexError(f"region {region} out of range")
            d = self.centers_km - self.centers_km[region]
            dist_km = np.sqrt(d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1])
            row = self.params.route_inflation * dist_km / FIBRE_KM_PER_S
            row.flags.writeable = False
            self._rows[region] = row
        return row

    def propagation_s(self, i: int, j: int) -> float:
        """Propagation delay between two regions."""
        return float(self.propagation_row_s(int(i))[int(j)])

    def gather_s(self, src_regions: np.ndarray,
                 dst_regions: np.ndarray) -> np.ndarray:
        """Elementwise propagation ``src[i] → dst[i]`` for aligned arrays.

        Touches only the rows of regions present in ``src_regions``;
        cost is O(len + regions), independent of the population size.
        """
        src = np.asarray(src_regions)
        dst = np.asarray(dst_regions)
        if src.size == 1:
            # Single-player path (materialised advance): same cached
            # row, same float, no bincount.
            return np.array(
                [self.propagation_row_s(int(src[0]))[dst[0]]])
        out = np.empty(src.shape, dtype=np.float64)
        present = np.flatnonzero(
            np.bincount(src, minlength=self.n_regions))
        for r in present:
            mask = src == r
            out[mask] = self.propagation_row_s(int(r))[dst[mask]]
        return out

    def full_matrix_s(self) -> np.ndarray:
        """All-pairs region propagation (O(regions²); reporting only)."""
        return np.vstack([self.propagation_row_s(r)
                          for r in range(self.n_regions)])


def sample_access_latency_s(
    rng: np.random.Generator,
    n: int,
    params: LatencyParams | None = None,
) -> np.ndarray:
    """Per-player last-mile latency for scale populations.

    Same bimodal intent as :class:`LatencyModel`'s lognormal draw — a
    well-connected majority plus a poorly connected tail — but built
    from uniforms with a rational transform only (``+ - * /``): no libm
    transcendentals, so the drawn values, and every golden digest
    downstream, are bit-identical across platforms and BLAS builds.
    """
    p = params or LatencyParams()
    u = rng.random(n)
    v = rng.random(n)
    # Right-skewed shape: ~0.45 at u=0, ≈1.0 at the median, bounded
    # ×4.45 tail — a lognormal-ish profile out of exact field
    # operations. The bound keeps the worst last mile inside the most
    # tolerant tier's deadline, so adaptation can always stabilise a
    # player instead of leaving an undeliverable tail diverged forever.
    u2 = u * u
    shape = 0.45 + u + 3.0 * (u2 * u2 * u2)
    good = (p.access_median_s * 0.85) * shape
    poor = (p.poor_median_s * 0.85) * shape
    return np.where(v < p.poor_fraction, poor, good)
