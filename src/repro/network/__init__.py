"""Network substrate: geometry, latency, links, topology.

CloudFog's evaluation runs on PeerSim with communication latencies taken
from a PlanetLab trace, and on PlanetLab itself. This package replaces both
with a synthetic but calibrated model:

* hosts live on a continental-US-scale plane, clustered into metro areas
  with power-law populations (:mod:`repro.network.topology`);
* one-way latency between two hosts is *access latency* (per-host
  lognormal last-mile delay) + *propagation* (distance over fibre speed,
  times a route-inflation factor) + pairwise jitter
  (:mod:`repro.network.latency`);
* bandwidth-limited links serialize packet transmission FIFO
  (:mod:`repro.network.link`);
* :mod:`repro.network.planetlab` assembles the 750-host PlanetLab-like
  testbed used by the paper's real-world experiments.

The latency constants are calibrated so that the *datacenter coverage*
curves match the measurements the paper builds on (Choy et al.: 13 EC2
datacenters give ≤80 ms median latency to fewer than 70 % of US users).
"""

from repro.network.geometry import Point, distance_km, pairwise_distances_km
from repro.network.latency import LatencyModel, LatencyParams
from repro.network.link import Link, UplinkPort
from repro.network.packet import Packet, VideoSegment
from repro.network.topology import Host, Metro, Topology, build_topology

__all__ = [
    "Host",
    "LatencyModel",
    "LatencyParams",
    "Link",
    "Metro",
    "Packet",
    "Point",
    "Topology",
    "UplinkPort",
    "VideoSegment",
    "build_topology",
    "distance_km",
    "pairwise_distances_km",
]
