"""Packets and video segments — the units of streamed game video.

A :class:`VideoSegment` is the encoder's output unit (a fixed playback
duration of video at some quality level); it is carried as a train of
fixed-size :class:`Packet`\\ s. The deadline-driven scheduler drops
*packets* from segments, so a segment tracks how many of its packets have
been dropped and whether it still satisfies its game's packet-loss
tolerance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Size of one network packet payload in bytes (a typical MTU payload).
PACKET_PAYLOAD_BYTES = 1400

_segment_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One network packet of a video segment."""

    segment_id: int
    index: int
    size_bytes: int
    sent_at_s: Optional[float] = None
    arrived_at_s: Optional[float] = None

    @property
    def in_flight(self) -> bool:
        return self.sent_at_s is not None and self.arrived_at_s is None


@dataclass(slots=True)
class VideoSegment:
    """A unit of encoded game video for one player.

    Parameters
    ----------
    player_id:
        Destination player.
    quality_level:
        Quality ladder level (1..5) the segment was encoded at.
    size_bytes:
        Encoded size (bitrate x duration / 8).
    duration_s:
        Playback duration covered by the segment.
    action_time_s:
        ``t_m`` — when the player made the action this video answers.
        Used for the *reported* response latency (Figure 8).
    latency_req_s:
        ``L̃_r`` — the game's latency requirement, budgeting the video
        delivery pipeline: the deadline is anchored at ``state_ready_s``
        (when the serving site held the game state for this segment),
        because that is the part of the response the streaming system
        controls — "the uploading from the players to the cloud does not
        seriously affect the response latency, and downstream latency is
        an important factor for QoE" (paper §III-A).
    loss_tolerance:
        ``L̃_t`` — fraction of packets the game tolerates losing.
    state_ready_s:
        When the serving site received the state update and could start
        rendering; defaults to ``action_time_s`` when not given.
    """

    player_id: int
    quality_level: int
    size_bytes: int
    duration_s: float
    action_time_s: float
    latency_req_s: float
    loss_tolerance: float
    state_ready_s: Optional[float] = None
    segment_id: int = field(default_factory=lambda: next(_segment_ids))
    created_at_s: float = 0.0
    enqueued_at_s: float = 0.0
    dropped_packets: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("segment size must be positive")
        if not 0.0 <= self.loss_tolerance <= 1.0:
            raise ValueError("loss tolerance must be in [0, 1]")

    @property
    def total_packets(self) -> int:
        """Number of packets the segment is carried in."""
        return max(1, -(-self.size_bytes // PACKET_PAYLOAD_BYTES))

    @property
    def remaining_packets(self) -> int:
        """Packets not yet dropped."""
        return self.total_packets - self.dropped_packets

    @property
    def remaining_bytes(self) -> int:
        """Bytes still to transmit after drops."""
        full = self.total_packets
        if full == 1:
            return 0 if self.dropped_packets else self.size_bytes
        per_packet = self.size_bytes / full
        return int(round(per_packet * self.remaining_packets))

    @property
    def anchor_s(self) -> float:
        """Deadline anchor: state-ready time, or the action time."""
        return (self.state_ready_s if self.state_ready_s is not None
                else self.action_time_s)

    @property
    def deadline_s(self) -> float:
        """Expected arrival time ``t_a = anchor + L̃_r`` (paper §III-C)."""
        return self.anchor_s + self.latency_req_s

    @property
    def max_droppable(self) -> int:
        """Most packets droppable while respecting loss tolerance."""
        allowed = int(self.loss_tolerance * self.total_packets)
        return max(0, allowed - self.dropped_packets)

    def drop(self, n_packets: int) -> int:
        """Drop up to ``n_packets`` (bounded by loss tolerance).

        Returns the number actually dropped.
        """
        if n_packets < 0:
            raise ValueError("cannot drop a negative number of packets")
        dropped = min(n_packets, self.max_droppable)
        self.dropped_packets += dropped
        return dropped

    def drop_all(self) -> int:
        """Expire the whole segment (bypasses the loss tolerance).

        Used when the segment can no longer meet its deadline at all:
        transmitting it would waste uplink without helping its player.
        Returns the number of packets newly dropped.
        """
        newly = self.remaining_packets
        self.dropped_packets = self.total_packets
        return newly

    @property
    def loss_fraction(self) -> float:
        """Fraction of the segment's packets dropped so far."""
        return self.dropped_packets / self.total_packets

    def meets_loss_tolerance(self) -> bool:
        """True while the dropped fraction is within the game's tolerance."""
        return self.loss_fraction <= self.loss_tolerance + 1e-12
