"""Synthetic PlanetLab testbed.

The paper's real-world experiments ran on 750 PlanetLab hosts nationwide
with two datacenter nodes (Princeton and UCLA — i.e. one east-coast and
one west-coast site). PlanetLab hosts sit at universities: they are
*site*-clustered (several hosts per site) and enjoy good access links but
span the whole continent, so inter-site latency is propagation-dominated.

This module builds that testbed shape: ``n_sites`` university sites,
hosts distributed over them, two (or ``n_datacenters``) datacenter hosts
pinned at an east-coast and a west-coast site, and a latency model with
*lower* access latency than the consumer population model (university
networks) — matching published PlanetLab all-pairs-ping medians of
roughly 60–90 ms RTT coast-to-coast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.geometry import PLANE_HEIGHT_KM, PLANE_WIDTH_KM, clip_to_plane
from repro.network.latency import LatencyModel, LatencyParams
from repro.network.topology import HostKind, Metro, Topology

#: Access latency on university networks is far lower than consumer ISPs.
PLANETLAB_LATENCY_PARAMS = LatencyParams(
    access_median_s=0.004,
    access_sigma=0.9,
    # PlanetLab is notorious for a minority of heavily loaded/badly
    # connected nodes; they form the poor mode here.
    poor_fraction=0.25,
    poor_median_s=0.045,
    poor_sigma=0.6,
    route_inflation=1.7,
    jitter_scale_s=0.003,
)

#: Plane coordinates used for the anchored datacenter sites.
EAST_COAST_SITE_KM = (PLANE_WIDTH_KM * 0.92, PLANE_HEIGHT_KM * 0.62)
WEST_COAST_SITE_KM = (PLANE_WIDTH_KM * 0.05, PLANE_HEIGHT_KM * 0.45)


@dataclass
class PlanetLabTestbed:
    """A built PlanetLab-like testbed: topology + latency model."""

    topology: Topology
    latency: LatencyModel
    datacenter_ids: np.ndarray
    host_ids: np.ndarray  # non-datacenter hosts


def build_planetlab(
    rng: np.random.Generator,
    n_hosts: int = 750,
    n_datacenters: int = 2,
    n_sites: int = 60,
    site_spread_km: float = 5.0,
    latency_params: LatencyParams = PLANETLAB_LATENCY_PARAMS,
) -> PlanetLabTestbed:
    """Build the PlanetLab-like testbed used in the paper's §IV.

    Parameters
    ----------
    rng:
        Randomness source (host/site placement, access latencies).
    n_hosts:
        Number of non-datacenter hosts (the paper uses 750).
    n_datacenters:
        Datacenter hosts; the first two are pinned to the east/west-coast
        anchor sites (Princeton / UCLA in the paper), further ones are
        placed at the largest remaining sites.
    n_sites:
        Number of university sites hosts cluster around.
    """
    if n_hosts < 0 or n_datacenters < 0:
        raise ValueError("counts must be nonnegative")
    if n_sites <= 0:
        raise ValueError("need at least one site")

    # Sites: near-uniform weights (PlanetLab sites host a handful of nodes
    # each, without the heavy skew of consumer metro populations).
    weights = rng.uniform(0.5, 1.5, size=n_sites)
    weights /= weights.sum()
    xs = rng.uniform(0.0, PLANE_WIDTH_KM, size=n_sites)
    ys = rng.uniform(0.0, PLANE_HEIGHT_KM, size=n_sites)
    metros = [Metro(i, (float(xs[i]), float(ys[i])), float(weights[i]))
              for i in range(n_sites)]
    topo = Topology(metros=metros)

    anchors = [EAST_COAST_SITE_KM, WEST_COAST_SITE_KM]
    dc_ids = []
    for k in range(n_datacenters):
        if k < len(anchors):
            pos = anchors[k]
        else:
            metro = metros[(k - len(anchors)) % n_sites]
            pos = metro.center_km
        # The paper's datacenter nodes (Princeton, UCLA) are ordinary
        # PlanetLab hosts at university sites; unlike commercial clouds
        # they *do* share the site network — but our anchor coordinates
        # are site-less, so they get unique metro ids.
        h = topo.add_host(HostKind.DATACENTER, -(k + 1),
                          (float(pos[0]), float(pos[1])))
        dc_ids.append(h.host_id)

    site_ids = rng.choice(n_sites, size=n_hosts, p=weights)
    centers = np.array([metros[s].center_km for s in site_ids]) if n_hosts \
        else np.empty((0, 2))
    offsets = rng.normal(0.0, site_spread_km, size=(n_hosts, 2))
    positions = clip_to_plane(centers + offsets)
    host_ids = []
    for i in range(n_hosts):
        h = topo.add_host(HostKind.PLAYER, int(site_ids[i]),
                          (float(positions[i, 0]), float(positions[i, 1])))
        host_ids.append(h.host_id)

    latency = LatencyModel(topo.positions_km, rng, latency_params,
                           metro_ids=topo.metro_id_array())
    return PlanetLabTestbed(
        topology=topo,
        latency=latency,
        datacenter_ids=np.array(dc_ids, dtype=int),
        host_ids=np.array(host_ids, dtype=int),
    )
