"""CloudFog reproduction — fog-assisted cloud gaming.

A from-scratch Python implementation of *CloudFog: Towards High Quality
of Experience in Cloud Gaming* (Lin & Shen, ICPP 2015), including every
substrate the paper's evaluation depends on: a discrete-event simulation
engine, a calibrated network latency/topology model, the video streaming
pipeline, the §IV workload generator, the economics model, and one
experiment driver per paper figure.

Quick start::

    from repro import peersim_scenario, SystemVariant, simulate_sessions

    scenario = peersim_scenario(scale=0.1)
    population = scenario.build()
    online = scenario.online_sample(population)
    result = simulate_sessions(population, SystemVariant.CLOUDFOG_A, online)
    print(result.mean_continuity, result.satisfied_fraction)
"""

from repro.core.adaptation import AdaptationParams, RateAdaptationController
from repro.core.assignment import AssignmentParams, SupernodeAssignment
from repro.core.infrastructure import (
    SessionConfig,
    SessionResult,
    SystemVariant,
    simulate_sessions,
)
from repro.core.scheduling import DeadlineSenderBuffer, SchedulingParams
from repro.experiments.scenarios import (
    Scenario,
    peersim_scenario,
    planetlab_scenario,
)
from repro.sim.rng import RngRegistry
from repro.streaming.video import QUALITY_LADDER
from repro.workload.games import GAMES
from repro.workload.players import Population, build_population

__version__ = "1.0.0"

__all__ = [
    "AdaptationParams",
    "AssignmentParams",
    "DeadlineSenderBuffer",
    "GAMES",
    "Population",
    "QUALITY_LADDER",
    "RateAdaptationController",
    "RngRegistry",
    "Scenario",
    "SchedulingParams",
    "SessionConfig",
    "SessionResult",
    "SupernodeAssignment",
    "SystemVariant",
    "__version__",
    "build_population",
    "peersim_scenario",
    "planetlab_scenario",
    "simulate_sessions",
]
