"""Declarative, seed-deterministic population-dynamics plans.

The population analogue of the chaos DSL (:mod:`repro.faults.plan`): a
:class:`DynamicsPlan` is an immutable, JSON-roundtrippable description of
*who arrives, leaves and moves, and when* in one simulated run —
Poisson join/leave churn, regional flash crowds, diurnal arrival
modulation, inter-region mobility, and the §IV supernode-departure
scenario. Plans are pure values: building one touches no RNG and no
simulation state, so the same plan plus the same master seed always
produces the same run, byte for byte. The empty plan is the explicit
no-op — arming it leaves a run byte-identical to the static baseline.

Compilation (:func:`compile_plan`) resolves a plan against one kernel
configuration into per-tick Poisson join counts, per-tick/per-region
leave hazards and mobility batches, drawing from the plan's own
``default_rng(seed)`` stream. The compiled form is what both execution
modes consume, which is why cohort and per-player runs see exactly the
same arrivals.

The :class:`DynamicsBuilder` provides the fluent spelling::

    plan = (DynamicsBuilder(seed=7)
            .churn(join_rate_per_s=12.0, mean_session_s=45.0)
            .flash_crowd(at_s=10.0, duration_s=8.0, region=0,
                         arrivals_per_s=200.0)
            .build())

and :func:`preset_dynamics` names the canned scenarios the CLI, the
``dynamics`` experiment spec and the CI smoke job use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.workload.sessions import (
    DIURNAL_AMPLITUDE,
    DIURNAL_PEAK_HOUR,
    diurnal_multiplier,
)


@dataclass(frozen=True, slots=True)
class ChurnSource:
    """Poisson join/leave churn over a window.

    Joins arrive at ``join_rate_per_s`` (Poisson); while the source is
    active, every online player sessions out with hazard
    ``tick / mean_session_s`` per tick — together a Chord-style
    join-leave churn process in equilibrium around
    ``join_rate × mean_session`` concurrent players. ``region`` pins
    both joins and leaves to one region; ``None`` spreads joins across
    home regions and drains the whole population.
    """

    join_rate_per_s: float
    mean_session_s: float
    start_s: float = 0.0
    duration_s: Optional[float] = None  # None = until the run ends
    region: Optional[int] = None

    kind = "churn"

    def __post_init__(self) -> None:
        if self.join_rate_per_s < 0:
            raise ValueError("join rate must be nonnegative")
        if self.mean_session_s <= 0:
            raise ValueError("mean session must be positive")
        if self.start_s < 0:
            raise ValueError("start time must be nonnegative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("churn duration must be positive")
        if self.region is not None and self.region < 0:
            raise ValueError("region must be nonnegative")


@dataclass(frozen=True, slots=True)
class FlashCrowd:
    """A launch-day arrival surge concentrated on one region.

    ``shape="step"`` holds ``arrivals_per_s`` flat over the window;
    ``shape="spike"`` ramps linearly from twice that rate down to zero
    (same total arrivals, front-loaded). Surge sessions drain at hazard
    ``tick / mean_session_s`` from the surge onset, so the crowd
    dissipates instead of staying forever.
    """

    at_s: float
    duration_s: float
    region: int
    arrivals_per_s: float
    mean_session_s: float = 120.0
    shape: str = "step"

    kind = "flash-crowd"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("surge time must be nonnegative")
        if self.duration_s <= 0:
            raise ValueError("surge duration must be positive")
        if self.region < 0:
            raise ValueError("region must be nonnegative")
        if self.arrivals_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.mean_session_s <= 0:
            raise ValueError("mean session must be positive")
        if self.shape not in ("step", "spike"):
            raise ValueError("shape must be 'step' or 'spike'")


@dataclass(frozen=True, slots=True)
class DiurnalLoad:
    """Sinusoidal modulation of every join rate in the plan.

    Maps the run horizon onto ``day_length_s`` simulated seconds of
    wall-clock day and multiplies churn/home join rates by the raised
    cosine of :func:`repro.workload.sessions.diurnal_multiplier` (mean
    1.0 over a full day, peak at ``peak_hour``).
    """

    amplitude: float = DIURNAL_AMPLITUDE
    peak_hour: float = DIURNAL_PEAK_HOUR
    day_length_s: float = 86_400.0

    kind = "diurnal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must lie in [0, 1)")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError("peak hour must lie in [0, 24)")
        if self.day_length_s <= 0:
            raise ValueError("day length must be positive")

    def multiplier(self, t_s: float) -> float:
        """Rate multiplier at simulated time ``t_s``."""
        day_s = t_s / self.day_length_s * 86_400.0
        return float(diurnal_multiplier(
            day_s, peak_hour=self.peak_hour, amplitude=self.amplitude))

    @property
    def peak_multiplier(self) -> float:
        return 1.0 + self.amplitude


@dataclass(frozen=True, slots=True)
class Mobility:
    """Inter-region player movement at a Poisson rate.

    Each move picks an online player of ``from_region`` (counter-hash
    ranked, so the set is a pure function of seed and tick), migrates it
    live through the :class:`~repro.faults.failover.FailoverController`
    path and re-homes it in ``to_region``.
    """

    rate_per_s: float
    from_region: int
    to_region: int
    start_s: float = 0.0
    duration_s: Optional[float] = None

    kind = "mobility"

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("mobility rate must be positive")
        if self.from_region < 0 or self.to_region < 0:
            raise ValueError("regions must be nonnegative")
        if self.from_region == self.to_region:
            raise ValueError("mobility needs two distinct regions")
        if self.start_s < 0:
            raise ValueError("start time must be nonnegative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("mobility duration must be positive")


@dataclass(frozen=True, slots=True)
class SupernodeDepartures:
    """The §IV churn scenario: supernodes leave at a Poisson rate.

    Consumed by the session-level churn experiment
    (:mod:`repro.experiments.churn`), not the cohort compiler — the
    cohort kernel models server loss through the fault DSL instead.
    """

    rate_per_minute: float

    kind = "departures"

    def __post_init__(self) -> None:
        if self.rate_per_minute < 0:
            raise ValueError("departure rate must be nonnegative")


#: Every dynamics kind the DSL knows, keyed by its ``kind`` tag.
DYNAMICS_KINDS = {
    cls.kind: cls
    for cls in (ChurnSource, FlashCrowd, DiurnalLoad, Mobility,
                SupernodeDepartures)
}

Source = Any  # any of the classes above (structural; no common base)


def _start_of(source: Source) -> float:
    return getattr(source, "at_s", getattr(source, "start_s", 0.0))


@dataclass(frozen=True)
class DynamicsPlan:
    """An ordered, immutable set of population-event sources plus the
    seed of the plan's private Poisson stream.

    The empty plan is the explicit no-op: compiling it yields no joins,
    no leaves and no moves, and a run with it armed is byte-identical
    (digest, metrics) to the static baseline — the regression tests
    guard exactly that.
    """

    sources: tuple[Source, ...] = ()
    #: Seeds the compile-time Poisson draws (consumed only by non-empty
    #: plans; compiling the empty plan touches no RNG).
    seed: int = 0

    def __post_init__(self) -> None:
        for s in self.sources:
            if type(s).__name__ not in {c.__name__
                                        for c in DYNAMICS_KINDS.values()}:
                raise TypeError(f"not a dynamics source: {s!r}")
        object.__setattr__(
            self, "sources",
            tuple(sorted(self.sources, key=lambda s: (_start_of(s), s.kind))))

    @property
    def is_empty(self) -> bool:
        return not self.sources

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)

    def horizon_s(self) -> float:
        """Time of the last bounded source edge (0.0 when empty or when
        every source is open-ended)."""
        edges = []
        for s in self.sources:
            start = _start_of(s)
            dur = getattr(s, "duration_s", None)
            if dur is not None:
                edges.append(start + dur)
            elif s.kind not in ("diurnal", "departures"):
                edges.append(start)
        return max(edges, default=0.0)

    # -- diurnal helpers (shared with the session-level experiments) --------
    def rate_multiplier(self, t_s: float) -> float:
        """Product of every diurnal source's multiplier at ``t_s``."""
        m = 1.0
        for s in self.sources:
            if s.kind == "diurnal":
                m *= s.multiplier(t_s)
        return m

    def peak_rate_multiplier(self) -> float:
        """Upper bound of :meth:`rate_multiplier` (thinning envelope)."""
        m = 1.0
        for s in self.sources:
            if s.kind == "diurnal":
                m *= s.peak_multiplier
        return m

    def departure_rate_per_minute(self) -> float:
        """Sum of every :class:`SupernodeDepartures` source's rate."""
        return sum(s.rate_per_minute for s in self.sources
                   if s.kind == "departures")

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Stable JSON-able form (kind-tagged source records)."""
        records = []
        for s in self.sources:
            rec = {"kind": s.kind}
            for name in s.__dataclass_fields__:
                value = getattr(s, name)
                if value is not None:
                    rec[name] = value
            records.append(rec)
        return {"seed": self.seed, "sources": records}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DynamicsPlan":
        """Inverse of :meth:`to_dict` (unknown kinds raise)."""
        sources = []
        for rec in payload.get("sources", ()):
            rec = dict(rec)
            kind = rec.pop("kind", None)
            source_cls = DYNAMICS_KINDS.get(kind)
            if source_cls is None:
                raise ValueError(f"unknown dynamics kind {kind!r}")
            sources.append(source_cls(**rec))
        return cls(sources=tuple(sources), seed=int(payload.get("seed", 0)))

    # -- generators ---------------------------------------------------------
    @classmethod
    def random(cls, seed: int, horizon_s: float = 20.0,
               n_sources: int = 3, n_regions: int = 4,
               kinds: Iterable[str] = ("churn", "flash-crowd", "diurnal",
                                       "mobility"),
               ) -> "DynamicsPlan":
        """A reproducible random plan: same arguments ⇒ same plan.

        Draws from its own ``default_rng(seed)`` stream, so generating
        a plan never perturbs any simulation RNG.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if n_sources < 0:
            raise ValueError("source count must be nonnegative")
        if n_regions < 2:
            raise ValueError("need at least two regions")
        kinds = tuple(kinds)
        for k in kinds:
            if k not in DYNAMICS_KINDS:
                raise ValueError(f"unknown dynamics kind {k!r}")
        rng = np.random.default_rng(seed)
        sources: list[Source] = []
        for _ in range(n_sources):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(0.1, 0.6) * horizon_s)
            dur = float(rng.uniform(0.1, 0.3) * horizon_s)
            if kind == "churn":
                sources.append(ChurnSource(
                    join_rate_per_s=float(rng.uniform(1.0, 20.0)),
                    mean_session_s=float(rng.uniform(0.2, 0.6) * horizon_s),
                    start_s=at, duration_s=dur))
            elif kind == "flash-crowd":
                sources.append(FlashCrowd(
                    at_s=at, duration_s=dur,
                    region=int(rng.integers(n_regions)),
                    arrivals_per_s=float(rng.uniform(10.0, 100.0)),
                    shape="spike" if rng.uniform() < 0.5 else "step"))
            elif kind == "diurnal":
                sources.append(DiurnalLoad(
                    amplitude=float(rng.uniform(0.2, 0.9)),
                    peak_hour=float(rng.uniform(0.0, 24.0)),
                    day_length_s=horizon_s))
            elif kind == "mobility":
                fr = int(rng.integers(n_regions))
                to = int((fr + 1 + rng.integers(n_regions - 1)) % n_regions)
                sources.append(Mobility(
                    rate_per_s=float(rng.uniform(0.5, 5.0)),
                    from_region=fr, to_region=to,
                    start_s=at, duration_s=dur))
            else:
                sources.append(SupernodeDepartures(
                    rate_per_minute=float(rng.uniform(1.0, 30.0))))
        return cls(sources=tuple(sources), seed=seed)


class DynamicsBuilder:
    """Fluent construction of a :class:`DynamicsPlan`."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._sources: list[Source] = []

    def churn(self, join_rate_per_s: float, mean_session_s: float,
              start_s: float = 0.0, duration_s: Optional[float] = None,
              region: Optional[int] = None) -> "DynamicsBuilder":
        self._sources.append(ChurnSource(
            join_rate_per_s=join_rate_per_s, mean_session_s=mean_session_s,
            start_s=start_s, duration_s=duration_s, region=region))
        return self

    def flash_crowd(self, at_s: float, duration_s: float, region: int,
                    arrivals_per_s: float, mean_session_s: float = 120.0,
                    shape: str = "step") -> "DynamicsBuilder":
        self._sources.append(FlashCrowd(
            at_s=at_s, duration_s=duration_s, region=region,
            arrivals_per_s=arrivals_per_s, mean_session_s=mean_session_s,
            shape=shape))
        return self

    def diurnal(self, amplitude: float = DIURNAL_AMPLITUDE,
                peak_hour: float = DIURNAL_PEAK_HOUR,
                day_length_s: float = 86_400.0) -> "DynamicsBuilder":
        self._sources.append(DiurnalLoad(
            amplitude=amplitude, peak_hour=peak_hour,
            day_length_s=day_length_s))
        return self

    def mobility(self, rate_per_s: float, from_region: int, to_region: int,
                 start_s: float = 0.0,
                 duration_s: Optional[float] = None) -> "DynamicsBuilder":
        self._sources.append(Mobility(
            rate_per_s=rate_per_s, from_region=from_region,
            to_region=to_region, start_s=start_s, duration_s=duration_s))
        return self

    def departures(self, rate_per_minute: float) -> "DynamicsBuilder":
        self._sources.append(SupernodeDepartures(
            rate_per_minute=rate_per_minute))
        return self

    def build(self) -> DynamicsPlan:
        return DynamicsPlan(sources=tuple(self._sources), seed=self._seed)


#: Preset names understood by :func:`preset_dynamics` (CLI ``--preset``).
DYNAMICS_PRESETS = ("none", "churn", "flash-crowd", "diurnal", "mobility",
                    "launch-day")


def preset_dynamics(name: str, horizon_s: float, n_players: int,
                    n_regions: int = 8, intensity: int = 1,
                    seed: int = 0) -> DynamicsPlan:
    """A canned plan scaled to one run's horizon and population.

    Unlike fault presets, dynamics presets need the population size:
    churn and surge rates are meaningful only relative to how many
    players exist. ``intensity`` scales the rates; a flash crowd at
    intensity ``k`` pushes roughly ``k ×`` one region's share of the
    population onto that region.
    """
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if n_players <= 0 or n_regions <= 0:
        raise ValueError("population and regions must be positive")
    if intensity < 0:
        raise ValueError("intensity must be nonnegative")
    b = DynamicsBuilder(seed=seed)
    if name == "none" or intensity == 0:
        return b.build()
    churn_rate = 0.002 * intensity * n_players
    session_s = 0.3 * horizon_s
    surge_window = 0.2 * horizon_s
    # ~1.5 × intensity × one region's population over the window, with a
    # slow drain: intensity 2 overloads the Zipf-heaviest region past
    # the shed watermark even from a half-offline start.
    surge_rate = (1.5 * intensity * (n_players / n_regions)) / surge_window
    move_rate = 0.001 * intensity * n_players
    if name == "churn":
        b.churn(join_rate_per_s=churn_rate, mean_session_s=session_s)
    elif name == "flash-crowd":
        b.flash_crowd(at_s=0.25 * horizon_s, duration_s=surge_window,
                      region=0, arrivals_per_s=surge_rate,
                      mean_session_s=horizon_s)
    elif name == "diurnal":
        b.churn(join_rate_per_s=churn_rate, mean_session_s=session_s)
        b.diurnal(day_length_s=horizon_s)
    elif name == "mobility":
        b.mobility(rate_per_s=move_rate, from_region=0,
                   to_region=1 % n_regions,
                   start_s=0.2 * horizon_s, duration_s=0.4 * horizon_s)
    elif name == "launch-day":
        b.churn(join_rate_per_s=churn_rate, mean_session_s=session_s)
        b.flash_crowd(at_s=0.25 * horizon_s, duration_s=surge_window,
                      region=0, arrivals_per_s=surge_rate,
                      mean_session_s=0.4 * horizon_s, shape="spike")
        b.mobility(rate_per_s=move_rate, from_region=0,
                   to_region=1 % n_regions,
                   start_s=0.5 * horizon_s, duration_s=0.3 * horizon_s)
        b.diurnal(day_length_s=horizon_s)
    else:
        raise ValueError(
            f"unknown preset {name!r}; choose from {DYNAMICS_PRESETS}")
    return b.build()


@dataclass(frozen=True)
class CompiledDynamics:
    """A plan resolved against one kernel configuration.

    Everything the tick driver needs, fully drawn: join counts are
    Poisson realisations (from the plan's own seeded stream), leave
    hazards are per-tick probabilities fed to the counter-hash draw, and
    mobility is a per-tick batch size. Identical in both execution modes
    by construction.
    """

    n_ticks: int
    tick_s: float
    n_regions: int
    #: (n_ticks,) joins into players' home regions (pool-balanced).
    home_joins: np.ndarray
    #: (n_ticks, n_regions) joins targeted at a specific region.
    region_joins: np.ndarray
    #: (n_ticks, n_regions) per-active-player leave probability.
    leave_prob: np.ndarray
    #: tick -> ((from_region, to_region, count), ...)
    moves: dict[int, tuple[tuple[int, int, int], ...]] = field(
        default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return (not self.moves
                and not self.home_joins.any()
                and not self.region_joins.any()
                and not self.leave_prob.any())

    def total_joins(self) -> int:
        return int(self.home_joins.sum() + self.region_joins.sum())


def compile_plan(plan: DynamicsPlan, n_ticks: int, tick_s: float,
                 n_regions: int) -> CompiledDynamics:
    """Resolve ``plan`` into per-tick realisations.

    Pure function of ``(plan, n_ticks, tick_s, n_regions)``: all Poisson
    draws come from ``default_rng(plan.seed)``, consumed source by
    source in the plan's canonical order. The empty plan compiles to
    all-zeros without touching the RNG.
    """
    if n_ticks <= 0 or tick_s <= 0 or n_regions <= 0:
        raise ValueError("ticks, tick length and regions must be positive")
    home_joins = np.zeros(n_ticks, dtype=np.int64)
    region_joins = np.zeros((n_ticks, n_regions), dtype=np.int64)
    keep_prob = np.ones((n_ticks, n_regions), dtype=np.float64)
    moves: dict[int, list[tuple[int, int, int]]] = {}
    if plan.is_empty:
        return CompiledDynamics(
            n_ticks=n_ticks, tick_s=tick_s, n_regions=n_regions,
            home_joins=home_joins, region_joins=region_joins,
            leave_prob=1.0 - keep_prob, moves={})

    rng = np.random.default_rng(plan.seed)
    times = np.arange(n_ticks, dtype=np.float64) * tick_s
    diurnal = np.ones(n_ticks, dtype=np.float64)
    for s in plan.sources:
        if s.kind == "diurnal":
            diurnal *= np.array([s.multiplier(t) for t in times])

    def window_mask(start_s: float, duration_s: Optional[float]):
        end_s = np.inf if duration_s is None else start_s + duration_s
        return (times >= start_s) & (times < end_s)

    for s in plan.sources:
        if s.kind == "churn":
            w = window_mask(s.start_s, s.duration_s)
            lam = np.where(w, s.join_rate_per_s * tick_s * diurnal, 0.0)
            joins = rng.poisson(lam)
            if s.region is None:
                home_joins += joins
            else:
                if s.region >= n_regions:
                    raise ValueError(
                        f"churn region {s.region} out of range")
                region_joins[:, s.region] += joins
            hazard = min(1.0, tick_s / s.mean_session_s)
            cols = (slice(None) if s.region is None else s.region)
            keep_prob[w, cols] *= 1.0 - hazard
        elif s.kind == "flash-crowd":
            if s.region >= n_regions:
                raise ValueError(
                    f"flash-crowd region {s.region} out of range")
            w = window_mask(s.at_s, s.duration_s)
            if s.shape == "spike":
                frac = np.clip((times - s.at_s) / s.duration_s, 0.0, 1.0)
                shape = 2.0 * (1.0 - frac)
            else:
                shape = np.ones(n_ticks)
            lam = np.where(w, s.arrivals_per_s * tick_s * shape, 0.0)
            region_joins[:, s.region] += rng.poisson(lam)
            # The crowd drains: surge-region sessions end at the churn
            # hazard from surge onset to the end of the run.
            drain = times >= s.at_s
            hazard = min(1.0, tick_s / s.mean_session_s)
            keep_prob[drain, s.region] *= 1.0 - hazard
        elif s.kind == "mobility":
            if s.from_region >= n_regions or s.to_region >= n_regions:
                raise ValueError("mobility region out of range")
            w = window_mask(s.start_s, s.duration_s)
            counts = rng.poisson(np.where(w, s.rate_per_s * tick_s, 0.0))
            for t in np.flatnonzero(counts):
                moves.setdefault(int(t), []).append(
                    (s.from_region, s.to_region, int(counts[t])))
        # "diurnal" folded into the join lambdas; "departures" is a
        # session-layer scenario with no cohort realisation.

    return CompiledDynamics(
        n_ticks=n_ticks, tick_s=tick_s, n_regions=n_regions,
        home_joins=home_joins, region_joins=region_joins,
        leave_prob=1.0 - keep_prob,
        moves={t: tuple(v) for t, v in sorted(moves.items())})
