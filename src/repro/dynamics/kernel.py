"""Population dynamics on the cohort event kernel (DESIGN.md §14).

:class:`DynamicsKernel` extends :class:`~repro.core.cohort.CohortKernel`
with membership: a compiled :class:`~repro.dynamics.plan.DynamicsPlan`
turns into per-tick joins (pool pops), leaves (counter-hash draws
against the compiled hazard), inter-region mobility (live migration
through a :class:`~repro.faults.failover.FailoverController`) and an
overload-graceful degradation ladder sharing
:class:`~repro.core.overload.OverloadParams` with the supernode session
layer.

Determinism contract (same as the base kernel, extended):

* every membership edit happens in the **driver** event, before any
  advance of that tick, identically in both execution modes;
* who leaves, who is shed and who moves are **counter-hash** draws —
  pure functions of ``(player_id, tick, salt)`` — never functions of
  the materialised set (which is the one thing the modes disagree on);
* join counts and mobility batch sizes are **compile-time Poisson
  realisations** from the plan's own seeded stream;
* the per-player side effects of a migration are disjoint per player
  and fire at the same simulated instants in both modes.

Hence cohort ≡ per-player under any plan, and the empty plan (with
``initial_fraction=1.0``) is byte-identical to the static baseline:
no pools are touched, no draws are made, no events are added.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.cohort import (
    CohortKernel,
    ScaleReport,
    ScaleSpec,
    run_scale,
)
from repro.core.overload import OVERLOAD_BUCKETS, OverloadParams
from repro.dynamics.plan import CompiledDynamics, DynamicsPlan, compile_plan
from repro.faults.failover import FailoverController, FailoverParams
from repro.network.latency import LatencyParams
from repro.sim.rng import counter_u01

#: Pluggable overload strategies: graceful degradation vs legacy
#: fall-over (admit everything, shed nothing — congestion does the
#: punishing).
DYNAMICS_STRATEGIES = ("graceful", "none")


@dataclass(frozen=True)
class DynamicsSpec:
    """Configuration of one population-dynamics run."""

    base: ScaleSpec = field(default_factory=ScaleSpec)
    plan: DynamicsPlan = field(default_factory=DynamicsPlan)
    #: Fraction of the population online at tick 0 (counter-hash
    #: selected). 1.0 starts everyone, exactly like the static kernel.
    initial_fraction: float = 1.0
    strategy: str = "graceful"
    overload: OverloadParams = field(default_factory=OverloadParams)

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_fraction <= 1.0:
            raise ValueError("initial fraction must lie in (0, 1]")
        if self.strategy not in DYNAMICS_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"expected one of {DYNAMICS_STRATEGIES}")


@dataclass
class DynamicsReport:
    """A :class:`ScaleReport` plus the membership/overload story."""

    scale: ScaleReport
    plan_sources: int
    strategy: str
    initial_active: int
    final_active: int
    joins: int
    leaves: int
    refused: int
    shed: int
    evicted: int
    pool_exhausted: int
    moves: int
    migration_mean_s: float | None
    migration_max_s: float | None
    overload_episodes: int
    overload_mean_recovery_s: float | None
    satisfied_active_fraction: float
    invariants: list[str]

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["scale"] = self.scale.to_dict()
        return d

    def format_text(self) -> str:
        lines = [self.scale.format_text()]
        lines.append(
            f"  dynamics  [{self.plan_sources} sources · "
            f"strategy={self.strategy}]  "
            f"{self.initial_active:,} -> {self.final_active:,} active")
        lines.append(
            f"  membership: {self.joins:,} joins · {self.leaves:,} leaves "
            f"· {self.refused:,} refused · {self.shed:,} shed · "
            f"{self.evicted:,} evicted")
        mig = ("-" if self.migration_mean_s is None
               else f"mean {1e3 * self.migration_mean_s:.1f} ms / "
                    f"max {1e3 * self.migration_max_s:.1f} ms")
        lines.append(f"  mobility:   {self.moves:,} migrations ({mig})")
        rec = ("-" if self.overload_mean_recovery_s is None
               else f"mean recovery {self.overload_mean_recovery_s:.2f} s")
        lines.append(
            f"  overload:   {self.overload_episodes} episodes ({rec}) · "
            f"satisfied (participants) "
            f"{100.0 * self.satisfied_active_fraction:.1f}%")
        lines.append("  invariants:  "
                     + ("passed" if not self.invariants
                        else "; ".join(self.invariants)))
        return "\n".join(lines)


class DynamicsKernel(CohortKernel):
    """Cohort kernel with seed-deterministic population dynamics."""

    def __init__(self, dspec: DynamicsSpec,
                 latency_params: LatencyParams | None = None,
                 obs=None):
        super().__init__(dspec.base, latency_params)
        self.dspec = dspec
        self._obs = obs
        base = dspec.base
        self.compiled: CompiledDynamics = compile_plan(
            dspec.plan, base.n_ticks, self.params.tick_s, base.n_regions)
        # Salt numbering continues the base kernel's 2s+1..2s+3.
        seed = base.seed
        self._salt_member = 2 * seed + 4
        self._salt_leave = 2 * seed + 5
        self._salt_shed = 2 * seed + 6
        self._salt_evict = 2 * seed + 7
        self._salt_move = 2 * seed + 8

        c = self.cohort
        # counter_u01 lands in [0, 1), so fraction 1.0 keeps everyone —
        # exactly, not probabilistically.
        c.active[:] = counter_u01(
            c.player_id, 0, self._salt_member) < dspec.initial_fraction
        self.initial_active = int(np.count_nonzero(c.active))
        #: Per-region FIFO pools of offline players (ascending ids).
        self._pools: list[deque] = [
            deque(int(p) for p in np.flatnonzero(~c.active & (c.region == r)))
            for r in range(base.n_regions)]

        # Tallies (python ints/lists: never hashed, mode-independent).
        self.joins = 0
        self.leaves = 0
        self.refused = 0
        self.shed = 0
        self.evicted = 0
        self.pool_exhausted = 0
        self.moves_done = 0
        self.shed_events: list[tuple[int, int]] = []
        self.overload_episode_s: list[float] = []
        self._over_prev = np.zeros(base.n_regions, dtype=bool)
        self._episode_start = np.zeros(base.n_regions, dtype=np.int64)
        self._inst: dict | None = None

        # Live migration runs through the standard failover path with
        # timings scaled to land strictly inside a tick (detection at
        # 0.22·tick, switch 0.14·tick later) so no controller event ever
        # collides with a tick boundary in either mode.
        tick_s = self.params.tick_s
        self._move_target: dict[int, int] = {}
        self.mobility = FailoverController(
            self.env,
            FailoverParams(detection_timeout_s=0.22 * tick_s,
                           base_backoff_s=0.1 * tick_s,
                           max_retries=0,
                           switch_delay_s=0.14 * tick_s),
            is_up=lambda host: False,
            reattach=lambda pid, host: False,
            migrate=self._migrate_player,
            obs=obs,
            component="dynamics.mobility")

    # -- lazy overload instruments ------------------------------------------
    def _instruments(self) -> dict | None:
        if self._obs is None:
            return None
        if self._inst is None:
            m = self._obs.metrics
            self._inst = {
                "refused": m.counter("overload.refused"),
                "shed": m.counter("overload.shed"),
                "evicted": m.counter("overload.evicted"),
                "recovery_time": m.histogram(
                    "overload.recovery_time_s", bounds=OVERLOAD_BUCKETS),
            }
        return self._inst

    def _count(self, key: str, n: int = 1) -> None:
        if n <= 0:
            return
        inst = self._instruments()
        if inst is not None:
            inst[key].inc(n)

    # -- driver --------------------------------------------------------------
    def _driver_fire(self, tick: int) -> None:
        self._hash_tick(tick)
        self._apply_fault_transitions(tick)
        # Previous tick's utilisation, captured before the congestion
        # update zeroes the load counters.
        util = self.cohort.tick_load / self._capacity
        self._update_congestion()
        self._apply_overload(tick, util)
        self._apply_membership(tick, util)
        self._apply_mobility(tick)
        # Reschedule before the cohort advance spawns any chain at this
        # tick, keeping the driver's sequence number lowest at tick + 1.
        # (Membership events above only schedule at the current time or
        # mid-tick, never at a future tick boundary.)
        if tick + 1 < self.spec.n_ticks:
            ev = self.env.timeout(self.params.tick_s)
            ev.callbacks.append(lambda _e, t=tick + 1: self._driver_fire(t))
        if self._cohort_mode:
            idx = self.cohort.batch_indices()
            if idx.size:
                diverged = self.cohort.advance(idx, tick)
                for pid in idx[diverged]:
                    self._spawn(int(pid), tick)
            for pid in self._forced.get(tick, ()):
                if not self.cohort.materialised[pid]:
                    self._spawn(pid, tick)

    def _player_fire(self, mp, tick: int) -> None:
        # A chain whose player has left folds back silently: no advance,
        # no reschedule — in either mode. Rejoining re-materialises.
        if not self.cohort.active[mp.player_id]:
            self.cohort.reabsorb(mp.player_id)
            return
        super()._player_fire(mp, tick)

    # -- overload ladder -----------------------------------------------------
    def _apply_overload(self, tick: int, util: np.ndarray) -> None:
        ov = self.dspec.overload
        # Episode tracking is observability, not strategy: both
        # strategies report how long regions stayed over the watermark.
        over = util > ov.admit_watermark
        started = over & ~self._over_prev
        ended = ~over & self._over_prev
        self._episode_start[started] = tick
        for r in np.flatnonzero(ended):
            dur = float(tick - self._episode_start[r]) * self.params.tick_s
            self.overload_episode_s.append(dur)
            inst = self._instruments()
            if inst is not None:
                inst["recovery_time"].observe(dur)
        self._over_prev = over
        if self.dspec.strategy != "graceful":
            return
        c = self.cohort
        shed_regions = np.flatnonzero(util > ov.shed_watermark)
        if shed_regions.size:
            u = counter_u01(c.player_id, tick, self._salt_shed)
            for r in shed_regions:
                m = (c.active & (c.served_by == r) & (c.tier > 0)
                     & (u < ov.shed_fraction))
                ids = np.flatnonzero(m)
                if ids.size:
                    c.tier[ids] -= 1
                    c.last_switch[ids] = tick
                    c.switches[ids] += 1
                    self.shed += int(ids.size)
                    self._count("shed", int(ids.size))
                    self.shed_events.extend(
                        (tick, int(p)) for p in ids)
        evict_regions = np.flatnonzero(util > ov.evict_watermark)
        if evict_regions.size:
            u = counter_u01(c.player_id, tick, self._salt_evict)
            for r in evict_regions:
                m = (c.active & (c.served_by == r) & (c.tier == 0)
                     & (u < ov.shed_fraction))
                ids = np.flatnonzero(m)
                for pid in ids:
                    self._deactivate(int(pid))
                self.evicted += int(ids.size)
                self._count("evicted", int(ids.size))

    # -- membership ----------------------------------------------------------
    def _deactivate(self, pid: int) -> None:
        c = self.cohort
        c.active[pid] = False
        self._pools[int(c.region[pid])].append(pid)

    def _pop_join(self, region: int) -> int | None:
        """Pop one offline player for a join targeted at ``region``,
        falling back to other regions' pools (ascending) and re-homing
        the player when the target pool is dry."""
        pool = self._pools[region]
        if pool:
            return pool.popleft()
        for r in range(len(self._pools)):
            if self._pools[r]:
                pid = self._pools[r].popleft()
                self.cohort.region[pid] = region
                return pid
        return None

    def _join_player(self, pid: int, region: int, tick: int) -> None:
        c = self.cohort
        p = self.params
        c.active[pid] = True
        c.served_by[pid] = int(c.failover_to[region])
        c.buffer_s[pid] = p.init_buffer_s
        c.tier[pid] = p.n_tiers - 1
        c.last_switch[pid] = tick
        self.joins += 1
        if not self._cohort_mode:
            mp = self.cohort.materialise(pid)
            self.materialisations += 1
            self._schedule_player(mp, tick, 0.0)

    def _apply_membership(self, tick: int, util: np.ndarray) -> None:
        comp = self.compiled
        if comp.is_empty:
            return
        c = self.cohort
        graceful = self.dspec.strategy == "graceful"
        admit_wm = self.dspec.overload.admit_watermark
        # Joins first (pools as of the previous tick), so a same-tick
        # leave can never be popped straight back in.
        for r in np.flatnonzero(comp.region_joins[tick]):
            want = int(comp.region_joins[tick, r])
            if graceful and util[r] > admit_wm:
                # Refused to direct-cloud fallback: these sessions are
                # served outside the fog and never enter the cohort.
                self.refused += want
                self._count("refused", want)
                continue
            for _ in range(want):
                pid = self._pop_join(int(r))
                if pid is None:
                    self.pool_exhausted += 1
                    continue
                self._join_player(pid, int(r), tick)
        want_home = int(comp.home_joins[tick])
        for i in range(want_home):
            # Spread home joins over the deepest pools (deterministic
            # tie-break: lowest region index).
            sizes = [len(p) for p in self._pools]
            r = int(np.argmax(sizes))
            if sizes[r] == 0:
                self.pool_exhausted += want_home - i
                break
            if graceful and util[r] > admit_wm:
                self.refused += 1
                self._count("refused")
                continue
            self._join_player(self._pools[r].popleft(), r, tick)
        # Then leaves: counter-hash draw against the compiled hazard.
        lp = comp.leave_prob[tick]
        if lp.any():
            u = counter_u01(c.player_id, tick, self._salt_leave)
            mask = c.active & (u < lp[c.region])
            ids = np.flatnonzero(mask)
            for pid in ids:
                self._deactivate(int(pid))
            self.leaves += int(ids.size)

    # -- mobility ------------------------------------------------------------
    def _apply_mobility(self, tick: int) -> None:
        batch = self.compiled.moves.get(tick)
        if not batch:
            return
        c = self.cohort
        for from_r, to_r, count in batch:
            cand = np.flatnonzero(c.active & (c.region == from_r))
            if self._move_target:
                cand = cand[~np.isin(cand, list(self._move_target))]
            if cand.size == 0:
                continue
            u = counter_u01(c.player_id[cand], tick, self._salt_move)
            take = cand[np.argsort(u, kind="stable")[:count]]
            for pid in take:
                pid = int(pid)
                self._move_target[pid] = int(to_r)
                self.mobility.on_server_down(
                    pid, int(c.served_by[pid]), self.env.now)
                if self._cohort_mode:
                    self._forced.setdefault(tick, []).append(pid)

    def _migrate_player(self, pid: int) -> str | None:
        to_r = self._move_target.pop(pid, None)
        if to_r is None:  # pragma: no cover - defensive
            return None
        c = self.cohort
        c.region[pid] = to_r
        c.served_by[pid] = int(c.failover_to[to_r])
        c.migrations[pid] += 1
        self.moves_done += 1
        return "supernode"

    # -- run -----------------------------------------------------------------
    def _initial_player_ids(self):
        return (int(p) for p in np.flatnonzero(self.cohort.active))

    def check_invariants(self) -> list[str]:
        """Membership-conservation and state-sanity checks (run after
        :meth:`run`); an empty list means every invariant held."""
        c = self.cohort
        out = []
        active_now = int(np.count_nonzero(c.active))
        expected = self.initial_active + self.joins - self.leaves \
            - self.evicted
        if active_now != expected:
            out.append(
                f"membership not conserved: {active_now} active, expected "
                f"{self.initial_active} + {self.joins} - {self.leaves} - "
                f"{self.evicted} = {expected}")
        pooled = sum(len(p) for p in self._pools)
        if pooled + active_now != self.spec.n_players:
            out.append(
                f"population leak: {pooled} pooled + {active_now} active "
                f"!= {self.spec.n_players}")
        if np.any(c.materialised & ~c.active):
            out.append("inactive player still materialised")
        if np.any((c.served_by < 0) | (c.served_by >= self.spec.n_regions)):
            out.append("served_by out of range")
        if np.any((c.tier < 0) | (c.tier >= self.params.n_tiers)):
            out.append("tier out of range")
        if self._move_target:
            out.append(f"{len(self._move_target)} migrations never landed")
        return out

    def run_dynamics(self) -> DynamicsReport:
        scale = self.run()
        # Close overload episodes still open at the horizon.
        for r in np.flatnonzero(self._over_prev):
            dur = float(self.spec.n_ticks
                        - self._episode_start[r]) * self.params.tick_s
            self.overload_episode_s.append(dur)
            inst = self._instruments()
            if inst is not None:
                inst["recovery_time"].observe(dur)
        self._over_prev[:] = False
        c = self.cohort
        participants = c.frames > 0
        n_part = int(np.count_nonzero(participants))
        ok = participants & (
            c.on_time_frames
            >= (1.0 - self.params.loss_tolerance) * c.frames)
        rec = self.mobility.recovery_times_s

        def _mean(vals):
            return float(sum(vals) / len(vals)) if vals else None

        return DynamicsReport(
            scale=scale,
            plan_sources=len(self.dspec.plan),
            strategy=self.dspec.strategy,
            initial_active=self.initial_active,
            final_active=int(np.count_nonzero(c.active)),
            joins=self.joins, leaves=self.leaves, refused=self.refused,
            shed=self.shed, evicted=self.evicted,
            pool_exhausted=self.pool_exhausted,
            moves=self.moves_done,
            migration_mean_s=_mean(rec),
            migration_max_s=(max(rec) if rec else None),
            overload_episodes=len(self.overload_episode_s),
            overload_mean_recovery_s=_mean(self.overload_episode_s),
            satisfied_active_fraction=(
                float(np.count_nonzero(ok) / n_part) if n_part else 0.0),
            invariants=self.check_invariants())


def run_dynamics(dspec: DynamicsSpec,
                 latency_params: LatencyParams | None = None,
                 obs=None) -> DynamicsReport:
    """Build and run one population-dynamics simulation."""
    return DynamicsKernel(dspec, latency_params, obs).run_dynamics()


__all__ = [
    "DYNAMICS_STRATEGIES",
    "DynamicsKernel",
    "DynamicsReport",
    "DynamicsSpec",
    "run_dynamics",
    "run_scale",
]
