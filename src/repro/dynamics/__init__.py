"""Population-dynamics plans and their execution on the event kernel.

Public surface of the dynamics subsystem (DESIGN.md §14): the plan DSL
(:mod:`repro.dynamics.plan`) and the kernel that runs a plan in either
execution mode (:mod:`repro.dynamics.kernel`).
"""

from repro.dynamics.kernel import (
    DYNAMICS_STRATEGIES,
    DynamicsKernel,
    DynamicsReport,
    DynamicsSpec,
    run_dynamics,
)
from repro.dynamics.plan import (
    DYNAMICS_KINDS,
    DYNAMICS_PRESETS,
    ChurnSource,
    CompiledDynamics,
    DiurnalLoad,
    DynamicsBuilder,
    DynamicsPlan,
    FlashCrowd,
    Mobility,
    SupernodeDepartures,
    compile_plan,
    preset_dynamics,
)

__all__ = [
    "DYNAMICS_KINDS",
    "DYNAMICS_PRESETS",
    "DYNAMICS_STRATEGIES",
    "ChurnSource",
    "CompiledDynamics",
    "DiurnalLoad",
    "DynamicsBuilder",
    "DynamicsKernel",
    "DynamicsPlan",
    "DynamicsReport",
    "DynamicsSpec",
    "FlashCrowd",
    "Mobility",
    "SupernodeDepartures",
    "compile_plan",
    "preset_dynamics",
    "run_dynamics",
]
