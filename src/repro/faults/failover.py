"""Failover: delivery-timeout detection, backoff retries, migration.

When a serving supernode dies, each affected player walks a small state
machine (paper §II/§III: the cloud's state updates stop arriving, and an
uncovered player falls back to direct cloud streaming):

::

    SERVED ──crash──▶ DETECTING ──timeout──▶ RETRYING ──server up──▶ RECONNECT
                                              │  ▲
                                              │  └── exponential backoff
                                              └─retries exhausted─▶ SWITCHING
                                                                       │
                                               next-best supernode ◀───┤
                                               direct-cloud fallback ◀─┘

The :class:`FailoverController` owns the per-player state machines and
the recovery instruments; the *mechanics* of probing and re-attaching are
injected as callables (``is_up``, ``reattach``, ``migrate``) so the
controller runs identically under the full
:class:`~repro.core.infrastructure.GamingSession` and under microcosm
unit tests with stub servers.

Determinism: every delay is a fixed function of
:class:`FailoverParams` — no jitter, no RNG — so a seeded run recovers at
exactly the same simulated instants every time. Metric instruments are
created lazily on the first handled failure, which keeps an armed-but-
empty fault plan's metrics snapshot byte-identical to an unarmed run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.sim.engine import Environment

#: Bucket bounds for recovery/downtime histograms (seconds).
RECOVERY_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True, slots=True)
class FailoverParams:
    """Constants of the failover state machine."""

    #: Time without state-update delivery before a player declares its
    #: server down (models the update-stream watchdog).
    detection_timeout_s: float = 0.25
    #: First retry backoff after detection.
    base_backoff_s: float = 0.1
    #: Backoff growth factor per failed retry.
    backoff_multiplier: float = 2.0
    #: Reconnection probes before giving up on the crashed server.
    max_retries: int = 3
    #: Control-plane delay of switching servers (assignment round trip).
    switch_delay_s: float = 0.05
    #: Ceiling on any single retry backoff. Exponential growth past the
    #: cap (including float-overflow territory) clamps here instead of
    #: raising, so a long-dead server cannot stall the state machine.
    max_backoff_s: float = 60.0

    def __post_init__(self) -> None:
        if self.detection_timeout_s < 0:
            raise ValueError("detection timeout must be nonnegative")
        if self.base_backoff_s <= 0:
            raise ValueError("base backoff must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max retries must be nonnegative")
        if self.switch_delay_s < 0:
            raise ValueError("switch delay must be nonnegative")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max backoff must be at least the base backoff")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped at
        ``max_backoff_s``."""
        if attempt < 0:
            raise ValueError("attempt must be nonnegative")
        try:
            raw = self.base_backoff_s * self.backoff_multiplier ** attempt
        except OverflowError:
            return self.max_backoff_s
        return min(raw, self.max_backoff_s)


class FailoverController:
    """Per-player crash recovery with retry/backoff and migration.

    Parameters
    ----------
    env:
        Simulation environment (schedules the state-machine timers).
    params:
        Timing constants.
    is_up:
        ``(host_id) -> bool`` — whether a server is currently serving.
    reattach:
        ``(player_id, host_id) -> bool`` — reconnect a player to its
        recovered server; False if the server cannot take it back.
    migrate:
        ``(player_id) -> str | None`` — move the player to the next-best
        supernode or direct cloud; returns ``"supernode"``/``"cloud"``
        (or ``None`` when the player cannot be placed at all).
    """

    def __init__(
        self,
        env: "Environment",
        params: FailoverParams | None = None,
        *,
        is_up: Callable[[int], bool],
        reattach: Callable[[int, int], bool],
        migrate: Callable[[int], Optional[str]],
        obs: "Observability | None" = None,
        component: str = "failover",
    ):
        self.env = env
        self.params = params or FailoverParams()
        self._is_up = is_up
        self._reattach = reattach
        self._migrate = migrate
        self._obs = obs
        self.component = component
        #: player id -> {"host", "t_crash", "attempt"} while recovering.
        self._pending: dict[int, dict] = {}
        #: player id -> crash time; armed at recovery completion so the
        #: first post-recovery delivery closes the downtime window.
        self._awaiting_delivery: dict[int, float] = {}
        # Public tallies (also mirrored into lazily created instruments).
        self.detections = 0
        self.retries = 0
        self.reconnects = 0
        self.migrations = 0
        self.cloud_fallbacks = 0
        self.recoveries = 0
        self.abandoned = 0
        self.recovery_times_s: list[float] = []
        self.downtimes_s: list[float] = []
        self._inst: dict | None = None

    # -- lazy instruments ---------------------------------------------------
    def _instruments(self) -> dict | None:
        """Create metric instruments on first failure (not before).

        Eager creation would register zero-valued snapshot entries and
        make an armed-but-empty plan's metrics differ from baseline.
        """
        if self._obs is None:
            return None
        if self._inst is None:
            m = self._obs.metrics
            self._inst = {
                "detections": m.counter("failover.detections"),
                "retries": m.counter("failover.retries"),
                "reconnects": m.counter("failover.reconnects"),
                "migrations": m.counter("failover.migrations"),
                "cloud_fallbacks": m.counter("failover.cloud_fallbacks"),
                "recoveries": m.counter("failover.recoveries"),
                "recovery_time": m.histogram(
                    "failover.recovery_time_s", bounds=RECOVERY_BUCKETS),
                "downtime": m.histogram(
                    "failover.downtime_s", bounds=RECOVERY_BUCKETS),
            }
        return self._inst

    def _count(self, key: str) -> None:
        inst = self._instruments()
        if inst is not None:
            inst[key].inc()

    def _emit(self, kind: str, **data) -> None:
        if self._obs is not None:
            self._obs.emit(self.env.now, self.component, kind, **data)

    # -- entry points -------------------------------------------------------
    @property
    def in_progress(self) -> int:
        """Players currently walking the recovery state machine."""
        return len(self._pending)

    def on_server_down(self, player_id: int, host_id: int,
                       now_s: float) -> None:
        """A player's serving host just crashed: start detection."""
        if player_id in self._pending:
            return  # already recovering (server crashed mid-failover)
        self._pending[player_id] = {
            "host": int(host_id), "t_crash": float(now_s), "attempt": 0}

        def detect(_ev, player_id=player_id):
            self._on_detect(player_id)

        ev = self.env.timeout(self.params.detection_timeout_s)
        ev.callbacks.append(detect)

    def note_delivery(self, player_id: int, now_s: float) -> None:
        """A segment with data reached the player (downtime bookkeeping)."""
        t_crash = self._awaiting_delivery.pop(player_id, None)
        if t_crash is None:
            return
        downtime = now_s - t_crash
        self.downtimes_s.append(downtime)
        inst = self._instruments()
        if inst is not None:
            inst["downtime"].observe(downtime)

    # -- state machine ------------------------------------------------------
    def _on_detect(self, player_id: int) -> None:
        state = self._pending.get(player_id)
        if state is None:  # pragma: no cover - defensive
            return
        self.detections += 1
        self._count("detections")
        self._emit("failover.detect", player=player_id, host=state["host"])
        self._probe(player_id)

    def _probe(self, player_id: int) -> None:
        """One reconnection attempt against the crashed server."""
        state = self._pending[player_id]
        host = state["host"]
        if self._is_up(host) and self._reattach(player_id, host):
            self.reconnects += 1
            self._count("reconnects")
            self._complete(player_id, how="reconnect", where=host)
            return
        attempt = state["attempt"]
        if attempt >= self.params.max_retries:
            self._emit("failover.giveup", player=player_id, host=host,
                       retries=attempt)

            def switch(_ev, player_id=player_id):
                self._switch(player_id)

            ev = self.env.timeout(self.params.switch_delay_s)
            ev.callbacks.append(switch)
            return
        state["attempt"] = attempt + 1
        self.retries += 1
        self._count("retries")
        self._emit("failover.retry", player=player_id, host=host,
                   attempt=attempt + 1,
                   backoff_s=self.params.backoff_s(attempt))

        def retry(_ev, player_id=player_id):
            self._probe(player_id)

        ev = self.env.timeout(self.params.backoff_s(attempt))
        ev.callbacks.append(retry)

    def _switch(self, player_id: int) -> None:
        """Retries exhausted: migrate to next-best supernode or cloud."""
        where = self._migrate(player_id)
        if where == "supernode":
            self.migrations += 1
            self._count("migrations")
        elif where == "cloud":
            self.cloud_fallbacks += 1
            self._count("cloud_fallbacks")
        else:
            # Nowhere to go (microcosm stubs); the player stays detached.
            self.abandoned += 1
            self._pending.pop(player_id, None)
            self._emit("failover.abandon", player=player_id)
            return
        self._complete(player_id, how=where, where=None)

    def _complete(self, player_id: int, how: str,
                  where: Optional[int]) -> None:
        state = self._pending.pop(player_id)
        recovery = self.env.now - state["t_crash"]
        self.recoveries += 1
        self.recovery_times_s.append(recovery)
        self._count("recoveries")
        inst = self._instruments()
        if inst is not None:
            inst["recovery_time"].observe(recovery)
        self._awaiting_delivery[player_id] = state["t_crash"]
        self._emit("failover.recover", player=player_id, how=how,
                   recovery_s=recovery)

    # -- reporting ----------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able summary of everything the controller handled."""
        def _mean(vals):
            return float(sum(vals) / len(vals)) if vals else None

        return {
            "detections": self.detections,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "migrations": self.migrations,
            "cloud_fallbacks": self.cloud_fallbacks,
            "recoveries": self.recoveries,
            "abandoned": self.abandoned,
            "in_progress": self.in_progress,
            "mean_recovery_time_s": _mean(self.recovery_times_s),
            "max_recovery_time_s": (max(self.recovery_times_s)
                                    if self.recovery_times_s else None),
            "mean_downtime_s": _mean(self.downtimes_s),
        }
