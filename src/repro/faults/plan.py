"""Declarative, seed-deterministic fault plans (the chaos DSL).

A :class:`FaultPlan` is an immutable, JSON-roundtrippable description of
*what goes wrong and when* in one simulated run: supernode crashes (with
optional recovery), link latency spikes, packet-loss bursts, bandwidth
throttling and regional partitions. Plans are pure values — building one
touches no RNG and no simulation state — so the same plan plus the same
master seed always produces the same run, byte for byte.

Fault targets are *load ranks*, not host ids: ``supernode=0`` means "the
busiest supernode at the moment the fault fires" (ties broken by host
id). Plans therefore stay meaningful across population scales and always
hit servers that are actually serving players — a crash plan written for
``--scale 1.0`` still bites at ``--scale 0.02``. An explicit
``host_id``-targeted variant is available for microcosm tests.

The :class:`PlanBuilder` provides the fluent spelling::

    plan = (PlanBuilder(seed=7)
            .crash(at_s=5.0, recover_after_s=10.0)
            .loss_burst(at_s=8.0, duration_s=2.0, loss_fraction=0.3)
            .build())

and :func:`preset_plan` names the canned scenarios the CLI and the CI
chaos smoke job use. :meth:`FaultPlan.random` draws a reproducible
random plan from a seed — the generator behind the Hypothesis chaos
properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np


@dataclass(frozen=True, slots=True)
class SupernodeCrash:
    """A supernode dies at ``at_s`` (and optionally comes back).

    ``supernode`` is a load rank (0 = busiest at crash time) unless
    ``host_id`` is given, which pins an explicit topology host. A crash
    flushes the server's sender buffer (queued segments are lost with
    full packet accounting), detaches every served player and removes
    the node from the assignment candidate table until recovery.
    """

    at_s: float
    supernode: int = 0
    recover_at_s: Optional[float] = None
    host_id: Optional[int] = None

    kind = "crash"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be nonnegative")
        if self.supernode < 0:
            raise ValueError("supernode rank must be nonnegative")
        if self.recover_at_s is not None and self.recover_at_s <= self.at_s:
            raise ValueError("recovery must come after the crash")


@dataclass(frozen=True, slots=True)
class LinkLatencySpike:
    """Extra one-way propagation delay on serving paths for a window.

    Applies ``extra_s`` to every established route of the targeted
    supernode (rank, explicit host, or all servers when ``supernode`` is
    ``None``) during ``[at_s, at_s + duration_s)``.
    """

    at_s: float
    duration_s: float
    extra_s: float
    supernode: Optional[int] = None
    host_id: Optional[int] = None

    kind = "latency"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be nonnegative")
        if self.duration_s <= 0:
            raise ValueError("spike duration must be positive")
        if self.extra_s <= 0:
            raise ValueError("extra latency must be positive")


@dataclass(frozen=True, slots=True)
class PacketLossBurst:
    """Segments on targeted paths are lost with a fixed probability.

    Losses draw from the plan's own seeded RNG stream, so a given
    ``(plan, master seed)`` pair always loses the same segments.
    """

    at_s: float
    duration_s: float
    loss_fraction: float
    supernode: Optional[int] = None
    host_id: Optional[int] = None

    kind = "loss"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be nonnegative")
        if self.duration_s <= 0:
            raise ValueError("burst duration must be positive")
        if not 0.0 < self.loss_fraction <= 1.0:
            raise ValueError("loss fraction must lie in (0, 1]")


@dataclass(frozen=True, slots=True)
class BandwidthThrottle:
    """The targeted server's uplink rate is scaled by ``factor``."""

    at_s: float
    duration_s: float
    factor: float
    supernode: Optional[int] = None
    host_id: Optional[int] = None

    kind = "throttle"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be nonnegative")
        if self.duration_s <= 0:
            raise ValueError("throttle duration must be positive")
        if not 0.0 < self.factor < 1.0:
            raise ValueError("throttle factor must lie in (0, 1)")


@dataclass(frozen=True, slots=True)
class RegionalPartition:
    """The busiest ``fraction`` of supernodes lose all player traffic.

    Every segment toward players served by the partitioned supernodes is
    dropped for the window — the fog side of a regional network split.
    The partition *heals*: traffic resumes at ``at_s + duration_s``.
    """

    at_s: float
    duration_s: float
    fraction: float

    kind = "partition"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be nonnegative")
        if self.duration_s <= 0:
            raise ValueError("partition duration must be positive")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("partition fraction must lie in (0, 1]")


#: Every fault kind the DSL knows, keyed by its ``kind`` tag.
FAULT_KINDS = {
    cls.kind: cls
    for cls in (SupernodeCrash, LinkLatencySpike, PacketLossBurst,
                BandwidthThrottle, RegionalPartition)
}

Fault = Any  # any of the classes above (structural; no common base needed)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of faults plus the loss-RNG seed.

    The empty plan is the explicit no-op: arming it schedules nothing
    and a run with it armed is byte-identical (series, trace digest,
    metrics) to a run with no injector attached at all — the regression
    tests guard exactly that.
    """

    faults: tuple[Fault, ...] = ()
    #: Seeds the plan's private loss/jitter RNG stream (only consumed
    #: while a loss burst or partition is actually active).
    seed: int = 0

    def __post_init__(self) -> None:
        for f in self.faults:
            if type(f).__name__ not in {c.__name__
                                        for c in FAULT_KINDS.values()}:
                raise TypeError(f"not a fault: {f!r}")
        object.__setattr__(
            self, "faults",
            tuple(sorted(self.faults, key=lambda f: (f.at_s, f.kind))))

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def horizon_s(self) -> float:
        """Time of the last scheduled fault edge (0.0 when empty)."""
        edges = [f.at_s for f in self.faults]
        edges += [f.at_s + f.duration_s for f in self.faults
                  if hasattr(f, "duration_s")]
        edges += [f.recover_at_s for f in self.faults
                  if getattr(f, "recover_at_s", None) is not None]
        return max(edges, default=0.0)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Stable JSON-able form (kind-tagged fault records)."""
        records = []
        for f in self.faults:
            rec = {"kind": f.kind}
            for name in f.__dataclass_fields__:
                value = getattr(f, name)
                if value is not None:
                    rec[name] = value
            records.append(rec)
        return {"seed": self.seed, "faults": records}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (unknown kinds raise)."""
        faults = []
        for rec in payload.get("faults", ()):
            rec = dict(rec)
            kind = rec.pop("kind", None)
            fault_cls = FAULT_KINDS.get(kind)
            if fault_cls is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            faults.append(fault_cls(**rec))
        return cls(faults=tuple(faults), seed=int(payload.get("seed", 0)))

    # -- generators ---------------------------------------------------------
    @classmethod
    def random(cls, seed: int, horizon_s: float = 20.0,
               n_faults: int = 3,
               kinds: Iterable[str] = ("crash", "latency", "loss",
                                       "throttle", "partition"),
               ) -> "FaultPlan":
        """A reproducible random plan: same arguments ⇒ same plan.

        Draws from its own ``default_rng(seed)`` stream, so generating a
        plan never perturbs any simulation RNG. Fault times land in
        ``[0.1, 0.8] × horizon`` so windows close before the run ends.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if n_faults < 0:
            raise ValueError("fault count must be nonnegative")
        kinds = tuple(kinds)
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        rng = np.random.default_rng(seed)
        faults: list[Fault] = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(0.1, 0.8) * horizon_s)
            dur = float(rng.uniform(0.05, 0.2) * horizon_s)
            if kind == "crash":
                recover = (at + dur if rng.uniform() < 0.5 else None)
                faults.append(SupernodeCrash(
                    at_s=at, supernode=int(rng.integers(3)),
                    recover_at_s=recover))
            elif kind == "latency":
                faults.append(LinkLatencySpike(
                    at_s=at, duration_s=dur,
                    extra_s=float(rng.uniform(0.02, 0.2))))
            elif kind == "loss":
                faults.append(PacketLossBurst(
                    at_s=at, duration_s=dur,
                    loss_fraction=float(rng.uniform(0.05, 0.6))))
            elif kind == "throttle":
                faults.append(BandwidthThrottle(
                    at_s=at, duration_s=dur,
                    factor=float(rng.uniform(0.2, 0.8))))
            else:
                faults.append(RegionalPartition(
                    at_s=at, duration_s=dur,
                    fraction=float(rng.uniform(0.1, 0.5))))
        return cls(faults=tuple(faults), seed=seed)


class PlanBuilder:
    """Fluent construction of a :class:`FaultPlan`."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._faults: list[Fault] = []

    def crash(self, at_s: float, supernode: int = 0,
              recover_after_s: Optional[float] = None,
              host_id: Optional[int] = None) -> "PlanBuilder":
        recover = None if recover_after_s is None else at_s + recover_after_s
        self._faults.append(SupernodeCrash(
            at_s=at_s, supernode=supernode, recover_at_s=recover,
            host_id=host_id))
        return self

    def latency_spike(self, at_s: float, duration_s: float, extra_s: float,
                      supernode: Optional[int] = None,
                      host_id: Optional[int] = None) -> "PlanBuilder":
        self._faults.append(LinkLatencySpike(
            at_s=at_s, duration_s=duration_s, extra_s=extra_s,
            supernode=supernode, host_id=host_id))
        return self

    def loss_burst(self, at_s: float, duration_s: float,
                   loss_fraction: float,
                   supernode: Optional[int] = None,
                   host_id: Optional[int] = None) -> "PlanBuilder":
        self._faults.append(PacketLossBurst(
            at_s=at_s, duration_s=duration_s, loss_fraction=loss_fraction,
            supernode=supernode, host_id=host_id))
        return self

    def throttle(self, at_s: float, duration_s: float, factor: float,
                 supernode: Optional[int] = None,
                 host_id: Optional[int] = None) -> "PlanBuilder":
        self._faults.append(BandwidthThrottle(
            at_s=at_s, duration_s=duration_s, factor=factor,
            supernode=supernode, host_id=host_id))
        return self

    def partition(self, at_s: float, duration_s: float,
                  fraction: float = 0.3) -> "PlanBuilder":
        self._faults.append(RegionalPartition(
            at_s=at_s, duration_s=duration_s, fraction=fraction))
        return self

    def build(self) -> FaultPlan:
        return FaultPlan(faults=tuple(self._faults), seed=self._seed)


#: Preset names understood by :func:`preset_plan` (CLI ``--preset``).
PRESETS = ("none", "crash", "crash-recover", "partition", "storm")


def preset_plan(name: str, horizon_s: float, intensity: int = 1,
                seed: int = 0) -> FaultPlan:
    """A canned plan scaled to one run's horizon.

    ``intensity`` multiplies the fault count (e.g. crash the ``k``
    busiest supernodes). Crashes land at 30 % of the horizon, staggered
    so failovers do not all resolve in lockstep; recoveries (where the
    preset has them) leave room for reconnection before the run ends.
    """
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if intensity < 0:
        raise ValueError("intensity must be nonnegative")
    b = PlanBuilder(seed=seed)
    t0 = 0.3 * horizon_s
    stagger = 0.05 * horizon_s
    if name == "none" or intensity == 0:
        return b.build()
    if name == "crash":
        for k in range(intensity):
            b.crash(at_s=t0 + k * stagger, supernode=k)
    elif name == "crash-recover":
        for k in range(intensity):
            b.crash(at_s=t0 + k * stagger, supernode=k,
                    recover_after_s=0.25 * horizon_s)
    elif name == "partition":
        b.partition(at_s=t0, duration_s=0.25 * horizon_s,
                    fraction=min(1.0, 0.2 * intensity))
    elif name == "storm":
        b.latency_spike(at_s=0.15 * horizon_s,
                        duration_s=0.2 * horizon_s, extra_s=0.05)
        b.loss_burst(at_s=0.25 * horizon_s, duration_s=0.15 * horizon_s,
                     loss_fraction=0.25)
        b.throttle(at_s=0.45 * horizon_s, duration_s=0.2 * horizon_s,
                   factor=0.5)
        for k in range(intensity):
            b.crash(at_s=t0 + k * stagger, supernode=k,
                    recover_after_s=0.3 * horizon_s)
    else:
        raise ValueError(
            f"unknown preset {name!r}; choose from {PRESETS}")
    return b.build()
