"""Deterministic fault injection, failover and chaos tooling.

The package splits the fault story into four independent layers:

* :mod:`repro.faults.plan` — the declarative, seed-deterministic
  **FaultPlan DSL**: what goes wrong and when, as an immutable value;
* :mod:`repro.faults.injector` — **compilation** of a plan onto the
  :mod:`repro.sim.engine` event kernel (one timeout per fault edge,
  nothing scheduled for an empty plan);
* :mod:`repro.faults.session` — the **execution adapter** binding faults
  to a live :class:`~repro.core.infrastructure.GamingSession` (crash
  servers, degrade routes, suppress stale deliveries);
* :mod:`repro.faults.failover` — the **recovery side**: per-player
  delivery-timeout detection, exponential-backoff retries, migration to
  the next-best supernode and direct-cloud fallback.

Arm a plan by putting it on the session config::

    plan = (PlanBuilder(seed=7)
            .crash(at_s=5.0, recover_after_s=6.0)
            .build())
    cfg = SessionConfig(duration_s=20.0, faults=plan)
    result = simulate_sessions(pop, SystemVariant.CLOUDFOG_A, online, cfg)
    result.fault_stats["recoveries"]

An armed-but-empty plan is byte-identical (trace digest, series,
metrics) to no plan at all — the zero-overhead contract the regression
tests pin down.
"""

from repro.faults.failover import (
    FailoverController,
    FailoverParams,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    PRESETS,
    BandwidthThrottle,
    FaultPlan,
    LinkLatencySpike,
    PacketLossBurst,
    PlanBuilder,
    RegionalPartition,
    SupernodeCrash,
    preset_plan,
)
from repro.faults.session import SessionChaos

__all__ = [
    "FAULT_KINDS",
    "PRESETS",
    "BandwidthThrottle",
    "FailoverController",
    "FailoverParams",
    "FaultInjector",
    "FaultPlan",
    "LinkLatencySpike",
    "PacketLossBurst",
    "PlanBuilder",
    "RegionalPartition",
    "SessionChaos",
    "SupernodeCrash",
    "preset_plan",
]
