"""Compile a :class:`~repro.faults.plan.FaultPlan` onto the event kernel.

The injector is deliberately thin: :meth:`FaultInjector.arm` walks the
plan once and schedules one kernel timeout per fault edge (injection,
and — for windowed faults — clearing). *What* a fault does is delegated
to a handler object (:class:`~repro.faults.session.SessionChaos` in the
full simulation, recording stubs in tests) through two methods::

    token = handler.apply(fault, now_s)   # None = not applicable, skip
    handler.clear(fault, token, now_s)    # only for faults with an end

An empty plan schedules **nothing**: the simulation's event stream,
trace digest and RNG consumption are byte-identical to a run with no
injector constructed at all. That zero-overhead property is guarded by
``tests/faults/test_zero_fault_equivalence.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.sim.engine import Environment


class FaultHandler(Protocol):
    """What the injector needs from the thing that executes faults."""

    def apply(self, fault: Any, now_s: float) -> Optional[Any]:
        """Execute a fault; return a token for :meth:`clear`, or
        ``None`` when the fault found no applicable target."""

    def clear(self, fault: Any, token: Any, now_s: float) -> None:
        """End a windowed fault previously applied with ``token``."""


class FaultInjector:
    """Schedules a plan's faults as kernel events and tracks tallies."""

    def __init__(
        self,
        env: "Environment",
        plan: FaultPlan,
        handler: FaultHandler,
        obs: "Observability | None" = None,
        component: str = "chaos",
    ):
        self.env = env
        self.plan = plan
        self.handler = handler
        self._obs = obs
        self.component = component
        self.armed = False
        #: Faults that found a target and were applied.
        self.injected = 0
        #: Windowed faults whose end edge has fired.
        self.cleared = 0
        #: Faults that found no applicable target (e.g. a crash rank
        #: beyond the number of live supernodes).
        self.skipped = 0

    def arm(self) -> int:
        """Schedule every fault edge; returns the number scheduled.

        Idempotent-hostile on purpose: arming twice would double-fire
        faults, so a second call raises.
        """
        if self.armed:
            raise RuntimeError("injector is already armed")
        self.armed = True
        for fault in self.plan.faults:
            delay = fault.at_s - self.env.now
            if delay < 0:
                raise ValueError(
                    f"fault at t={fault.at_s} is in the past "
                    f"(now={self.env.now})")

            def fire(_ev, fault=fault):
                self._fire(fault)

            ev = self.env.timeout(delay)
            ev.callbacks.append(fire)
        return len(self.plan)

    # -- edges --------------------------------------------------------------
    def _fire(self, fault) -> None:
        now = self.env.now
        token = self.handler.apply(fault, now)
        if token is None:
            self.skipped += 1
            self._emit("fault.skip", fault)
            return
        self.injected += 1
        self._emit("fault.inject", fault)
        clear_at = self._clear_time(fault)
        if clear_at is None:
            return

        def end(_ev, fault=fault, token=token):
            self.handler.clear(fault, token, self.env.now)
            self.cleared += 1
            self._emit("fault.clear", fault)

        ev = self.env.timeout(clear_at - now)
        ev.callbacks.append(end)

    @staticmethod
    def _clear_time(fault) -> Optional[float]:
        duration = getattr(fault, "duration_s", None)
        if duration is not None:
            return fault.at_s + duration
        return getattr(fault, "recover_at_s", None)

    def _emit(self, kind: str, fault) -> None:
        if self._obs is None:
            return
        data = {"fault": fault.kind}
        for name in ("supernode", "host_id", "duration_s", "recover_at_s",
                     "extra_s", "loss_fraction", "factor", "fraction"):
            value = getattr(fault, name, None)
            if value is not None:
                data[name] = value
        self._obs.emit(self.env.now, self.component, kind, **data)
