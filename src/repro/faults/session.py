"""Bind a fault plan to a live gaming session.

:class:`SessionChaos` is the :class:`~repro.faults.injector.FaultHandler`
for the packet-level :class:`~repro.core.infrastructure.GamingSession`.
It owns three pieces of fault state, all empty (and therefore free) when
no fault is active:

* **network conditions** — active latency extras, loss bursts and the
  partitioned-host set, consulted by the guarded delivery wrapper;
* **delivery epochs** — a per-player counter bumped at every
  reattach/migration; a wrapper created for an older epoch silently
  suppresses its deliveries, so a migrated player can never receive a
  stale segment from its previous server (in-flight segments at crash
  time still arrive, matching a real network);
* a **seeded RNG** for loss draws, consumed *only* while a loss burst is
  active — an empty or loss-free plan draws nothing, preserving
  byte-identical digests.

The wrapper replaces ``endpoint.deliver`` as the route callback only
when a plan is armed; unarmed sessions register the bare endpoint method
and pay nothing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.network.link import degrade_rate, restore_rate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.infrastructure import GamingSession
    from repro.core.player import PlayerEndpoint
    from repro.faults.failover import FailoverController


def _is_supernode(server) -> bool:
    # Duck-typed so the faults package never imports repro.core (the
    # core package imports repro.faults for the SessionConfig fields).
    return hasattr(server, "capacity_slots")


class SessionChaos:
    """Executes plan faults against a session's servers and routes."""

    def __init__(self, session: "GamingSession", plan: FaultPlan,
                 controller: "FailoverController | None" = None):
        self._session = session
        self.plan = plan
        self.controller = controller
        #: Loss/jitter draws; consumed only while a loss burst is active.
        self._rng = np.random.default_rng(
            np.random.SeedSequence([plan.seed & 0xFFFFFFFF, 0xFA117]))
        #: player id -> current delivery epoch.
        self._epochs: dict[int, int] = {}
        #: Active (target host | None for all, extra seconds) entries.
        self._latency: list[tuple[Optional[int], float]] = []
        #: Active (target host | None for all, loss fraction) entries.
        self._loss: list[tuple[Optional[int], float]] = []
        #: Hosts currently cut off by a regional partition.
        self._partitioned: set[int] = set()
        #: Deliveries suppressed because the player moved on.
        self.stale_suppressed = 0
        #: Segments dropped by loss bursts and partitions.
        self.segments_lost_to_faults = 0

    # -- delivery wrapper ---------------------------------------------------
    def bump_epoch(self, player_id: int) -> int:
        """Invalidate every delivery wrapper the player currently has."""
        epoch = self._epochs.get(player_id, 0) + 1
        self._epochs[player_id] = epoch
        return epoch

    def make_deliver(self, player_id: int, endpoint: "PlayerEndpoint",
                     host_id: int):
        """A route callback guarding ``endpoint.deliver`` for one attach.

        The returned closure pins the player's epoch at creation time;
        after a reattach/migration (which bumps the epoch) the old
        wrapper becomes a silent sink for whatever was still in flight
        from the previous server.
        """
        epoch = self._epochs.get(player_id, 0)

        def deliver(segment, now_s: float) -> None:
            if self._epochs.get(player_id, 0) != epoch:
                self.stale_suppressed += 1
                return
            if self._partitioned and host_id in self._partitioned:
                segment.drop_all()
                self.segments_lost_to_faults += 1
                endpoint.deliver(segment, now_s)
                return
            if self._loss and segment.remaining_packets > 0:
                p = self._loss_fraction(host_id)
                if p > 0.0 and self._rng.random() < p:
                    segment.drop_all()
                    self.segments_lost_to_faults += 1
                    endpoint.deliver(segment, now_s)
                    return
            extra = self._latency_extra(host_id) if self._latency else 0.0
            if extra > 0.0:
                env = self._session.env

                def arrive(_ev, segment=segment):
                    if self._epochs.get(player_id, 0) != epoch:
                        self.stale_suppressed += 1
                        return
                    self._finish(player_id, endpoint, segment, env.now)

                ev = env.timeout(extra)
                ev.callbacks.append(arrive)
                return
            self._finish(player_id, endpoint, segment, now_s)

        return deliver

    def _finish(self, player_id: int, endpoint, segment,
                now_s: float) -> None:
        endpoint.deliver(segment, now_s)
        if self.controller is not None and segment.remaining_packets > 0:
            self.controller.note_delivery(player_id, now_s)

    def _latency_extra(self, host_id: int) -> float:
        return sum(extra for target, extra in self._latency
                   if target is None or target == host_id)

    def _loss_fraction(self, host_id: int) -> float:
        keep = 1.0
        for target, frac in self._loss:
            if target is None or target == host_id:
                keep *= 1.0 - frac
        return 1.0 - keep

    # -- target resolution --------------------------------------------------
    def _live_supernodes(self) -> list:
        """Running supernode servers, busiest first (ties by host id)."""
        servers = [s for s in self._session._servers.values()
                   if _is_supernode(s) and not getattr(s, "crashed", False)]
        servers.sort(key=lambda s: (-s.n_players, s.host_id))
        return servers

    def _resolve_target(self, fault) -> Optional[int]:
        """Fault target -> host id (None = no applicable server)."""
        host_id = getattr(fault, "host_id", None)
        if host_id is not None:
            server = self._session._servers.get(int(host_id))
            if server is None or getattr(server, "crashed", False):
                return None
            return int(host_id)
        rank = getattr(fault, "supernode", None)
        if rank is None:
            return None
        live = self._live_supernodes()
        if rank >= len(live):
            return None
        return int(live[rank].host_id)

    # -- FaultHandler -------------------------------------------------------
    def apply(self, fault, now_s: float) -> Optional[Any]:
        return getattr(self, f"_apply_{fault.kind}")(fault, now_s)

    def clear(self, fault, token: Any, now_s: float) -> None:
        getattr(self, f"_clear_{fault.kind}")(fault, token, now_s)

    # crash ------------------------------------------------------------------
    def _apply_crash(self, fault, now_s: float) -> Optional[int]:
        host = self._resolve_target(fault)
        if host is None:
            return None
        session = self._session
        server = session._servers[host]
        affected = list(server._routes)
        server.fail(now_s)
        if session._sn_service is not None:
            session._sn_service.mark_failed(host)
        if self.controller is not None:
            for pid in affected:
                self.controller.on_server_down(pid, host, now_s)
        return host

    def _clear_crash(self, fault, host: int, now_s: float) -> None:
        server = self._session._servers.get(host)
        if server is not None:
            server.recover()
        if self._session._sn_service is not None:
            self._session._sn_service.mark_recovered(host)

    # latency ----------------------------------------------------------------
    def _apply_latency(self, fault, now_s: float):
        target = self._window_target(fault)
        if target is _SKIP:
            return None
        entry = (target, fault.extra_s)
        self._latency.append(entry)
        return entry

    def _clear_latency(self, fault, entry, now_s: float) -> None:
        self._latency.remove(entry)

    # loss -------------------------------------------------------------------
    def _apply_loss(self, fault, now_s: float):
        target = self._window_target(fault)
        if target is _SKIP:
            return None
        entry = (target, fault.loss_fraction)
        self._loss.append(entry)
        return entry

    def _clear_loss(self, fault, entry, now_s: float) -> None:
        self._loss.remove(entry)

    # throttle ---------------------------------------------------------------
    def _apply_throttle(self, fault, now_s: float):
        target = self._window_target(fault)
        if target is _SKIP:
            return None
        if target is None:
            servers = list(self._session._servers.values())
        else:
            servers = [self._session._servers[target]]
        tokens = []
        for server in servers:
            orig = degrade_rate(server, fault.factor,
                                attr="uplink_rate_bps")
            buf_orig = None
            if hasattr(server.buffer, "uplink_rate_bps"):
                buf_orig = degrade_rate(server.buffer, fault.factor,
                                        attr="uplink_rate_bps")
            tokens.append((server, orig, buf_orig))
        return tokens

    def _clear_throttle(self, fault, tokens, now_s: float) -> None:
        for server, orig, buf_orig in tokens:
            restore_rate(server, orig, attr="uplink_rate_bps")
            if buf_orig is not None:
                restore_rate(server.buffer, buf_orig,
                             attr="uplink_rate_bps")

    # partition --------------------------------------------------------------
    def _apply_partition(self, fault, now_s: float):
        live = self._live_supernodes()
        if not live:
            return None
        k = max(1, math.ceil(fault.fraction * len(live)))
        hosts = tuple(int(s.host_id) for s in live[:k])
        self._partitioned.update(hosts)
        return hosts

    def _clear_partition(self, fault, hosts, now_s: float) -> None:
        self._partitioned.difference_update(hosts)

    # -- helpers -------------------------------------------------------------
    def _window_target(self, fault):
        """Windowed-fault target: host id, None (= all), or _SKIP."""
        if (getattr(fault, "host_id", None) is None
                and getattr(fault, "supernode", None) is None):
            return None
        target = self._resolve_target(fault)
        return _SKIP if target is None else target


class _Skip:
    """Sentinel distinguishing 'all servers' (None) from 'no target'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<skip>"


_SKIP = _Skip()
