"""Game service provider economics (paper Eqs. 2–6).

Bandwidth reduction of CloudFog over plain cloud gaming:

    B_r⁻ = N·R − Λ·m − (N − n)·R = n·R − Λ·m                      (Eq. 2)

Provider saved cost (to maximize):

    C_g = c_c·[n·R − Λ·m] − c_s·B_s                                (Eq. 3)
    s.t.  Σ_j c_j·u_j ≥ n·R                                        (Eq. 4)
          u_j ≤ 1  ∀j                                              (Eq. 5)

Deployment gain of adding one supernode that newly covers ν players:

    G_s(j) = c_c·[ν·R − Λ] − c_s·c_j·u_j                           (Eq. 6)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: EC2 bandwidth price the paper quotes: $0.085 per GB (§I).
EC2_PRICE_PER_GB = 0.085
#: Cost of a medium datacenter the paper quotes: ~$400 M (§IV).
DATACENTER_COST_USD = 400e6


def bandwidth_reduction_bps(
    n_supported: int,
    streaming_rate_bps: float,
    update_rate_bps: float,
    n_supernodes: int,
) -> float:
    """B_r⁻ of Eq. 2, in bits per second.

    Parameters
    ----------
    n_supported:
        n — players served by supernodes.
    streaming_rate_bps:
        R — game video streaming rate.
    update_rate_bps:
        Λ — cloud-to-supernode update bandwidth per supernode.
    n_supernodes:
        m — number of supernodes receiving updates.
    """
    if n_supported < 0 or n_supernodes < 0:
        raise ValueError("counts must be nonnegative")
    return n_supported * streaming_rate_bps - update_rate_bps * n_supernodes


def supernode_contribution_bps(
    capacity_bps: np.ndarray, utilization: np.ndarray
) -> float:
    """B_s = Σ_j c_j·u_j — total supernode bandwidth contribution."""
    cap = np.asarray(capacity_bps, dtype=float)
    util = np.asarray(utilization, dtype=float)
    if np.any(util < 0) or np.any(util > 1 + 1e-12):
        raise ValueError("utilization must lie in [0, 1] (Eq. 5)")
    return float(np.sum(cap * util))


def provider_saved_cost(
    saving_per_bps: float,
    reward_per_bps: float,
    n_supported: int,
    streaming_rate_bps: float,
    update_rate_bps: float,
    capacity_bps: np.ndarray,
    utilization: np.ndarray,
    enforce_support: bool = True,
) -> float:
    """C_g of Eq. 3, checking the Eq. 4–5 constraints.

    Raises ``ValueError`` when Eq. 4 (total contribution must cover the
    supported players' streaming demand) is violated and
    ``enforce_support`` is set.
    """
    b_s = supernode_contribution_bps(capacity_bps, utilization)
    demand = n_supported * streaming_rate_bps
    if enforce_support and b_s + 1e-9 < demand:
        raise ValueError(
            f"Eq. 4 violated: contribution {b_s:.3e} bps < demand "
            f"{demand:.3e} bps")
    m = int(np.asarray(capacity_bps).shape[0])
    b_r = bandwidth_reduction_bps(
        n_supported, streaming_rate_bps, update_rate_bps, m)
    return saving_per_bps * b_r - reward_per_bps * b_s


def deployment_gain(
    saving_per_bps: float,
    reward_per_bps: float,
    new_players_covered: float,
    streaming_rate_bps: float,
    update_rate_bps: float,
    supernode_capacity_bps: float,
    supernode_utilization: float,
) -> float:
    """G_s(j) of Eq. 6 — deploy the supernode iff this is positive."""
    if not 0.0 <= supernode_utilization <= 1.0:
        raise ValueError("utilization must lie in [0, 1]")
    return (saving_per_bps
            * (new_players_covered * streaming_rate_bps - update_rate_bps)
            - reward_per_bps * supernode_capacity_bps * supernode_utilization)


@dataclass
class ProviderModel:
    """Provider-side planner: greedy supernode deployment by Eq. 6.

    The paper observes that for a fixed covered population ``n``, saved
    cost grows as the supernode count ``m`` shrinks (Eq. 3) — so the
    provider should prefer few, well-placed, highly utilized supernodes.
    The planner deploys candidates in descending marginal-gain order and
    stops when the next gain turns nonpositive.
    """

    saving_per_bps: float
    reward_per_bps: float
    streaming_rate_bps: float
    update_rate_bps: float

    def greedy_deployment(
        self,
        candidate_capacity_bps: np.ndarray,
        marginal_coverage: np.ndarray,
        utilization: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Choose which candidate supernodes to deploy.

        Parameters
        ----------
        candidate_capacity_bps:
            c_j per candidate.
        marginal_coverage:
            ν per candidate — new players covered if deployed.
        utilization:
            u_j assumed at planning time.

        Returns indices of deployed candidates, in deployment order.
        """
        cap = np.asarray(candidate_capacity_bps, dtype=float)
        nu = np.asarray(marginal_coverage, dtype=float)
        util = np.broadcast_to(
            np.asarray(utilization, dtype=float), cap.shape)
        gains = np.array([
            deployment_gain(self.saving_per_bps, self.reward_per_bps,
                            nu[j], self.streaming_rate_bps,
                            self.update_rate_bps, cap[j], float(util[j]))
            for j in range(cap.shape[0])
        ])
        order = np.argsort(-gains, kind="stable")
        deployed = [int(j) for j in order if gains[j] > 0]
        return np.array(deployed, dtype=int)

    def monthly_bandwidth_bill_usd(
        self, avg_egress_bps: float, price_per_gb: float = EC2_PRICE_PER_GB
    ) -> float:
        """Monthly egress bill at the paper's EC2 price point.

        The paper's example: 27 TB per 12 hours ≈ $130k/month at
        $0.085/GB.
        """
        seconds_per_month = 30 * 24 * 3600
        gb = avg_egress_bps * seconds_per_month / 8.0 / 1e9
        return gb * price_per_gb
