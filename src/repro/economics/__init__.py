"""Economic model of CloudFog (paper §III-A-1 and §III-A-2).

Closed-form incentive and cost accounting:

* supernode contributor profit ``P_s(j)`` (Eq. 1);
* cloud bandwidth reduction ``B_r⁻`` (Eq. 2);
* provider saved cost ``C_g`` and its constraints (Eqs. 3–5);
* per-supernode deployment gain ``G_s(j)`` (Eq. 6);
* the published price points the paper reasons with (EC2 $0.085/GB,
  $400 M per medium datacenter).
"""

from repro.economics.incentives import (
    IncentiveParams,
    contribution_decisions,
    supernode_profit,
)
from repro.economics.pricing import (
    SupplyMarket,
    clearing_reward,
    optimal_reward,
)
from repro.economics.provider import (
    ProviderModel,
    bandwidth_reduction_bps,
    deployment_gain,
    provider_saved_cost,
)

__all__ = [
    "IncentiveParams",
    "ProviderModel",
    "SupplyMarket",
    "bandwidth_reduction_bps",
    "clearing_reward",
    "contribution_decisions",
    "deployment_gain",
    "optimal_reward",
    "provider_saved_cost",
    "supernode_profit",
]
