"""Reward pricing: how much should the provider pay supernodes?

The incentive sweep shows provider savings C_g rising while supply is the
binding constraint and declining linearly in c_s afterwards — so the
provider wants the *clearing reward*: the smallest c_s whose attracted
supply covers the streaming demand. This module computes it (bisection
over the monotone supply curve) and the grid-searched C_g-optimal reward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.economics.incentives import contribution_decisions


@dataclass(frozen=True)
class SupplyMarket:
    """The contributor population the provider prices against."""

    capacity_mbps: np.ndarray
    expected_utilization: np.ndarray
    cost: np.ndarray
    thresholds: np.ndarray

    def __post_init__(self) -> None:
        n = np.asarray(self.capacity_mbps).shape[0]
        for arr in (self.expected_utilization, self.cost, self.thresholds):
            if np.asarray(arr).shape[0] != n:
                raise ValueError("market arrays must align")

    @property
    def n_contributors(self) -> int:
        return int(np.asarray(self.capacity_mbps).shape[0])

    def supply_mbps(self, reward: float) -> float:
        """Total capacity offered at reward ``c_s``."""
        mask = contribution_decisions(
            reward, self.capacity_mbps, self.expected_utilization,
            self.cost, self.thresholds)
        return float(np.asarray(self.capacity_mbps)[mask].sum())

    @property
    def max_supply_mbps(self) -> float:
        return float(np.asarray(self.capacity_mbps).sum())


def clearing_reward(
    market: SupplyMarket,
    demand_mbps: float,
    reward_hi: float = 100.0,
    tol: float = 1e-4,
) -> float:
    """Smallest reward whose supply covers ``demand_mbps``.

    Raises ``ValueError`` when even full participation cannot cover the
    demand (the market simply is not big enough).
    """
    if demand_mbps < 0:
        raise ValueError("demand must be nonnegative")
    if demand_mbps == 0:
        return 0.0
    if market.max_supply_mbps < demand_mbps:
        raise ValueError(
            f"market max supply {market.max_supply_mbps:.1f} Mbps "
            f"< demand {demand_mbps:.1f} Mbps")
    if market.supply_mbps(reward_hi) < demand_mbps:
        raise ValueError("reward_hi too small to clear the market")
    lo, hi = 0.0, reward_hi
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if market.supply_mbps(mid) >= demand_mbps:
            hi = mid
        else:
            lo = mid
    return hi


def optimal_reward(
    market: SupplyMarket,
    demand_mbps: float,
    saving_per_mbps: float,
    update_overhead_mbps: float = 0.0,
    grid: np.ndarray | None = None,
) -> tuple[float, float]:
    """(reward, saved cost) maximizing C_g over a reward grid.

    The provider pays only for *used* bandwidth (min(supply, demand)) and
    saves ``saving_per_mbps`` on every Mbps of demand it moves off the
    cloud, minus the update fan-out overhead.
    """
    if grid is None:
        grid = np.linspace(0.0, saving_per_mbps, 101)
    best_reward, best_cg = 0.0, 0.0
    for c_s in np.asarray(grid, dtype=float):
        supply = market.supply_mbps(float(c_s))
        used = min(supply, demand_mbps)
        c_g = (saving_per_mbps * (used - update_overhead_mbps)
               - float(c_s) * used) if used > 0 else 0.0
        if c_g > best_cg:
            best_reward, best_cg = float(c_s), float(c_g)
    return best_reward, best_cg
