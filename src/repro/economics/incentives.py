"""Supernode incentive mechanism (paper Eq. 1).

A contributor's profit from running a supernode is

    P_s(j) = c_s · c_j · u_j − cost_j                              (Eq. 1)

where ``c_s`` is the reward per bandwidth unit, ``c_j`` the supernode's
upload capacity, ``u_j`` its utilization, and ``cost_j`` the running cost
(electricity, maintenance). A contributor joins when the profit exceeds
its personal threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class IncentiveParams:
    """Prices of the incentive mechanism.

    Units: bandwidth in Mbps, money in dollars per Mbps-month (the exact
    unit cancels in the comparisons; the defaults are scaled so numbers
    are of EC2-bill magnitude — see :mod:`repro.economics.provider`).
    """

    #: c_s — reward paid per unit of contributed upload bandwidth.
    reward_per_mbps: float = 2.0
    #: c_c — provider revenue per unit of *saved* cloud bandwidth. Must
    #: exceed c_s for the scheme to be viable at equal utilizations.
    saving_per_mbps: float = 6.0

    def __post_init__(self) -> None:
        if self.reward_per_mbps < 0 or self.saving_per_mbps < 0:
            raise ValueError("prices must be nonnegative")


def supernode_profit(
    reward_per_mbps: float,
    capacity_mbps: np.ndarray | float,
    utilization: np.ndarray | float,
    cost: np.ndarray | float,
) -> np.ndarray | float:
    """P_s(j) of Eq. 1 — vectorized over supernodes.

    Parameters
    ----------
    reward_per_mbps:
        c_s.
    capacity_mbps:
        c_j, upload capacity per supernode.
    utilization:
        u_j ∈ [0, 1].
    cost:
        cost_j, in the same monetary unit as the reward.
    """
    capacity = np.asarray(capacity_mbps, dtype=float)
    util = np.asarray(utilization, dtype=float)
    if np.any(util < 0) or np.any(util > 1):
        raise ValueError("utilization must lie in [0, 1]")
    return reward_per_mbps * capacity * util - np.asarray(cost, dtype=float)


def contribution_decisions(
    reward_per_mbps: float,
    capacity_mbps: np.ndarray,
    utilization: np.ndarray,
    cost: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Which contributors choose to run a supernode.

    "Contributing a supernode is lucrative when P_s(j) is greater than a
    certain threshold (different contributors set their own thresholds
    based on their expectations on profits)" (§III-A-1).

    Returns a boolean mask over contributors.
    """
    profit = supernode_profit(reward_per_mbps, capacity_mbps,
                              utilization, cost)
    return np.asarray(profit) > np.asarray(thresholds, dtype=float)


def participation_curve(
    rewards_per_mbps: np.ndarray,
    capacity_mbps: np.ndarray,
    utilization: np.ndarray,
    cost: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Fraction of contributors participating at each reward level.

    The incentive-effectiveness experiment sweeps c_s and reports how
    supply responds — the supply curve the provider prices against.
    """
    rewards = np.asarray(rewards_per_mbps, dtype=float)
    fractions = np.empty(rewards.shape)
    for i, c_s in enumerate(rewards):
        mask = contribution_decisions(
            float(c_s), capacity_mbps, utilization, cost, thresholds)
        fractions[i] = float(np.mean(mask)) if mask.size else 0.0
    return fractions
