"""Kd-tree region partitioning and server load balancing.

The conventional MMOG architecture the paper describes "divides the
virtual environment into regions and assigns each region to different
servers"; the kd-tree variant (Bezerra & Geyer, cited as [1]/[12])
splits along alternating axes at the avatar-population median so every
leaf region holds a balanced share of avatars. This module implements
that scheme — it is the cloud-side compute-partitioning substrate, and a
useful baseline for reasoning about the cloud's per-server load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True, slots=True)
class Region:
    """An axis-aligned rectangle of the game map."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("degenerate region")

    def contains(self, point) -> bool:
        x, y = float(point[0]), float(point[1])
        return (self.x_min <= x <= self.x_max
                and self.y_min <= y <= self.y_max)

    @property
    def area(self) -> float:
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)


class KdTreePartitioner:
    """Median-split kd-tree over avatar positions.

    Parameters
    ----------
    n_regions:
        Number of leaf regions (must be a power of two — each split
        doubles the leaf count, as in the cited scheme).
    """

    def __init__(self, n_regions: int):
        if n_regions < 1 or (n_regions & (n_regions - 1)) != 0:
            raise ValueError("n_regions must be a power of two")
        self.n_regions = n_regions
        self._regions: list[Region] = []

    @property
    def regions(self) -> list[Region]:
        """Leaf regions of the last :meth:`partition` call."""
        return list(self._regions)

    def partition(
        self, positions: np.ndarray, map_size: float
    ) -> np.ndarray:
        """Split the map; returns each avatar's leaf-region index."""
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be (n, 2)")
        root = Region(0.0, 0.0, map_size, map_size)
        idx = np.arange(positions.shape[0])
        leaves: list[tuple[Region, np.ndarray]] = [(root, idx)]
        depth = 0
        while len(leaves) < self.n_regions:
            axis = depth % 2
            new_leaves = []
            for region, members in leaves:
                if members.size == 0:
                    mid = ((region.x_min + region.x_max) / 2 if axis == 0
                           else (region.y_min + region.y_max) / 2)
                else:
                    mid = float(np.median(positions[members, axis]))
                lo_r, hi_r = _split(region, axis, mid)
                coords = positions[members, axis] if members.size else \
                    np.empty(0)
                lo_mask = coords <= mid
                new_leaves.append((lo_r, members[lo_mask]))
                new_leaves.append((hi_r, members[~lo_mask]))
            leaves = new_leaves
            depth += 1

        self._regions = [r for r, _ in leaves]
        assignment = np.empty(positions.shape[0], dtype=int)
        for region_idx, (_, members) in enumerate(leaves):
            assignment[members] = region_idx
        return assignment

    def loads(self, assignment: np.ndarray) -> np.ndarray:
        """Avatars per region."""
        return np.bincount(np.asarray(assignment, dtype=int),
                           minlength=self.n_regions)

    def imbalance(self, assignment: np.ndarray) -> float:
        """Max/mean load ratio (1.0 = perfectly balanced)."""
        loads = self.loads(assignment)
        mean = loads.mean() if loads.size else 0.0
        if mean == 0:
            return 1.0
        return float(loads.max() / mean)

    def locate(self, point) -> Optional[int]:
        """Region index containing ``point`` (ties resolve to the first)."""
        for k, region in enumerate(self._regions):
            if region.contains(point):
                return k
        return None


def _split(region: Region, axis: int, mid: float) -> tuple[Region, Region]:
    if axis == 0:
        mid = min(max(mid, region.x_min), region.x_max)
        return (Region(region.x_min, region.y_min, mid, region.y_max),
                Region(mid, region.y_min, region.x_max, region.y_max))
    mid = min(max(mid, region.y_min), region.y_max)
    return (Region(region.x_min, region.y_min, region.x_max, mid),
            Region(region.x_min, mid, region.x_max, region.y_max))


def uniform_grid_assignment(
    positions: np.ndarray, map_size: float, n_regions: int
) -> np.ndarray:
    """Baseline: fixed uniform grid (what kd-trees improve upon).

    ``n_regions`` must be a perfect square.
    """
    side = int(round(np.sqrt(n_regions)))
    if side * side != n_regions:
        raise ValueError("n_regions must be a perfect square")
    positions = np.asarray(positions, dtype=float)
    cell = map_size / side
    xs = np.minimum((positions[:, 0] // cell).astype(int), side - 1)
    ys = np.minimum((positions[:, 1] // cell).astype(int), side - 1)
    return ys * side + xs
