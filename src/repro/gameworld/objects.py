"""World objects — the non-avatar state in update messages.

The cloud's game-state computation covers "the new shape and position of
objects and states of avatars" (§III-A). Objects are the interactables
of the virtual world: chests, doors, resource nodes. An INTERACT action
consumes the nearest available object; consumed objects respawn after a
cooldown. Object state changes travel in update messages alongside
avatar deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

#: Serialized bytes of one object's state in an update message:
#: id (4) + position (2 x 4) + kind (1) + state (1) + respawn (2).
OBJECT_STATE_BYTES = 16


class ObjectKind(Enum):
    CHEST = "chest"
    DOOR = "door"
    RESOURCE = "resource"


class ObjectState(Enum):
    AVAILABLE = "available"
    CONSUMED = "consumed"


@dataclass(slots=True)
class WorldObject:
    """One interactable object."""

    object_id: int
    kind: ObjectKind
    position: np.ndarray
    state: ObjectState = ObjectState.AVAILABLE
    #: Tick at which a consumed object respawns.
    respawn_tick: int = -1
    dirty_tick: int = -1

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        if self.position.shape != (2,):
            raise ValueError("object position must be a 2-vector")

    @property
    def available(self) -> bool:
        return self.state is ObjectState.AVAILABLE

    def mark_dirty(self, tick: int) -> None:
        self.dirty_tick = tick

    def is_dirty(self, tick: int) -> bool:
        return self.dirty_tick == tick


class ObjectLayer:
    """The world's object population and its interaction rules.

    Parameters
    ----------
    rng:
        Placement randomness.
    n_objects:
        Objects scattered over the map.
    map_size:
        Side length of the square map.
    interact_range:
        Maximum distance at which an avatar can use an object.
    respawn_ticks:
        Cooldown before a consumed object becomes available again.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_objects: int,
        map_size: float,
        interact_range: float = 20.0,
        respawn_ticks: int = 100,
    ):
        if n_objects < 0:
            raise ValueError("n_objects must be nonnegative")
        if interact_range <= 0 or respawn_ticks < 1:
            raise ValueError("invalid interaction constants")
        self.interact_range = interact_range
        self.respawn_ticks = respawn_ticks
        kinds = list(ObjectKind)
        self.objects: dict[int, WorldObject] = {
            i: WorldObject(
                i,
                kinds[int(rng.integers(len(kinds)))],
                rng.uniform(0, map_size, size=2),
            )
            for i in range(n_objects)
        }
        self.interactions = 0
        self.failed_interactions = 0

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    def positions(self) -> np.ndarray:
        ids = sorted(self.objects)
        if not ids:
            return np.empty((0, 2))
        return np.array([self.objects[i].position for i in ids])

    def nearest_available(self, position: np.ndarray) -> WorldObject | None:
        """Closest available object within interaction range."""
        best, best_dist = None, float("inf")
        for obj in self.objects.values():
            if not obj.available:
                continue
            dist = float(np.hypot(*(obj.position - position)))
            if dist < best_dist:
                best, best_dist = obj, dist
        if best is not None and best_dist <= self.interact_range:
            return best
        return None

    def interact(self, position: np.ndarray, tick: int) -> WorldObject | None:
        """Consume the nearest available object; returns it (or None)."""
        obj = self.nearest_available(np.asarray(position, dtype=float))
        if obj is None:
            self.failed_interactions += 1
            return None
        obj.state = ObjectState.CONSUMED
        obj.respawn_tick = tick + self.respawn_ticks
        obj.mark_dirty(tick)
        self.interactions += 1
        return obj

    def step(self, tick: int) -> set[int]:
        """Respawn due objects; returns ids of objects dirty this tick."""
        dirty = set()
        for obj in self.objects.values():
            if (obj.state is ObjectState.CONSUMED
                    and 0 <= obj.respawn_tick <= tick):
                obj.state = ObjectState.AVAILABLE
                obj.respawn_tick = -1
                obj.mark_dirty(tick)
            if obj.is_dirty(tick):
                dirty.add(obj.object_id)
        return dirty
