"""Player actions — the inputs the cloud turns into game state.

"When node n_i makes an action (e.g., launching a strike or moving to a
new place), this information is sent to the cloud server" (§III-A). Each
action kind has an upstream wire size; actions are tiny compared to
video, which is why the paper's upload leg "does not seriously affect
the response latency".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np


class ActionKind(Enum):
    """The action vocabulary (paper's examples plus idles)."""

    MOVE = "move"          # set a movement target / direction
    STRIKE = "strike"      # attack another avatar
    INTERACT = "interact"  # use an object
    STOP = "stop"          # halt movement
    IDLE = "idle"          # heartbeat (no state change)


#: Upstream wire size per action kind, bytes (header + payload).
ACTION_BYTES = {
    ActionKind.MOVE: 16,      # header + target vector
    ActionKind.STRIKE: 12,    # header + target avatar id
    ActionKind.INTERACT: 12,
    ActionKind.STOP: 8,
    ActionKind.IDLE: 8,
}


@dataclass(frozen=True, slots=True)
class Action:
    """One player action submitted to the cloud."""

    actor_id: int
    kind: ActionKind
    #: MOVE: target position; others: None.
    target_position: Optional[tuple[float, float]] = None
    #: STRIKE/INTERACT: target avatar/object id.
    target_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.MOVE and self.target_position is None:
            raise ValueError("MOVE requires a target position")
        if self.kind is ActionKind.STRIKE and self.target_id is None:
            raise ValueError("STRIKE requires a target id")

    @property
    def wire_bytes(self) -> int:
        """Upstream bytes this action costs."""
        return ACTION_BYTES[self.kind]


def random_action(
    rng: np.random.Generator,
    actor_id: int,
    n_avatars: int,
    map_size: float,
) -> Action:
    """Draw a plausible action (mostly movement, as in real MMOG traces)."""
    roll = rng.uniform()
    if roll < 0.70:
        return Action(actor_id, ActionKind.MOVE,
                      target_position=(float(rng.uniform(0, map_size)),
                                       float(rng.uniform(0, map_size))))
    if roll < 0.85 and n_avatars > 1:
        target = int(rng.integers(n_avatars))
        if target == actor_id:
            target = (target + 1) % n_avatars
        return Action(actor_id, ActionKind.STRIKE, target_id=target)
    if roll < 0.92:
        return Action(actor_id, ActionKind.INTERACT, target_id=0)
    if roll < 0.96:
        return Action(actor_id, ActionKind.STOP)
    return Action(actor_id, ActionKind.IDLE)
