"""The virtual world tick loop.

Each tick the cloud collects the actions that arrived since the last
tick, applies them (movement targets, strikes, interactions), integrates
avatar movement, and produces the *dirty set* — the avatars whose state
changed and must appear in update messages.

Positions live on a square game map (world units are meters of game
space; unrelated to the network plane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.gameworld.actions import Action, ActionKind
from repro.gameworld.avatar import Avatar


@dataclass(frozen=True, slots=True)
class WorldParams:
    """Virtual-world constants."""

    #: Side length of the square map, world units.
    map_size: float = 1000.0
    #: Avatar movement speed, world units per second.
    move_speed: float = 6.0
    #: Strike reach, world units.
    strike_range: float = 15.0
    #: Damage per landed strike.
    strike_damage: float = 10.0
    #: Health regeneration per second.
    regen_per_s: float = 1.0
    #: Simulation tick length, seconds (10 Hz, the update cadence).
    tick_s: float = 0.1

    def __post_init__(self) -> None:
        if self.map_size <= 0 or self.tick_s <= 0:
            raise ValueError("map size and tick must be positive")


class World:
    """The authoritative virtual world."""

    def __init__(
        self,
        rng: np.random.Generator,
        n_avatars: int,
        params: WorldParams | None = None,
        n_objects: int = 0,
    ):
        if n_avatars < 0:
            raise ValueError("n_avatars must be nonnegative")
        self.params = params or WorldParams()
        self.tick = 0
        self.avatars: dict[int, Avatar] = {}
        self._move_targets: dict[int, np.ndarray] = {}
        for i in range(n_avatars):
            pos = rng.uniform(0, self.params.map_size, size=2)
            self.avatars[i] = Avatar(i, position=pos,
                                     orientation_rad=float(
                                         rng.uniform(0, 2 * np.pi)))
        from repro.gameworld.objects import ObjectLayer
        #: Interactable objects ("the new shape and position of objects").
        self.objects = ObjectLayer(rng, n_objects, self.params.map_size)
        #: Object ids that changed during the last tick.
        self.dirty_objects: set[int] = set()
        self.strikes_landed = 0
        self.strikes_missed = 0

    @property
    def n_avatars(self) -> int:
        return len(self.avatars)

    def positions(self) -> np.ndarray:
        """(n, 2) array of avatar positions, ordered by avatar id."""
        ids = sorted(self.avatars)
        if not ids:
            return np.empty((0, 2))
        return np.array([self.avatars[i].position for i in ids])

    # -- tick ------------------------------------------------------------------
    def step(self, actions: Sequence[Action] = ()) -> set[int]:
        """Advance one tick; returns the ids of dirty avatars."""
        self.tick += 1
        p = self.params
        dirty: set[int] = set()

        for action in actions:
            avatar = self.avatars.get(action.actor_id)
            if avatar is None or not avatar.alive:
                continue
            if action.kind is ActionKind.MOVE:
                target = np.clip(np.asarray(action.target_position, float),
                                 0.0, p.map_size)
                self._move_targets[avatar.avatar_id] = target
                delta = target - avatar.position
                norm = float(np.hypot(*delta))
                if norm > 1e-9:
                    avatar.orientation_rad = float(
                        np.arctan2(delta[1], delta[0]))
                    avatar.velocity = delta / norm * p.move_speed
                dirty.add(avatar.avatar_id)
            elif action.kind is ActionKind.STOP:
                self._move_targets.pop(avatar.avatar_id, None)
                avatar.velocity = np.zeros(2)
                dirty.add(avatar.avatar_id)
            elif action.kind is ActionKind.STRIKE:
                victim = self.avatars.get(action.target_id)
                if victim is None or not victim.alive:
                    self.strikes_missed += 1
                    continue
                dist = float(np.hypot(
                    *(victim.position - avatar.position)))
                if dist <= p.strike_range:
                    victim.health = max(0.0,
                                        victim.health - p.strike_damage)
                    self.strikes_landed += 1
                    dirty.add(victim.avatar_id)
                    dirty.add(avatar.avatar_id)
                else:
                    self.strikes_missed += 1
            elif action.kind is ActionKind.INTERACT:
                obj = self.objects.interact(avatar.position, self.tick)
                if obj is not None:
                    dirty.add(avatar.avatar_id)
            # IDLE: no state change.

        # Integrate movement toward targets.
        for aid, target in list(self._move_targets.items()):
            avatar = self.avatars[aid]
            if not avatar.alive:
                self._move_targets.pop(aid, None)
                continue
            delta = target - avatar.position
            dist = float(np.hypot(*delta))
            step_len = p.move_speed * p.tick_s
            if dist <= step_len:
                avatar.position = target.copy()
                avatar.velocity = np.zeros(2)
                self._move_targets.pop(aid, None)
            else:
                avatar.position = avatar.position + delta / dist * step_len
            dirty.add(aid)

        # Regeneration (dirty only on integer health changes to avoid
        # flagging every avatar every tick).
        for avatar in self.avatars.values():
            if avatar.alive and avatar.health < 100.0:
                before = int(avatar.health)
                avatar.health = min(100.0,
                                    avatar.health + p.regen_per_s * p.tick_s)
                if int(avatar.health) != before:
                    dirty.add(avatar.avatar_id)

        self.dirty_objects = self.objects.step(self.tick)
        for aid in dirty:
            self.avatars[aid].mark_dirty(self.tick)
        return dirty

    def run_ticks(
        self,
        rng: np.random.Generator,
        n_ticks: int,
        actions_per_tick: float = 1.0,
    ) -> list[set[int]]:
        """Drive ``n_ticks`` with random actions; returns dirty sets."""
        from repro.gameworld.actions import random_action
        out = []
        for _ in range(n_ticks):
            n_actions = rng.poisson(actions_per_tick * max(
                1, self.n_avatars))
            actions = [
                random_action(rng, int(rng.integers(self.n_avatars)),
                              self.n_avatars, self.params.map_size)
                for _ in range(int(n_actions))
            ] if self.n_avatars else []
            out.append(self.step(actions))
        return out
