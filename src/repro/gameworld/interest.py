"""Area-of-interest (AOI) filtering.

A player's game video only shows the part of the world near its avatar,
so its update message only needs the dirty avatars within its area of
interest. AOI filtering is what keeps update messages small and nearly
constant-size as the world grows — the property the main experiments'
constant Λ relies on.
"""

from __future__ import annotations

import numpy as np

from repro.gameworld.world import World


class AreaOfInterest:
    """Radius-based interest management over a world.

    Parameters
    ----------
    radius:
        AOI radius in world units.
    """

    def __init__(self, radius: float = 100.0):
        if radius <= 0:
            raise ValueError("AOI radius must be positive")
        self.radius = radius

    def visible_to(self, world: World, observer_id: int) -> np.ndarray:
        """Avatar ids within the observer's AOI (excluding itself)."""
        observer = world.avatars[observer_id]
        ids = np.array(sorted(world.avatars), dtype=int)
        positions = world.positions()
        delta = positions - observer.position[None, :]
        dist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        mask = (dist <= self.radius) & (ids != observer_id)
        return ids[mask]

    def visible_matrix(self, world: World,
                       observer_ids: np.ndarray) -> np.ndarray:
        """Boolean (observers x avatars) visibility matrix, vectorized."""
        observer_ids = np.asarray(observer_ids, dtype=int)
        ids = np.array(sorted(world.avatars), dtype=int)
        positions = world.positions()
        id_to_row = {int(a): k for k, a in enumerate(ids)}
        obs_pos = np.array([
            world.avatars[int(o)].position for o in observer_ids])
        if obs_pos.size == 0 or positions.size == 0:
            return np.zeros((observer_ids.size, ids.size), dtype=bool)
        delta = obs_pos[:, None, :] - positions[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        visible = dist <= self.radius
        for row, o in enumerate(observer_ids):
            visible[row, id_to_row[int(o)]] = False
        return visible

    def interest_set(
        self, world: World, observer_ids: np.ndarray, dirty: set[int]
    ) -> dict[int, list[int]]:
        """Dirty avatars each observer must be told about this tick."""
        ids = np.array(sorted(world.avatars), dtype=int)
        visible = self.visible_matrix(world, observer_ids)
        dirty_mask = np.array([int(a) in dirty for a in ids])
        out: dict[int, list[int]] = {}
        for row, o in enumerate(np.asarray(observer_ids, dtype=int)):
            mask = visible[row] & dirty_mask
            # An observer always hears about its own avatar's changes.
            own = int(o) in dirty
            members = [int(a) for a in ids[mask]]
            if own:
                members.append(int(o))
            out[int(o)] = members
        return out
