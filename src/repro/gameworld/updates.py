"""Update-message encoding: the measured Λ.

After each tick the cloud sends every supernode one update message
containing the state deltas its players need: the union of the dirty
avatars inside its players' areas of interest. This module measures
those message sizes — grounding the constant ``UPDATE_MESSAGE_BYTES``
(Λ ≈ 2 KB) the main experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gameworld.avatar import AVATAR_DELTA_BYTES, AVATAR_STATE_BYTES
from repro.gameworld.interest import AreaOfInterest
from repro.gameworld.objects import OBJECT_STATE_BYTES
from repro.gameworld.world import World

#: Fixed header of one update message (tick number, counts, checksum).
UPDATE_HEADER_BYTES = 24


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """One cloud-to-supernode update for one tick."""

    supernode_id: int
    tick: int
    n_full_states: int
    n_deltas: int
    n_objects: int = 0

    @property
    def wire_bytes(self) -> int:
        return (UPDATE_HEADER_BYTES
                + self.n_full_states * AVATAR_STATE_BYTES
                + self.n_deltas * AVATAR_DELTA_BYTES
                + self.n_objects * OBJECT_STATE_BYTES)


class UpdateEncoder:
    """Builds per-supernode update messages from tick dirty sets.

    Parameters
    ----------
    aoi:
        Interest filter applied per player.
    full_state_fraction:
        Fraction of included avatars that need full state (combat,
        health changes) rather than a movement delta.
    """

    def __init__(self, aoi: AreaOfInterest,
                 full_state_fraction: float = 0.2):
        if not 0.0 <= full_state_fraction <= 1.0:
            raise ValueError("full_state_fraction must lie in [0, 1]")
        self.aoi = aoi
        self.full_state_fraction = full_state_fraction

    def encode_tick(
        self,
        world: World,
        dirty: set[int],
        supernode_players: dict[int, list[int]],
    ) -> list[UpdateMessage]:
        """One update message per supernode for the current tick.

        Parameters
        ----------
        supernode_players:
            Map of supernode id to the avatar ids of the players it
            serves.
        """
        messages = []
        for sn_id, player_ids in supernode_players.items():
            if not player_ids:
                messages.append(UpdateMessage(sn_id, world.tick, 0, 0))
                continue
            interest = self.aoi.interest_set(
                world, np.asarray(player_ids, dtype=int), dirty)
            union: set[int] = set()
            for members in interest.values():
                union.update(members)
            n_objects = self._dirty_objects_in_interest(world, player_ids)
            n_full = int(round(self.full_state_fraction * len(union)))
            n_delta = len(union) - n_full
            messages.append(UpdateMessage(
                sn_id, world.tick, n_full, n_delta, n_objects))
        return messages

    def _dirty_objects_in_interest(self, world: World,
                                   player_ids) -> int:
        """Dirty objects within any served player's AOI this tick."""
        if not world.dirty_objects:
            return 0
        count = 0
        for oid in world.dirty_objects:
            obj = world.objects.objects[oid]
            for pid in player_ids:
                avatar = world.avatars.get(int(pid))
                if avatar is None:
                    continue
                dist = float(np.hypot(*(obj.position - avatar.position)))
                if dist <= self.aoi.radius:
                    count += 1
                    break
        return count

    def mean_update_bytes(
        self,
        world: World,
        rng: np.random.Generator,
        supernode_players: dict[int, list[int]],
        n_ticks: int = 50,
        actions_per_tick: float = 1.0,
    ) -> float:
        """Average Λ (bytes per supernode per tick) over a simulation."""
        total = 0.0
        count = 0
        for dirty in world.run_ticks(rng, n_ticks, actions_per_tick):
            for msg in self.encode_tick(world, dirty, supernode_players):
                total += msg.wire_bytes
                count += 1
        return total / count if count else 0.0
