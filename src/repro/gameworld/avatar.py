"""Avatar state.

An avatar is one player's embodiment in the virtual world: a position,
an orientation, a velocity, and gameplay state (health). The serialized
size of one avatar's state delta determines update-message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Serialized bytes of one avatar's full state in an update message:
#: id (4) + position (2 x 4) + orientation (4) + velocity (2 x 4) +
#: health (2) + action/animation code (2) = 28 bytes.
AVATAR_STATE_BYTES = 28

#: Serialized bytes of a movement-only delta (id + position + orientation).
AVATAR_DELTA_BYTES = 16


@dataclass(slots=True)
class Avatar:
    """One avatar in the virtual world."""

    avatar_id: int
    position: np.ndarray = field(
        default_factory=lambda: np.zeros(2))
    orientation_rad: float = 0.0
    velocity: np.ndarray = field(
        default_factory=lambda: np.zeros(2))
    health: float = 100.0
    #: Tick number of the last state change (drives delta encoding).
    dirty_tick: int = -1

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        self.velocity = np.asarray(self.velocity, dtype=float)
        if self.position.shape != (2,) or self.velocity.shape != (2,):
            raise ValueError("position/velocity must be 2-vectors")

    @property
    def alive(self) -> bool:
        return self.health > 0.0

    def mark_dirty(self, tick: int) -> None:
        """Record that the avatar changed during ``tick``."""
        self.dirty_tick = tick

    def is_dirty(self, tick: int) -> bool:
        """Whether the avatar changed during ``tick``."""
        return self.dirty_tick == tick
