"""The MMOG virtual world — the cloud's game-state computation.

The paper's cloud "performs the computation of the new game state of the
virtual world (including the new shape and position of objects and states
of avatars)" and sends per-supernode update messages. The main experiments
model that with a constant compute delay and a constant update size Λ;
this package implements the substrate itself so both constants are
*derived*, not assumed:

* :mod:`repro.gameworld.avatar` / :mod:`repro.gameworld.actions` — avatar
  state and the player actions that mutate it;
* :mod:`repro.gameworld.world` — the tick loop: apply actions, integrate
  movement, produce the per-tick dirty set;
* :mod:`repro.gameworld.interest` — area-of-interest (AOI) filtering:
  which avatars each player's update must include;
* :mod:`repro.gameworld.partition` — kd-tree region partitioning and
  load balancing across game servers (the Bezerra & Geyer scheme the
  paper cites as the conventional MMOG architecture);
* :mod:`repro.gameworld.updates` — update-message encoding: bytes per
  supernode per tick, the measured Λ.

`repro.experiments.gameworld_exp` measures Λ against avatar density and
AOI radius and validates the 2 KB/tick constant used by the main
experiments.
"""

from repro.gameworld.actions import Action, ActionKind
from repro.gameworld.avatar import Avatar
from repro.gameworld.interest import AreaOfInterest
from repro.gameworld.objects import ObjectKind, ObjectLayer, WorldObject
from repro.gameworld.partition import KdTreePartitioner, Region
from repro.gameworld.updates import UpdateEncoder
from repro.gameworld.world import World, WorldParams

__all__ = [
    "Action",
    "ActionKind",
    "AreaOfInterest",
    "Avatar",
    "KdTreePartitioner",
    "ObjectKind",
    "ObjectLayer",
    "Region",
    "UpdateEncoder",
    "World",
    "WorldObject",
    "WorldParams",
]
