"""Social graph: power-law friend counts and social game choice.

"The number of friends for each player follows power-law distribution with
skew factor of 0.5" (§IV, citing the Facebook measurement study). We draw a
power-law degree sequence with exponent derived from the skew factor and
realize it with a configuration-model graph (self-loops and multi-edges
removed), via networkx.

The social graph drives game selection: "when a player joins the system,
if none of its friends is playing, it randomly chooses a game to play;
otherwise, it chooses the game that has the largest number of its friends
playing."
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.workload.games import GAMES, Game


class SocialGraph:
    """Friendship structure over player ids ``0..n-1``."""

    def __init__(self, graph: nx.Graph, n_players: int):
        self._graph = graph
        self.n_players = n_players

    def friends_of(self, player_id: int) -> list[int]:
        """Friend ids of ``player_id`` (empty for isolated players)."""
        if player_id not in self._graph:
            return []
        return list(self._graph.neighbors(player_id))

    def degree(self, player_id: int) -> int:
        """Number of friends of ``player_id``."""
        return self._graph.degree(player_id) if player_id in self._graph else 0

    @property
    def nx_graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def choose_game(
        self,
        player_id: int,
        playing: dict[int, int],
        rng: np.random.Generator,
        games: Sequence[Game] = GAMES,
    ) -> Game:
        """Pick the joining player's game (paper §IV rule).

        Parameters
        ----------
        player_id:
            The joining player.
        playing:
            Map of currently-online player id -> game id.
        rng:
            Randomness for the no-friends-online fallback.
        """
        votes = Counter()
        for friend in self.friends_of(player_id):
            game_id = playing.get(friend)
            if game_id is not None:
                votes[game_id] += 1
        if not votes:
            return games[int(rng.integers(len(games)))]
        top = max(votes.values())
        # Deterministic tie-break on game id keeps runs reproducible.
        best_game_id = min(g for g, v in votes.items() if v == top)
        return games[best_game_id - 1]


def powerlaw_degree_sequence(
    rng: np.random.Generator,
    n: int,
    skew: float = 0.5,
    max_degree: Optional[int] = None,
) -> np.ndarray:
    """Draw a power-law degree sequence with the paper's skew factor.

    Skew 0.5 means P(degree = k) ∝ k^-(1 + skew); degrees start at 1.
    The sequence sum is forced even so a configuration model exists.
    """
    if n <= 0:
        return np.zeros(0, dtype=int)
    if skew <= 0:
        raise ValueError("skew must be positive")
    exponent = 1.0 + skew
    if max_degree is None:
        max_degree = max(2, int(np.sqrt(n)))
    ks = np.arange(1, max_degree + 1, dtype=float)
    probs = ks ** (-exponent)
    probs /= probs.sum()
    degrees = rng.choice(np.arange(1, max_degree + 1), size=n, p=probs)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(n))] += 1
    return degrees.astype(int)


def build_social_graph(
    rng: np.random.Generator,
    n_players: int,
    skew: float = 0.5,
) -> SocialGraph:
    """Realize the power-law friendship graph for ``n_players`` players."""
    degrees = powerlaw_degree_sequence(rng, n_players, skew)
    seed = int(rng.integers(2**31 - 1))
    multigraph = nx.configuration_model(degrees.tolist(), seed=seed)
    graph = nx.Graph(multigraph)  # collapse multi-edges
    graph.remove_edges_from(nx.selfloop_edges(graph))
    return SocialGraph(graph, n_players)
