"""Workload generation: players, games, sessions, social structure.

Reproduces the paper's §IV workload verbatim:

* 10 000 players (online and offline), 10 % supernode-capable;
* Poisson arrivals at 5 players/second;
* node capacities Pareto-distributed with mean 5 and shape α = 1
  (truncated — see :mod:`repro.workload.capacities`);
* number of friends per player power-law with skew 0.5;
* daily play time: 50 % of players in (0, 2] h, 30 % in (2, 5] h,
  20 % in (5, 24] h;
* five games whose latency requirements and tolerance degrees are the
  five rows of Figure 2; a joining player picks the game most of its
  online friends play, or uniformly at random when none are online.
"""

from repro.workload.games import GAMES, Game, game_for_level
from repro.workload.capacities import pareto_capacities
from repro.workload.social import SocialGraph, build_social_graph
from repro.workload.sessions import SessionSchedule, sample_daily_play_s
from repro.workload.players import Player, Population, build_population

__all__ = [
    "GAMES",
    "Game",
    "Player",
    "Population",
    "SessionSchedule",
    "SocialGraph",
    "build_population",
    "build_social_graph",
    "game_for_level",
    "pareto_capacities",
    "sample_daily_play_s",
]
