"""Session dynamics: arrivals and play-time mixture.

"Players join the system following the Poisson distribution with an
average rate of 5 players per second. Each node leaves the system after it
finishes playing and joins the system for the next session. ... 50 % of
nodes play for a period randomly selected from (0, 2] hours a day, 30 %
from (2, 5] hours and 20 % from (5, 24] hours" (§IV, citing Hellstrom et
al. on adolescent gaming time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Poisson arrival rate of joining players, per second (paper §IV).
DEFAULT_ARRIVAL_RATE_PER_S = 5.0

#: Daily play-time mixture: (probability, low hours, high hours].
PLAYTIME_MIXTURE = (
    (0.5, 0.0, 2.0),
    (0.3, 2.0, 5.0),
    (0.2, 5.0, 24.0),
)

#: Diurnal arrival shape: gaming peaks in the evening (~20:00) and
#: troughs before dawn (~05:00). Amplitude 0.75 gives a ~7x peak/trough
#: ratio, in line with published MMOG concurrency curves.
DIURNAL_PEAK_HOUR = 20.0
DIURNAL_AMPLITUDE = 0.75


def diurnal_multiplier(time_of_day_s: float,
                       peak_hour: float = DIURNAL_PEAK_HOUR,
                       amplitude: float = DIURNAL_AMPLITUDE) -> float:
    """Arrival-rate multiplier at a given second of the day.

    A raised cosine with mean 1.0: integrating over a full day recovers
    the nominal rate, so the paper's 5 players/s stays the daily average.
    The peak hour and amplitude default to the module constants; the
    dynamics DSL (``repro.dynamics.plan.DiurnalLoad``) passes its own.
    """
    hours = (time_of_day_s / 3600.0) % 24.0
    phase = 2.0 * np.pi * (hours - peak_hour) / 24.0
    return 1.0 + amplitude * np.cos(phase)


def sample_daily_play_s(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw daily play times (seconds) from the paper's three-band mixture."""
    if n < 0:
        raise ValueError("n must be nonnegative")
    probs = np.array([p for p, _, _ in PLAYTIME_MIXTURE])
    bands = rng.choice(len(PLAYTIME_MIXTURE), size=n, p=probs)
    lows = np.array([lo for _, lo, _ in PLAYTIME_MIXTURE])[bands]
    highs = np.array([hi for _, _, hi in PLAYTIME_MIXTURE])[bands]
    # "randomly selected from (lo, hi]": uniform on the half-open interval.
    u = rng.uniform(0.0, 1.0, size=n)
    hours = highs - u * (highs - lows)  # in (lo, hi]
    return hours * 3600.0


@dataclass(frozen=True, slots=True)
class SessionEvent:
    """One player-join event in the arrival process."""

    time_s: float
    player_id: int
    duration_s: float


class SessionSchedule:
    """Generates the join/leave timeline for a player population.

    Joins are a Poisson process over the experiment horizon; each join
    picks a uniformly random player who is currently offline and keeps it
    online for a session carved from the player's daily play time.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        daily_play_s: np.ndarray,
        arrival_rate_per_s: float = DEFAULT_ARRIVAL_RATE_PER_S,
        sessions_per_day: int = 3,
        diurnal: bool = False,
        day_length_s: float = 86_400.0,
    ):
        if arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if sessions_per_day <= 0:
            raise ValueError("sessions_per_day must be positive")
        if day_length_s <= 0:
            raise ValueError("day length must be positive")
        self.rng = rng
        self.daily_play_s = np.asarray(daily_play_s, dtype=float)
        self.arrival_rate_per_s = arrival_rate_per_s
        self.sessions_per_day = sessions_per_day
        #: Modulate arrivals by time of day (thinning of a Poisson
        #: process at the peak rate). ``day_length_s`` lets short
        #: simulations compress a day into their horizon.
        self.diurnal = diurnal
        self.day_length_s = day_length_s

    @property
    def n_players(self) -> int:
        return self.daily_play_s.shape[0]

    def session_duration_s(self, player_id: int) -> float:
        """One session's length: the player's daily time split into
        ``sessions_per_day`` sessions, jittered ±25 %."""
        base = self.daily_play_s[player_id] / self.sessions_per_day
        jitter = self.rng.uniform(0.75, 1.25)
        return max(60.0, base * jitter)

    def iter_joins(self, horizon_s: float) -> Iterator[SessionEvent]:
        """Yield join events over ``[0, horizon_s)`` in time order.

        A player already online when its next join fires is skipped (it
        is still in its previous session) — this bounds concurrent online
        count at the population size without distorting the Poisson shape.
        """
        if horizon_s < 0:
            raise ValueError("horizon must be nonnegative")
        online_until = np.zeros(self.n_players)
        peak_rate = self.arrival_rate_per_s * (
            1.0 + DIURNAL_AMPLITUDE if self.diurnal else 1.0)
        t = 0.0
        while True:
            t += self.rng.exponential(1.0 / peak_rate)
            if t >= horizon_s:
                return
            if self.diurnal:
                # Thinning: accept with prob rate(t)/peak_rate.
                day_s = (t / self.day_length_s) * 86_400.0
                accept = (self.arrival_rate_per_s
                          * diurnal_multiplier(day_s) / peak_rate)
                if self.rng.uniform() >= accept:
                    continue
            player = int(self.rng.integers(self.n_players))
            if online_until[player] > t:
                continue
            duration = self.session_duration_s(player)
            online_until[player] = t + duration
            yield SessionEvent(time_s=t, player_id=player, duration_s=duration)
