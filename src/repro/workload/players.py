"""The player population: ties workload pieces to the topology.

``build_population`` assembles the paper's full §IV setup for the
simulation testbed: a metro-clustered topology with datacenters, 10 000
players of whom 10 % are supernode-capable, 600 promoted to supernodes,
Pareto capacities, the social graph, and daily play times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.network.latency import LatencyModel, LatencyParams
from repro.network.topology import (
    HostKind,
    Topology,
    build_topology,
    place_edge_servers,
    promote_supernodes,
)
from repro.sim.rng import RngRegistry
from repro.workload.capacities import pareto_capacities
from repro.workload.games import GAMES, Game
from repro.workload.sessions import SessionSchedule, sample_daily_play_s
from repro.workload.social import SocialGraph, build_social_graph

#: Access latency of a datacenter host (carrier-grade connectivity).
DATACENTER_ACCESS_S = 0.003
#: Median access latency of a promoted supernode (vetted connections).
SUPERNODE_ACCESS_MEDIAN_S = 0.005


@dataclass(slots=True)
class Player:
    """One player: identity, placement, endowments."""

    player_id: int
    host_id: int
    capacity_slots: int
    daily_play_s: float
    supernode_capable: bool
    game: Optional[Game] = None  # set at join time


@dataclass
class Population:
    """The complete §IV experimental population."""

    topology: Topology
    latency: LatencyModel
    players: list[Player]
    social: SocialGraph
    schedule: SessionSchedule
    datacenter_ids: np.ndarray
    supernode_host_ids: np.ndarray
    rngs: RngRegistry
    #: EdgeCloud's additional servers (empty unless requested).
    edge_server_host_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_players(self) -> int:
        return len(self.players)

    def player_host_ids(self) -> np.ndarray:
        """Host ids of all players, aligned with player ids."""
        return np.array([p.host_id for p in self.players], dtype=int)

    def capable_player_ids(self) -> np.ndarray:
        """Ids of supernode-capable players."""
        return np.array(
            [p.player_id for p in self.players if p.supernode_capable],
            dtype=int)


def build_population(
    rngs: RngRegistry,
    n_players: int = 10_000,
    n_datacenters: int = 5,
    n_supernodes: int = 600,
    capable_fraction: float = 0.10,
    n_metros: int = 50,
    latency_params: Optional[LatencyParams] = None,
    friend_skew: float = 0.5,
    n_edge_servers: int = 0,
    metro_spread_km: float = 40.0,
    zipf_exponent: float = 1.0,
) -> Population:
    """Build the simulation-testbed population (paper §IV defaults).

    Parameters
    ----------
    rngs:
        Named RNG registry; uses streams ``topology``, ``capacity``,
        ``social``, ``sessions``, ``latency``, ``supernodes``.
    n_players:
        Total players, online and offline (paper: 10 000).
    n_datacenters:
        Main datacenters (paper: 5 for simulation).
    n_supernodes:
        Players promoted to supernodes (paper: 600).
    capable_fraction:
        Fraction of players with supernode-capable hardware (paper: 10 %).
    """
    if not 0.0 <= capable_fraction <= 1.0:
        raise ValueError("capable_fraction must be in [0, 1]")
    topo = build_topology(
        rngs.stream("topology"), n_players, n_datacenters, n_metros,
        metro_spread_km=metro_spread_km, zipf_exponent=zipf_exponent)
    dc_ids = topo.indices_of(HostKind.DATACENTER)

    capacity_rng = rngs.stream("capacity")
    capacities = pareto_capacities(capacity_rng, n_players)
    daily_play = sample_daily_play_s(rngs.stream("sessions"), n_players)

    # Capability: the top `capable_fraction` by capacity are eligible —
    # "10% of which have the capacity to be supernodes" (§IV).
    n_capable = int(round(capable_fraction * n_players))
    if n_capable > 0:
        threshold_idx = np.argsort(capacities)[::-1][:n_capable]
        capable_mask = np.zeros(n_players, dtype=bool)
        capable_mask[threshold_idx] = True
    else:
        capable_mask = np.zeros(n_players, dtype=bool)

    player_host_ids = topo.indices_of(HostKind.PLAYER)
    players = [
        Player(
            player_id=i,
            host_id=int(player_host_ids[i]),
            capacity_slots=int(capacities[i]),
            daily_play_s=float(daily_play[i]),
            supernode_capable=bool(capable_mask[i]),
        )
        for i in range(n_players)
    ]

    capable_host_ids = np.array(
        [p.host_id for p in players if p.supernode_capable], dtype=int)
    if n_supernodes > capable_host_ids.size:
        raise ValueError(
            f"n_supernodes={n_supernodes} exceeds capable pool "
            f"({capable_host_ids.size})")
    sn_host_ids = promote_supernodes(
        topo, capable_host_ids, n_supernodes, rngs.stream("supernodes"))

    # EdgeCloud's extra servers must exist before the latency model is
    # built so they get access latencies too.
    edge_ids = (
        place_edge_servers(topo, rngs.stream("edge-servers"), n_edge_servers)
        if n_edge_servers > 0 else np.empty(0, dtype=int))

    latency = LatencyModel(
        topo.positions_km, rngs.stream("latency"), latency_params,
        metro_ids=topo.metro_id_array())
    # Datacenters sit on carrier-grade links; supernodes are vetted for
    # connection quality (§III-A-1 reliability/stability requirements).
    latency.override_access(dc_ids, DATACENTER_ACCESS_S)
    if edge_ids.size:
        latency.override_access(edge_ids, DATACENTER_ACCESS_S)
    sn_rng = rngs.stream("supernode-access")
    latency.override_access(
        sn_host_ids,
        sn_rng.lognormal(np.log(SUPERNODE_ACCESS_MEDIAN_S), 0.5,
                         size=sn_host_ids.size))
    social = build_social_graph(rngs.stream("social"), n_players, friend_skew)
    schedule = SessionSchedule(rngs.stream("sessions"), daily_play)

    return Population(
        topology=topo,
        latency=latency,
        players=players,
        social=social,
        schedule=schedule,
        datacenter_ids=dc_ids,
        supernode_host_ids=sn_host_ids,
        rngs=rngs,
        edge_server_host_ids=edge_ids,
    )
