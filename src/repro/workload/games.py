"""The five games of the paper's evaluation.

"We defined 5 games, their quality levels and latency requirements are
shown in Figure 2" (§IV) — each game's response latency requirement and
latency tolerance degree come from one row of the quality ladder. Packet
loss tolerance varies by game too (§III, citing Lee et al.: "different
games have different tolerance on packet loss rate and response delay");
the ladder does not list loss tolerances, so we assign them by genre:
fast-paced games (strict latency) tolerate more loss — a lost frame is
replaced 33 ms later anyway — while slow-paced games tolerate less.
The Figure 4 worked example uses loss tolerances in the 0.2–0.6 range,
which brackets our assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streaming.video import QUALITY_LADDER, QualityLevel, get_level


@dataclass(frozen=True, slots=True)
class Game:
    """A game genre with its QoE requirements.

    Attributes
    ----------
    game_id:
        1..5, aligned with quality ladder levels.
    genre:
        Human-readable genre label.
    latency_req_s:
        ``L̃_r`` — response latency requirement.
    latency_tolerance:
        ρ — latency tolerance degree in [0, 1].
    loss_tolerance:
        ``L̃_t`` — fraction of packets the game tolerates losing.
    """

    game_id: int
    genre: str
    latency_req_s: float
    latency_tolerance: float
    loss_tolerance: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_tolerance <= 1.0:
            raise ValueError("loss tolerance must be in [0, 1]")

    @property
    def quality_level(self) -> QualityLevel:
        """The ladder row this game's requirements come from."""
        return get_level(self.game_id)


def _make_games() -> tuple[Game, ...]:
    genres = (
        "first-person shooter",   # strictest latency, most loss-tolerant
        "racing",
        "action RPG",
        "MMORPG",
        "real-time strategy",     # most latency-tolerant, least loss-tolerant
    )
    loss_tolerances = (0.30, 0.25, 0.20, 0.15, 0.10)
    games = []
    for ql, genre, loss in zip(QUALITY_LADDER, genres, loss_tolerances):
        games.append(Game(
            game_id=ql.level,
            genre=genre,
            latency_req_s=ql.latency_req_s,
            latency_tolerance=ql.latency_tolerance,
            loss_tolerance=loss,
        ))
    return tuple(games)


#: The five games, indexed by ``game_id - 1``.
GAMES: tuple[Game, ...] = _make_games()


def game_for_level(game_id: int) -> Game:
    """The game whose requirements come from ladder level ``game_id``."""
    if not 1 <= game_id <= len(GAMES):
        raise ValueError(f"game_id must be in [1, {len(GAMES)}]")
    game = GAMES[game_id - 1]
    assert game.game_id == game_id
    return game
