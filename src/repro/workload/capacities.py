"""Node capacity distribution.

The paper draws node capacities "following Pareto distribution with a mean
of 5 and shape parameter α = 1" (§IV, citing Shen & Xu and others). A
textbook Pareto with α = 1 has an *infinite* mean, so — as in the cited
works — the distribution must be truncated to have one. We truncate at
``cap`` and rescale so the empirical mean hits the target, and document
this as a reproduction decision (DESIGN.md §2).

Capacity is measured in *streaming slots*: the number of concurrent normal
nodes a supernode can serve (the paper's ``C_j``). A node's upload
bandwidth is its slot count times the top-ladder bitrate, so a capacity-5
node can push five 1800 kbps streams.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.video import QUALITY_LADDER

#: Upload bandwidth backing one capacity slot: the top quality bitrate.
SLOT_BANDWIDTH_BPS = QUALITY_LADDER[-1].bitrate_bps


def pareto_capacities(
    rng: np.random.Generator,
    n: int,
    mean: float = 5.0,
    alpha: float = 1.0,
    cap: float = 50.0,
) -> np.ndarray:
    """Draw ``n`` integer capacities from a truncated, rescaled Pareto.

    Parameters
    ----------
    rng:
        Randomness source.
    n:
        Number of draws.
    mean:
        Target mean of the returned capacities.
    alpha:
        Pareto shape (α = 1 in the paper).
    cap:
        Truncation point, in multiples of the Pareto scale, applied
        before rescaling. Controls how heavy the surviving tail is.

    Returns
    -------
    Integer array of capacities, each ≥ 1.
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    if mean <= 1.0:
        raise ValueError("mean must exceed 1 (capacities are >= 1)")
    if alpha <= 0 or cap <= 1.0:
        raise ValueError("alpha must be > 0 and cap > 1")
    if n == 0:
        return np.empty(0, dtype=int)

    # Pareto(alpha) with scale 1: values in [1, inf); truncate at `cap`.
    raw = 1.0 + rng.pareto(alpha, size=n)
    raw = np.minimum(raw, cap)
    # Rescale the part above the floor so the mean lands on target while
    # every node keeps at least one slot.
    theoretical_mean = _truncated_pareto_mean(alpha, cap)
    scale = (mean - 1.0) / max(theoretical_mean - 1.0, 1e-9)
    scaled = 1.0 + (raw - 1.0) * scale
    caps = np.maximum(1, np.rint(scaled)).astype(int)
    return caps


def _truncated_pareto_mean(alpha: float, cap: float) -> float:
    """Mean of a scale-1 Pareto(alpha) truncated (censored) at ``cap``."""
    if abs(alpha - 1.0) < 1e-12:
        # E[min(X, cap)] for pdf x^-2 on [1, inf): 1 + ln(cap)
        return 1.0 + float(np.log(cap))
    # General censored mean: integral_1^cap x f(x) dx + cap * P(X > cap)
    body = alpha / (alpha - 1.0) * (1.0 - cap ** (1.0 - alpha))
    tail = cap ** (1.0 - alpha)
    return body + tail


def upload_bandwidth_bps(capacities: np.ndarray) -> np.ndarray:
    """Upload bandwidth implied by capacity slot counts (``c_j``)."""
    return np.asarray(capacities, dtype=float) * SLOT_BANDWIDTH_BPS
