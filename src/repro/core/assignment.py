"""Supernode assignment protocol (paper §III-A-3).

The cloud keeps a table of supernodes (addresses, coordinates, available
capacity). When a player joins:

1. the cloud returns the player's physically closest supernode candidates
   (coordinates from IP geolocation — here, the true plane coordinates);
2. the player probes the transmission delay to each candidate and removes
   those exceeding its threshold ``L_max`` (derived from its game's
   response latency requirement);
3. it connects to the lowest-delay candidate with available capacity and
   records the rest as backups;
4. if no candidate qualifies, it connects directly to the cloud (its
   nearest datacenter).

Since PR 9 the protocol above is one *strategy* on a pluggable surface
(:class:`AssignmentStrategy`): ``strategy="greedy"`` is the paper's
one-shot placement, byte-identical to the seed behaviour, and
``strategy="distributed"`` is the DRAGON-style negotiated placement in
:mod:`repro.core.orchestration`. :func:`make_assignment` dispatches on
:attr:`AssignmentParams.strategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.network.geometry import pairwise_distances_km
from repro.network.latency import LatencyModel

#: Registered assignment strategies (DESIGN.md §13). ``greedy`` is the
#: paper's §III-A-3 protocol; ``distributed`` the DRAGON-style
#: negotiation in :mod:`repro.core.orchestration`.
STRATEGY_NAMES = ("greedy", "distributed")


@dataclass(frozen=True, slots=True)
class AssignmentParams:
    """Constants of the assignment protocol."""

    #: How many nearby supernode candidates the cloud returns.
    n_candidates: int = 8
    #: Fraction of the game's latency requirement budgeted for the
    #: one-way supernode-to-player path when deriving L_max. The paper
    #: leaves the derivation to the player ("based on the genre of its
    #: game"); a response involves an upstream and a downstream leg, so
    #: half the requirement is the natural budget.
    lmax_fraction: float = 0.5
    #: Backups recorded per player.
    n_backups: int = 2
    #: Apply the L_max probe filter (CloudFog's protocol). EdgeCloud has
    #: no such protocol — players simply use their closest server — so
    #: its assignment sets this to False.
    filter_by_lmax: bool = True
    #: Candidate preference (ablation switch): ``"nearest"`` is the
    #: paper's lowest-probed-delay rule; ``"random"`` picks any
    #: qualified candidate with capacity.
    policy: str = "nearest"
    #: Which :data:`STRATEGY_NAMES` implementation serves this session;
    #: resolved by :func:`make_assignment`.
    strategy: str = "greedy"

    def __post_init__(self) -> None:
        if self.policy not in ("nearest", "random"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.strategy not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"choose from {STRATEGY_NAMES}")
        if self.n_candidates < 1:
            raise ValueError("need at least one candidate")
        if not 0.0 < self.lmax_fraction <= 1.0:
            raise ValueError("lmax_fraction must lie in (0, 1]")
        if self.n_backups < 0:
            raise ValueError("n_backups must be nonnegative")


@dataclass(slots=True)
class AssignmentResult:
    """Outcome of one player's assignment."""

    player_host_id: int
    #: Serving supernode host id, or None when the player fell back to
    #: the cloud.
    supernode_host_id: Optional[int]
    #: Nearest datacenter host id (the fallback and the action-upload
    #: target in all cases).
    datacenter_host_id: int
    #: Backup supernode host ids in preference order.
    backups: tuple[int, ...] = ()

    @property
    def uses_supernode(self) -> bool:
        return self.supernode_host_id is not None


@runtime_checkable
class AssignmentStrategy(Protocol):
    """What a supernode placement strategy must provide.

    The session simulation (:mod:`repro.core.infrastructure`) and the
    failover machinery (:mod:`repro.faults`) only ever talk to this
    surface, so new placement policies are one class + one
    :data:`STRATEGY_NAMES` entry.

    Determinism contract: every method is a pure function of the
    construction arguments and the call history — no wall clock, no
    unseeded randomness — so the same seed always yields the same
    placements (and hence byte-identical trace digests).
    """

    def assign(self, player_host_id: int,
               game_latency_req_s: float) -> AssignmentResult:
        """Place one joining player."""
        ...

    def release(self, player_host_id: int) -> None:
        """Free the player's slot (leave / pre-migration release)."""
        ...

    def mark_failed(self, supernode_host_id: int) -> None:
        """Stop offering a crashed supernode to new assignments."""
        ...

    def mark_recovered(self, supernode_host_id: int) -> None:
        """Re-list a supernode after it came back."""
        ...

    def is_listed(self, supernode_host_id: int) -> bool:
        """Whether the strategy currently offers the supernode."""
        ...

    def available_slots(self, supernode_host_id: int) -> int:
        """Free capacity slots of a supernode."""
        ...

    def nearest_datacenter(self, player_host_id: int) -> int:
        """The cloud fallback target for a player."""
        ...

    def users_per_node(self) -> np.ndarray:
        """Players currently placed on each supernode (strategy order)."""
        ...

    def utilisation_per_node(self) -> np.ndarray:
        """Load/capacity per supernode in [0, 1] (0 for zero-capacity)."""
        ...


class SupernodeAssignment:
    """Stateful assignment service tracking supernode capacities.

    Parameters
    ----------
    latency:
        The latency model (used for candidate probing).
    supernode_host_ids:
        Host ids of deployed supernodes.
    supernode_capacities:
        Slots per supernode, aligned with ``supernode_host_ids``.
    datacenter_host_ids:
        Host ids of the cloud's datacenters.
    params:
        Protocol constants.
    """

    def __init__(
        self,
        latency: LatencyModel,
        supernode_host_ids: np.ndarray,
        supernode_capacities: np.ndarray,
        datacenter_host_ids: np.ndarray,
        params: AssignmentParams | None = None,
        trust=None,
    ):
        self.latency = latency
        self.params = params or AssignmentParams()
        #: Optional :class:`~repro.core.trust.TrustRegistry`; evicted
        #: supernodes are dropped from the candidate table (the cloud's
        #: table only lists supernodes in good standing).
        self.trust = trust
        self.sn_host_ids = np.asarray(supernode_host_ids, dtype=int)
        self.capacities = np.asarray(supernode_capacities, dtype=int).copy()
        if self.sn_host_ids.shape != self.capacities.shape:
            raise ValueError("supernode ids and capacities must align")
        if np.any(self.capacities < 0):
            raise ValueError("capacities must be nonnegative")
        self.dc_host_ids = np.asarray(datacenter_host_ids, dtype=int)
        if self.dc_host_ids.size == 0:
            raise ValueError("need at least one datacenter")
        self.load = np.zeros_like(self.capacities)
        self._sn_index = {int(h): i for i, h in enumerate(self.sn_host_ids)}
        #: player host id -> serving supernode index (for release()).
        self._placements: dict[int, int] = {}
        #: Crashed supernodes (failover): excluded from the candidate
        #: table until :meth:`mark_recovered`. Kept as a plain set so
        #: the no-fault path pays one falsy check.
        self._failed: set[int] = set()
        #: Shuffle source for the "random" ablation policy (seeded so
        #: assignment stays deterministic).
        self._policy_rng = np.random.default_rng(0xC10D)

    # -- queries -------------------------------------------------------------
    def available_slots(self, supernode_host_id: int) -> int:
        """Free capacity slots of a supernode."""
        idx = self._sn_index[int(supernode_host_id)]
        return int(self.capacities[idx] - self.load[idx])

    def nearest_datacenter(self, player_host_id: int) -> int:
        """The datacenter with the lowest one-way latency to the player."""
        lat = self.latency.one_way_matrix_s(
            np.array([player_host_id]), self.dc_host_ids)[0]
        return int(self.dc_host_ids[int(np.argmin(lat))])

    def candidates_for(self, player_host_id: int) -> np.ndarray:
        """Physically closest supernode candidates (the cloud's step 1).

        Supernodes evicted by the trust registry never appear: the
        cloud's table only lists supernodes in good standing.
        """
        pool = self.sn_host_ids
        if self.trust is not None and pool.size:
            pool = np.array([h for h in pool
                             if self.trust.is_active(int(h))], dtype=int)
        if self._failed and pool.size:
            pool = np.array([h for h in pool
                             if int(h) not in self._failed], dtype=int)
        if pool.size == 0:
            return np.empty(0, dtype=int)
        dists = pairwise_distances_km(
            self.latency.positions_km[[player_host_id]],
            self.latency.positions_km[pool])[0]
        k = min(self.params.n_candidates, pool.size)
        order = np.argsort(dists, kind="stable")[:k]
        return pool[order]

    # -- assignment ------------------------------------------------------------
    def assign(
        self,
        player_host_id: int,
        game_latency_req_s: float,
    ) -> AssignmentResult:
        """Run the full §III-A-3 protocol for one joining player."""
        lmax = self.params.lmax_fraction * game_latency_req_s
        dc = self.nearest_datacenter(player_host_id)
        candidates = self.candidates_for(player_host_id)
        if candidates.size == 0:
            return AssignmentResult(player_host_id, None, dc)

        # Step 2: probe transmission delay, filter by L_max.
        delays = self.latency.one_way_matrix_s(
            np.array([player_host_id]), candidates)[0]
        qualified = [
            (float(delays[i]), int(candidates[i]))
            for i in range(candidates.size)
            if not self.params.filter_by_lmax or delays[i] <= lmax
        ]
        if self.params.policy == "random":
            self._policy_rng.shuffle(qualified)
        else:
            qualified.sort()

        # Step 3: lowest delay with available capacity; rest are backups.
        chosen: Optional[int] = None
        backups: list[int] = []
        for _, sn_host in qualified:
            if chosen is None and self.available_slots(sn_host) > 0:
                chosen = sn_host
            elif len(backups) < self.params.n_backups:
                backups.append(sn_host)

        if chosen is None:
            return AssignmentResult(player_host_id, None, dc)

        idx = self._sn_index[chosen]
        self.load[idx] += 1
        self._placements[int(player_host_id)] = idx
        return AssignmentResult(player_host_id, chosen, dc, tuple(backups))

    def release(self, player_host_id: int) -> None:
        """Free the player's slot (player left the system)."""
        idx = self._placements.pop(int(player_host_id), None)
        if idx is not None:
            self.load[idx] -= 1

    # -- failover ------------------------------------------------------------
    def mark_failed(self, supernode_host_id: int) -> None:
        """Drop a crashed supernode from the candidate table.

        Existing placements on the node are kept (reconnecting players
        keep their slot); only *new* assignments avoid it.
        """
        h = int(supernode_host_id)
        if h in self._sn_index:
            self._failed.add(h)

    def mark_recovered(self, supernode_host_id: int) -> None:
        """Re-list a supernode after it came back."""
        self._failed.discard(int(supernode_host_id))

    def is_listed(self, supernode_host_id: int) -> bool:
        """Whether the cloud's table currently offers the supernode."""
        h = int(supernode_host_id)
        return h in self._sn_index and h not in self._failed

    @property
    def supernodes_in_use(self) -> int:
        """Supernodes currently serving at least one player."""
        return int(np.count_nonzero(self.load))

    # -- load introspection (DESIGN.md §13 index inputs) ---------------------
    def users_per_node(self) -> np.ndarray:
        """Players currently placed on each supernode (table order)."""
        return self.load.astype(float).copy()

    def utilisation_per_node(self) -> np.ndarray:
        """Load/capacity per supernode; zero-capacity nodes report 0."""
        caps = self.capacities.astype(float)
        out = np.zeros_like(caps)
        np.divide(self.load.astype(float), caps, out=out, where=caps > 0)
        return out


def make_assignment(
    latency: LatencyModel,
    supernode_host_ids: np.ndarray,
    supernode_capacities: np.ndarray,
    datacenter_host_ids: np.ndarray,
    params: AssignmentParams | None = None,
    trust=None,
) -> AssignmentStrategy:
    """Build the assignment strategy selected by ``params.strategy``."""
    params = params or AssignmentParams()
    if params.strategy == "distributed":
        from repro.core.orchestration import DistributedAssignment

        return DistributedAssignment(
            latency, supernode_host_ids, supernode_capacities,
            datacenter_host_ids, params, trust=trust)
    return SupernodeAssignment(
        latency, supernode_host_ids, supernode_capacities,
        datacenter_host_ids, params, trust=trust)


def assign_players(
    latency: LatencyModel,
    player_host_ids: np.ndarray,
    game_latency_reqs_s: np.ndarray,
    supernode_host_ids: np.ndarray,
    supernode_capacities: np.ndarray,
    datacenter_host_ids: np.ndarray,
    params: AssignmentParams | None = None,
) -> list[AssignmentResult]:
    """Batch-assign a whole player set in order (coverage experiments)."""
    player_host_ids = np.asarray(player_host_ids, dtype=int)
    reqs = np.asarray(game_latency_reqs_s, dtype=float)
    if player_host_ids.shape != reqs.shape:
        raise ValueError("player ids and latency requirements must align")
    service = SupernodeAssignment(
        latency, supernode_host_ids, supernode_capacities,
        datacenter_host_ids, params)
    return [
        service.assign(int(h), float(r))
        for h, r in zip(player_host_ids, reqs)
    ]
