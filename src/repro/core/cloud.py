"""The cloud side: game-state computation and update fan-out.

In CloudFog the cloud's only jobs are (a) computing the authoritative game
state from all players' actions and (b) pushing compact update messages to
each supernode. :class:`CloudCoordinator` does both and accounts the
cloud's egress bandwidth — the quantity Figure 7 compares across systems.

In the plain-cloud and EdgeCloud baselines, a datacenter additionally acts
as a :class:`~repro.core.server.StreamingServer` (it renders and streams
whole game videos), which is how those systems' egress grows with ``N×R``
while CloudFog's grows with ``Λ×m``.
"""

from __future__ import annotations

from repro.sim.engine import Environment

#: Default size of one cloud-to-supernode update message. Game state
#: deltas (object positions, avatar states) are orders of magnitude
#: smaller than rendered video; 2 KB per tick matches MMOG traffic
#: measurements (Chen et al., Computer Networks 2006).
UPDATE_MESSAGE_BYTES = 2000

#: Cloud-side game state computation time per tick.
DEFAULT_COMPUTE_DELAY_S = 0.005


class CloudCoordinator:
    """Central game-state authority and update-message source.

    Parameters
    ----------
    env:
        Simulation environment.
    datacenter_host_ids:
        Hosts acting as the cloud.
    compute_delay_s:
        Game-state computation time per action batch.
    update_message_bytes:
        Λ per supernode per tick, in bytes.
    """

    def __init__(
        self,
        env: Environment,
        datacenter_host_ids,
        compute_delay_s: float = DEFAULT_COMPUTE_DELAY_S,
        update_message_bytes: int = UPDATE_MESSAGE_BYTES,
    ):
        self.env = env
        self.datacenter_host_ids = list(datacenter_host_ids)
        self.compute_delay_s = compute_delay_s
        self.update_message_bytes = update_message_bytes
        #: Cloud egress consumed by update messages to supernodes.
        self.update_bytes_sent = 0.0
        #: Cloud egress consumed by streaming whole videos (baselines and
        #: CloudFog's direct-to-cloud players).
        self.stream_bytes_sent = 0.0
        self.actions_processed = 0

    def action_to_update_delay_s(
        self, upstream_s: float, cloud_to_site_s: float
    ) -> float:
        """l_r — from a player action to its serving site holding the
        update: upload leg + state computation + update push."""
        return upstream_s + self.compute_delay_s + cloud_to_site_s

    def account_update(self, n_messages: int = 1) -> None:
        """Charge egress for update messages to supernodes."""
        self.update_bytes_sent += n_messages * self.update_message_bytes
        self.actions_processed += n_messages

    def account_update_regions(self, counts) -> None:
        """Charge egress for one tick's fan-out, one entry per region.

        ``counts`` maps each supernode/region to the number of update
        messages pushed to it this tick (any iterable of counts, or a
        mapping whose values are counts). The per-tick aggregate form of
        :meth:`account_update`: a million-player tick charges the ledger
        once per *region*, not once per player.
        """
        if hasattr(counts, "values"):
            counts = counts.values()
        total = 0
        for n in counts:
            n = int(n)
            if n < 0:
                raise ValueError("update counts must be nonnegative")
            total += n
        self.update_bytes_sent += total * self.update_message_bytes
        self.actions_processed += total

    def account_stream(self, n_bytes: float) -> None:
        """Charge egress for directly streamed video bytes."""
        self.stream_bytes_sent += n_bytes

    @property
    def total_egress_bytes(self) -> float:
        """All cloud egress so far."""
        return self.update_bytes_sent + self.stream_bytes_sent

    def egress_rate_bps(self, elapsed_s: float) -> float:
        """Average cloud egress rate over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            return 0.0
        return 8.0 * self.total_egress_bytes / elapsed_s
