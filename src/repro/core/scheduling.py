"""Deadline-driven sender buffer scheduling (paper §III-C).

The supernode keeps a single queuing buffer of outgoing segments, ordered
by expected arrival time ``t_a = t_m + L̃_r`` — earliest deadline first.
When a new segment is enqueued, the supernode estimates each queued
segment's response latency

    L_r = l_r + l_s + l_q + l_t + l_p                          (Eq. 12)

with ``l_q = np_i/λ_r`` (preceding bytes over uplink rate), ``l_t =
s_i/λ_r`` and ``l_p`` the average propagation of recently sent packets to
that player (Eq. 13). If ``L_r > L̃_r`` the supernode drops

    D_i = (L_r − L̃_r)/σ                                        packets

from the segment and its predecessors, apportioned by loss tolerance and
an exponential decay factor ``φ_k = e^{−λ t_k}`` of queue waiting time:

    d_k = (L̃_{t_k}·φ_k / Σ_j L̃_{t_j}·φ_j) · D_i                (Eq. 14)

The decay factor shields segments that already waited long (and likely
already gave up packets) from repeated dropping.
"""

from __future__ import annotations

import bisect
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING, Optional

from repro.network.packet import PACKET_PAYLOAD_BYTES, VideoSegment
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


@dataclass(frozen=True, slots=True)
class SchedulingParams:
    """Tuning constants of the deadline-driven scheduler."""

    #: λ — decay rate of the exponential decay factor (paper default 1).
    decay_rate: float = 1.0
    #: σ override — seconds of latency recovered per dropped packet.
    #: None derives it from the uplink rate (one packet's serialization).
    sigma_s: float | None = None
    #: Window (packets) of the per-player propagation estimator (Eq. 13).
    propagation_window: int = 10
    #: Drop-apportioning rule (ablation switch):
    #: ``"tolerance_decay"`` — the paper's Eq. 14 weights L̃_t × φ;
    #: ``"tolerance"``       — loss tolerance only (λ = 0 equivalent);
    #: ``"uniform"``         — equal weights regardless of game.
    drop_weighting: str = "tolerance_decay"
    #: Ablation switch: disable packet dropping entirely (pure EDF
    #: reordering; expiry of hopeless segments still applies).
    enable_dropping: bool = True
    #: Upper bound on the Eq. 14 chain length: drops are apportioned over
    #: at most this many predecessors nearest the trigger segment. Bounds
    #: the per-enqueue work to O(max_drop_chain) under pathological
    #: backlog; real queues stay far shorter (expiry sheds dead weight).
    max_drop_chain: int = 64

    def __post_init__(self) -> None:
        if self.decay_rate < 0:
            raise ValueError("decay rate must be nonnegative")
        if self.sigma_s is not None and self.sigma_s <= 0:
            raise ValueError("sigma must be positive")
        if self.propagation_window < 1:
            raise ValueError("propagation window must be at least 1")
        if self.drop_weighting not in (
                "tolerance_decay", "tolerance", "uniform"):
            raise ValueError(
                f"unknown drop weighting {self.drop_weighting!r}")
        if self.max_drop_chain < 1:
            raise ValueError("max_drop_chain must be at least 1")


class PropagationEstimator:
    """Per-player moving average of observed propagation delays (Eq. 13)."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._samples: dict[int, deque[float]] = {}

    def record(self, player_id: int, propagation_s: float) -> None:
        """Record one observed packet propagation delay."""
        samples = self._samples.get(player_id)
        if samples is None:
            samples = self._samples[player_id] = deque(maxlen=self.window)
        samples.append(propagation_s)

    def estimate(self, player_id: int, default_s: float = 0.0) -> float:
        """l_p estimate for a player (``default_s`` before any sample)."""
        samples = self._samples.get(player_id)
        if not samples:
            return default_s
        return sum(samples) / len(samples)


@dataclass(order=True)
class _QueueEntry:
    deadline_s: float
    seq: int
    segment: VideoSegment = field(compare=False)
    dropped_whole: bool = field(default=False, compare=False)


class DeadlineSenderBuffer:
    """EDF sender queue with tolerance-weighted packet dropping.

    Parameters
    ----------
    uplink_rate_bps:
        λ_r — the supernode's upload rate, used for the l_q and l_t
        estimates.
    server_receive_delay_s:
        l_r — action-to-supernode-update delay (known to the supernode).
        Refreshed per segment via :meth:`enqueue`'s argument if given.
    render_delay_s:
        l_s — the supernode's rendering time (known).
    params:
        Scheduler constants.
    """

    #: Compact the consumed list prefix once it reaches this length *and*
    #: outweighs the live tail (amortized O(1) per dequeue).
    _COMPACT_THRESHOLD = 64

    def __init__(
        self,
        uplink_rate_bps: float,
        server_receive_delay_s: float = 0.0,
        render_delay_s: float = 0.0,
        params: SchedulingParams | None = None,
        obs: "Observability | None" = None,
        component: str = "sched",
    ):
        if uplink_rate_bps <= 0:
            raise ValueError("uplink rate must be positive")
        self.params = params or SchedulingParams()
        self.uplink_rate_bps = uplink_rate_bps
        self.server_receive_delay_s = server_receive_delay_s
        self.render_delay_s = render_delay_s
        self.propagation = PropagationEstimator(self.params.propagation_window)
        # Kept sorted by (deadline, seq) via bisect: the queue is read
        # in order on every enqueue (Eq. 12's l_q and the Eq. 14 chain),
        # so a sorted list beats a heap that would need re-sorting.
        # Consumed entries stay before ``_head`` until compaction, so
        # dequeue is O(1) instead of ``list.pop(0)``'s O(n).
        self._queue: list[_QueueEntry] = []
        self._head = 0
        self._seq = itertools.count()
        self._obs = obs
        self.component = component
        registry = obs.metrics if obs is not None else MetricsRegistry()
        self._c_enqueued = registry.counter("sender.segments_enqueued")
        self._c_dequeued = registry.counter("sender.segments_dequeued")
        self._c_packets_dropped = registry.counter("sender.packets_dropped")
        self._c_segments_fully_dropped = registry.counter(
            "sender.segments_fully_dropped")
        self._g_queue_len = registry.gauge("sender.queue_len")
        # Packet-conservation ledger (the invariant the
        # PacketConservationChecker audits): packets that entered at
        # enqueue == packets handed out at dequeue + packets dropped
        # + packets still pending.
        self._p_in = 0
        self._p_out = 0
        self._p_pend = 0
        # Latest clock value observed through enqueue/dequeue, used to
        # timestamp trace events when the caller omits ``now_s``.
        self._last_now = 0.0

    # -- legacy counter views ------------------------------------------------
    @property
    def enqueued(self) -> int:
        """Segments accepted into the buffer (metrics-registry backed)."""
        return self._c_enqueued.value

    @property
    def dequeued(self) -> int:
        """Segments handed to the sender (metrics-registry backed)."""
        return self._c_dequeued.value

    @property
    def packets_dropped(self) -> int:
        """Packets dropped by Eq. 14 rebalancing and expiry."""
        return self._c_packets_dropped.value

    @property
    def segments_fully_dropped(self) -> int:
        """Segments reduced to zero packets (expired or fully dropped)."""
        return self._c_segments_fully_dropped.value

    def _live_entries(self):
        return islice(self._queue, self._head, None)

    def __len__(self) -> int:
        return sum(1 for e in self._live_entries() if not e.dropped_whole)

    @property
    def sigma_s(self) -> float:
        """σ — latency recovered by dropping one packet from the queue."""
        if self.params.sigma_s is not None:
            return self.params.sigma_s
        return 8.0 * PACKET_PAYLOAD_BYTES / self.uplink_rate_bps

    @property
    def backlog_bytes(self) -> float:
        """Bytes awaiting transmission."""
        return float(sum(
            e.segment.remaining_bytes for e in self._live_entries()
            if not e.dropped_whole))

    # -- queue discipline ---------------------------------------------------
    def enqueue(self, segment: VideoSegment, now_s: float) -> None:
        """Insert ``segment`` in deadline order and rebalance by dropping.

        Runs the §III-C estimate-and-drop pass for the new segment (the
        paper: "after a segment is put in the buffer, the supernode
        estimates the arrival times of this segment and its succeeding
        segments" — with EDF ordering, a new segment only delays segments
        *behind* it, and is itself delayed by those ahead; the pass below
        checks the new segment against its predecessors).
        """
        segment.enqueued_at_s = now_s
        self._last_now = now_s
        entry = _QueueEntry(segment.deadline_s, next(self._seq), segment)
        bisect.insort(self._queue, entry, lo=self._head)
        self._c_enqueued.inc()
        packets = segment.remaining_packets
        self._p_in += packets
        self._p_pend += packets
        self._g_queue_len.set(len(self._queue) - self._head)
        if self._obs is not None:
            self._obs.emit(
                now_s, self.component, "buffer.enqueue",
                disc="edf", player=segment.player_id,
                deadline=segment.deadline_s, packets=packets,
                qlen=len(self._queue) - self._head,
                p_in=self._p_in, p_out=self._p_out,
                p_drop=self._c_packets_dropped.value, p_pend=self._p_pend)
        self._rebalance(entry, now_s)

    def enqueue_batch(self, segments, now_s: float) -> int:
        """Insert many segments, then rebalance each — one trace event.

        The per-tick cloud→supernode fan-out delivers one segment per
        served player in a burst. Inserting the whole burst before
        running the Eq. 14 estimate-and-drop pass (in deadline order,
        earliest first) gives every pass the complete queue picture —
        the same picture sequential enqueues converge to, since a
        segment's estimate only depends on what is *ahead* of it — while
        the ledger and observability cost is one batch event instead of
        one per segment. Returns the number of segments accepted.
        """
        self._last_now = now_s
        entries: list[_QueueEntry] = []
        packets = 0
        for segment in segments:
            segment.enqueued_at_s = now_s
            entry = _QueueEntry(segment.deadline_s, next(self._seq), segment)
            bisect.insort(self._queue, entry, lo=self._head)
            packets += segment.remaining_packets
            entries.append(entry)
        if not entries:
            return 0
        self._c_enqueued.inc(len(entries))
        self._p_in += packets
        self._p_pend += packets
        self._g_queue_len.set(len(self._queue) - self._head)
        if self._obs is not None:
            self._obs.emit(
                now_s, self.component, "buffer.enqueue_batch",
                disc="edf", segments=len(entries), packets=packets,
                qlen=len(self._queue) - self._head,
                p_in=self._p_in, p_out=self._p_out,
                p_drop=self._c_packets_dropped.value, p_pend=self._p_pend)
        for entry in sorted(entries):
            self._rebalance(entry, now_s)
        return len(entries)

    def dequeue(self, now_s: Optional[float] = None, *,
                expire: Optional[bool] = None) -> Optional[VideoSegment]:
        """Pop the earliest-deadline segment, expiring hopeless ones.

        With ``now_s`` given, a segment whose estimated delivery
        (``now + l_t + l_p``) already exceeds its deadline is *expired* —
        all its packets dropped — before being returned: transmitting
        video that arrives after its response deadline wastes uplink that
        on-time segments need. Fully-dropped segments
        (``remaining_packets == 0``) are still returned so the caller can
        account them as lost to the player's QoE stats.

        ``expire=False`` takes the clock (for trace timestamps) without
        the expiry pass — for callers that run their own route-aware
        expiry (see :meth:`note_expired`). Default: expire iff ``now_s``
        is given.
        """
        if expire is None:
            expire = now_s is not None
        if self._head >= len(self._queue):
            return None
        entry = self._queue[self._head]
        self._head += 1
        if (self._head >= self._COMPACT_THRESHOLD
                and self._head * 2 >= len(self._queue)):
            del self._queue[:self._head]
            self._head = 0
        self._c_dequeued.inc()
        if now_s is not None:
            self._last_now = now_s
        segment = entry.segment
        self._p_pend -= segment.remaining_packets
        expired = 0
        if expire and now_s is not None and segment.remaining_packets > 0:
            l_t = 8.0 * segment.remaining_bytes / self.uplink_rate_bps
            l_p = self.propagation.estimate(segment.player_id)
            if now_s + l_t + l_p > segment.deadline_s + 1e-12:
                expired = segment.drop_all()
                self._c_packets_dropped.inc(expired)
                self._c_segments_fully_dropped.inc()
        self._p_out += segment.remaining_packets
        self._g_queue_len.set(len(self._queue) - self._head)
        if self._obs is not None:
            self._obs.emit(
                self._last_now, self.component, "buffer.dequeue",
                disc="edf", player=segment.player_id,
                deadline=entry.deadline_s,
                packets=segment.remaining_packets, expired=expired,
                qlen=len(self._queue) - self._head,
                p_in=self._p_in, p_out=self._p_out,
                p_drop=self._c_packets_dropped.value, p_pend=self._p_pend)
        return segment

    def peek(self) -> Optional[VideoSegment]:
        """Earliest-deadline live segment, without removing it."""
        for entry in self._live_entries():
            if not entry.dropped_whole:
                return entry.segment
        return None

    def iter_pending(self):
        """Queued segments in send (deadline) order."""
        return (e.segment for e in self._live_entries()
                if not e.dropped_whole)

    def note_expired(self, segment: VideoSegment, n_packets: int,
                     now_s: float | None = None) -> None:
        """Account packets a caller expired *after* dequeueing.

        The server expires hopeless segments post-dequeue (it knows the
        full route); this moves those packets from the delivered to the
        dropped column so the conservation ledger and the public counters
        stay truthful.
        """
        if n_packets <= 0:
            return
        if now_s is not None:
            self._last_now = now_s
        self._c_packets_dropped.inc(n_packets)
        self._c_segments_fully_dropped.inc()
        self._p_out -= n_packets
        if self._obs is not None:
            self._obs.emit(
                self._last_now, self.component, "buffer.drop",
                disc="edf", reason="post_dequeue", packets=n_packets,
                player=segment.player_id,
                p_in=self._p_in, p_out=self._p_out,
                p_drop=self._c_packets_dropped.value, p_pend=self._p_pend)

    def flush(self, now_s: float) -> int:
        """Drop every queued segment (the serving host crashed).

        Live packets move from pending to dropped in one step; already
        fully-dropped entries are simply discarded. One ``buffer.flush``
        event carries the updated conservation ledger — the EDF-order
        checker treats it as a queue reset, so post-recovery dequeues
        are not compared against deadlines that died in the crash.
        Returns the number of live segments lost.
        """
        self._last_now = now_s
        lost = 0
        dropped_packets = 0
        had_entries = self._head < len(self._queue)
        for entry in self._live_entries():
            if entry.dropped_whole:
                continue
            dropped_packets += entry.segment.drop_all()
            entry.dropped_whole = True
            lost += 1
        self._queue.clear()
        self._head = 0
        if lost:
            self._c_packets_dropped.inc(dropped_packets)
            self._c_segments_fully_dropped.inc(lost)
            self._p_pend -= dropped_packets
        self._g_queue_len.set(0)
        if self._obs is not None and had_entries:
            self._obs.emit(
                now_s, self.component, "buffer.flush",
                disc="edf", segments=lost, packets=dropped_packets,
                qlen=0, p_in=self._p_in, p_out=self._p_out,
                p_drop=self._c_packets_dropped.value, p_pend=self._p_pend)
        return lost

    def preceding_bytes(self, segment: VideoSegment) -> float:
        """np_i — bytes of segments ahead of ``segment`` in send order."""
        total = 0.0
        for seg in self.iter_pending():
            if seg is segment:
                return total
            total += seg.remaining_bytes
        raise ValueError("segment is not in the buffer")

    # -- latency estimation (Eq. 12) ------------------------------------------
    def estimate_response_latency_s(
        self, segment: VideoSegment, now_s: float
    ) -> float:
        """L_r of Eq. 12 for a queued segment.

        l_r (action to update received) is reconstructed from the
        segment's own timeline: creation time − action time, plus the
        render delay already incurred.
        """
        l_r = max(0.0, segment.created_at_s - segment.action_time_s)
        l_s = self.render_delay_s
        l_q = self.preceding_bytes(segment) * 8.0 / self.uplink_rate_bps
        l_t = segment.remaining_bytes * 8.0 / self.uplink_rate_bps
        l_p = self.propagation.estimate(segment.player_id)
        waited = max(0.0, now_s - segment.enqueued_at_s)
        return l_r + l_s + waited + l_q + l_t + l_p

    def estimated_arrival_s(self, segment: VideoSegment, now_s: float) -> float:
        """Predicted arrival timestamp of ``segment``."""
        l_q = self.preceding_bytes(segment) * 8.0 / self.uplink_rate_bps
        l_t = segment.remaining_bytes * 8.0 / self.uplink_rate_bps
        l_p = self.propagation.estimate(segment.player_id)
        return now_s + l_q + l_t + l_p

    # -- dropping (Eq. 14) -----------------------------------------------------
    def _rebalance(self, entry: _QueueEntry, now_s: float) -> None:
        """Drop packets so the new segment can meet its deadline.

        Dropping exists "in order to meet latency requirement" (§III-C);
        when even the maximum tolerable drop across the whole chain
        cannot save the new segment, sacrificing its predecessors'
        packets buys nothing — the hopeless segment is expired instead.
        """
        segment = entry.segment
        if not self.params.enable_dropping:
            return
        overshoot = (self.estimated_arrival_s(segment, now_s)
                     - segment.deadline_s)
        if overshoot <= 0:
            return
        needed = math.ceil(overshoot / self.sigma_s)
        self._drop_packets(segment, needed, now_s)

    def _drop_packets(
        self, trigger: VideoSegment, n_packets: int, now_s: float
    ) -> int:
        """Apportion ``n_packets`` drops over the trigger's predecessors.

        Weights are ``L̃_t_k × φ_k`` (Eq. 14) over the trigger segment and
        everything ahead of it. Each segment's share is bounded by its
        loss tolerance; leftover need is re-apportioned over segments with
        remaining headroom so the total drop lands as close to ``D_i`` as
        tolerances permit.
        """
        chain: list[VideoSegment] = []
        for seg in self.iter_pending():
            chain.append(seg)
            if seg is trigger:
                break
        # Bound the apportioning work: keep the trigger plus its nearest
        # predecessors (the ones whose drops it needs most urgently).
        limit = self.params.max_drop_chain
        if len(chain) > limit:
            chain = chain[-limit:]
        total_dropped = 0
        remaining = n_packets
        # Iterative apportioning: 2 passes usually saturate.
        for _ in range(4):
            if remaining <= 0:
                break
            weights = []
            for seg in chain:
                if seg.max_droppable <= 0:
                    weights.append(0.0)
                    continue
                mode = self.params.drop_weighting
                if mode == "uniform":
                    weights.append(1.0)
                elif mode == "tolerance":
                    weights.append(seg.loss_tolerance)
                else:  # the paper's Eq. 14: L̃_t × φ, φ = e^{-λt}
                    waited = max(0.0, now_s - seg.enqueued_at_s)
                    phi = math.exp(-self.params.decay_rate * waited)
                    weights.append(seg.loss_tolerance * phi)
            weight_sum = sum(weights)
            if weight_sum <= 0:
                break
            progressed = False
            for seg, w in zip(chain, weights):
                if w <= 0:
                    continue
                share = math.ceil(remaining * w / weight_sum)
                dropped = seg.drop(min(share, remaining))
                if dropped:
                    progressed = True
                    total_dropped += dropped
                    remaining -= dropped
                    if remaining <= 0:
                        break
            if not progressed:
                break
        self._c_packets_dropped.inc(total_dropped)
        self._p_pend -= total_dropped
        if total_dropped and self._obs is not None:
            self._obs.emit(
                now_s, self.component, "buffer.drop",
                disc="edf", reason="rebalance", packets=total_dropped,
                player=trigger.player_id,
                p_in=self._p_in, p_out=self._p_out,
                p_drop=self._c_packets_dropped.value, p_pend=self._p_pend)
        # Segments reduced to nothing will never reach the player.
        for seg in chain:
            if seg.remaining_packets == 0:
                self._mark_whole_drop(seg)
        return total_dropped

    def _mark_whole_drop(self, segment: VideoSegment) -> None:
        for entry in self._live_entries():
            if entry.segment is segment and not entry.dropped_whole:
                entry.dropped_whole = True
                self._c_segments_fully_dropped.inc()
                return
