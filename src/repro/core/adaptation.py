"""Receiver-driven encoding rate adaptation (paper §III-B).

The player watches its own buffer and tells the supernode when to move the
encoding bitrate up or down the quality ladder:

* buffered video size:  ``s(t_k) = s(t_{k-1}) + (t_k − t_{k-1})(d − b_p)``
  (Eq. 7) — maintained by :class:`~repro.streaming.playback.PlaybackBuffer`;
* buffered segments:    ``r = s(t_k)/τ``                        (Eq. 8);
* adjust **up** when    ``r > (1 + β)/ρ``                (Eqs. 9–10 + ρ);
* adjust **down** when  ``r < θ/ρ``                       (Eq. 11 + ρ);
* β = max relative bitrate step between adjacent ladder levels (Eq. 10),
  which guarantees the buffered video still covers playback after the
  bitrate increase;
* ρ ∈ [0, 1] is the game's latency tolerance degree: latency-sensitive
  games (low ρ) get *higher* thresholds, i.e. they keep more slack
  buffered before daring a bitrate change;
* hysteresis: "the video bitrate is adjusted only when all results satisfy
  Formula (9) or Formula (11)" over a number of consecutive estimations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.streaming.video import max_adjust_up_factor

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class Adjustment(Enum):
    """Decision of one rate-adaptation evaluation."""

    NONE = 0
    UP = 1
    DOWN = -1


@dataclass(frozen=True, slots=True)
class AdaptationParams:
    """Tuning constants of the adaptation strategy."""

    #: θ — adjust-down threshold (paper default 0.5).
    theta: float = 0.5
    #: Number of consecutive agreeing estimations before adjusting down.
    hysteresis: int = 3
    #: Consecutive agreeing estimations before adjusting *up*. Raising
    #: quality re-saturates a congested path, so the up direction is
    #: deliberately slower (additive-increase flavour) to avoid level
    #: oscillation under sustained overload.
    up_hysteresis: int = 10
    #: After a deadline miss, suppress adjust-up for this many
    #: estimations: raising quality right after escaping congestion
    #: re-enters it, and the resulting level oscillation costs far more
    #: continuity than the briefly lower quality.
    miss_up_cooldown: int = 30
    #: An adjust-up is a *probe*: if deadlines start missing within this
    #: many estimations of the probe, the probe failed.
    probe_window: int = 20
    #: Up-suppression after a failed probe. Long: the congestion that
    #: rejected the probe is structural (too many players on the
    #: supernode), not a transient.
    failed_probe_penalty: int = 300
    #: Ablation switch: apply the per-game ρ scaling to the thresholds
    #: (paper §III-B). With False, every game uses the ρ = 1 thresholds.
    rho_scaling: bool = True
    #: β override; None computes Eq. 10 from the quality ladder.
    beta: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.theta <= 1.0:
            raise ValueError("theta must lie in (0, 1] (Eq. 11: θ ≤ 1)")
        if self.hysteresis < 1 or self.up_hysteresis < 1:
            raise ValueError("hysteresis must be at least 1")
        if self.miss_up_cooldown < 0:
            raise ValueError("cooldown must be nonnegative")
        if self.beta is not None and self.beta <= 0:
            raise ValueError("beta must be positive")


class RateAdaptationController:
    """Per-player adaptation state machine.

    Parameters
    ----------
    latency_tolerance:
        ρ of the player's game.
    params:
        Strategy constants.

    Usage: call :meth:`observe` with the current buffered-segment count
    ``r`` at every estimation instant (the reproduction estimates at
    segment arrivals); it returns the adjustment to request from the
    sender, already debounced by the hysteresis rule.
    """

    def __init__(
        self,
        latency_tolerance: float,
        params: AdaptationParams | None = None,
        obs: "Observability | None" = None,
        component: str = "adapt",
    ):
        if not 0.0 < latency_tolerance <= 1.0:
            raise ValueError("latency tolerance ρ must lie in (0, 1]")
        self.params = params or AdaptationParams()
        self.rho = latency_tolerance if self.params.rho_scaling else 1.0
        beta = self.params.beta
        self.beta = max_adjust_up_factor() if beta is None else beta
        self._up_streak = 0
        self._down_streak = 0
        self._miss_streak = 0
        self._up_cooldown = 0
        self._estimates = 0
        self._probe_deadline = -1
        self._obs = obs
        self.component = component
        registry = obs.metrics if obs is not None else MetricsRegistry()
        self._c_up = registry.counter("adapt.adjustments_up")
        self._c_down = registry.counter("adapt.adjustments_down")

    @property
    def adjustments_up(self) -> int:
        """Adjust-up decisions fired (metrics-registry backed)."""
        return self._c_up.value

    @property
    def adjustments_down(self) -> int:
        """Adjust-down decisions fired (metrics-registry backed)."""
        return self._c_down.value

    @property
    def up_threshold(self) -> float:
        """r above which an adjust-up is indicated: (1 + β)/ρ."""
        return (1.0 + self.beta) / self.rho

    @property
    def down_threshold(self) -> float:
        """r below which an adjust-down is indicated: θ/ρ."""
        return self.params.theta / self.rho

    def observe(self, r: float, deadline_missed: bool = False,
                now_s: float | None = None) -> Adjustment:
        """Feed one estimation of the buffered-segment count ``r``.

        Parameters
        ----------
        r:
            Buffered-segment count (Eq. 8) at this estimation instant.
        deadline_missed:
            Whether the segment that prompted this estimation arrived
            past its latency requirement. The buffer signal alone cannot
            see deadline misses when throughput keeps up but the path is
            simply too slow; the paper's stated goal — "a game video can
            reduce video quality in order to reach its latency
            requirement" (§III-B) — needs this second trigger.
        now_s:
            Sim time of the estimation, used only to timestamp trace
            events (decisions are not traced when omitted).

        Returns the debounced adjustment decision. Streak counters reset
        after a decision fires (a fresh run of agreeing estimates is
        required for the next adjustment) and whenever the estimate
        leaves the triggering region.
        """
        if r < 0:
            raise ValueError("buffered segment count cannot be negative")
        self._estimates += 1
        if deadline_missed:
            self._miss_streak += 1
            if self._estimates <= self._probe_deadline:
                # The recent adjust-up probe failed: back off for long.
                self._up_cooldown = self.params.failed_probe_penalty
                self._probe_deadline = -1
            else:
                self._up_cooldown = max(
                    self._up_cooldown, self.params.miss_up_cooldown)
        else:
            self._miss_streak = 0
            if self._up_cooldown > 0:
                self._up_cooldown -= 1

        if (r > self.up_threshold and not deadline_missed
                and self._up_cooldown == 0):
            self._up_streak += 1
            self._down_streak = 0
        elif r < self.down_threshold:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0

        if self._miss_streak >= self.params.hysteresis:
            self._miss_streak = 0
            self._down_streak = 0
            self._c_down.inc()
            self._trace_decision("down", r, now_s)
            return Adjustment.DOWN
        if self._up_streak >= self.params.up_hysteresis:
            self._up_streak = 0
            self._c_up.inc()
            self._probe_deadline = self._estimates + self.params.probe_window
            self._trace_decision("up", r, now_s)
            return Adjustment.UP
        if self._down_streak >= self.params.hysteresis:
            self._down_streak = 0
            self._c_down.inc()
            self._trace_decision("down", r, now_s)
            return Adjustment.DOWN
        return Adjustment.NONE

    def _trace_decision(self, direction: str, r: float,
                        now_s: float | None) -> None:
        if self._obs is not None and now_s is not None:
            self._obs.emit(now_s, self.component, "adapt.decision",
                           direction=direction, r=r)

    def reset(self) -> None:
        """Clear streaks (e.g. after a level change took effect)."""
        self._up_streak = 0
        self._down_streak = 0
        self._miss_streak = 0
