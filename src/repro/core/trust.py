"""Supernode trust: credentials, reputation, eviction.

The paper requires supernodes to be *reliable* — "malicious supernodes
may distribute spam or virus that may degrade player experience" — and
defers the mechanism to future work ("we will study the security issues
such as dealing with malicious supernodes", §V). This module implements
the natural design the paper sketches:

* **credentialing** (§III-A-1): contributors present credentials; the
  provider verifies them and contracts. Modelled as a prior trust score.
* **reputation**: players report each served session as clean or
  tampered; the provider maintains a Beta-distribution reputation per
  supernode (the standard approach in P2P trust systems, cf. the paper's
  grid-trust citation [10]).
* **eviction**: a supernode whose posterior probability of being honest
  falls below a threshold is evicted from the supernode table and its
  players reassigned.

`repro.experiments.security` stress-tests the mechanism with a planted
fraction of malicious supernodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True, slots=True)
class TrustParams:
    """Constants of the reputation system."""

    #: Beta prior for a credentialed contributor (optimistic but not
    #: blind: ~ 9 clean sessions of prior mass).
    prior_alpha: float = 9.0
    prior_beta: float = 1.0
    #: Evict when P(honest) — the Beta mean — falls below this.
    eviction_threshold: float = 0.6
    #: Fraction of tampered sessions a player actually notices/reports.
    detection_rate: float = 0.7
    #: False-report rate on clean sessions (griefing, confusion).
    false_report_rate: float = 0.02
    #: Weight of one tamper report relative to one clean report.
    #: Tampering evidence must outweigh the clean reports an attacker
    #: accrues from its undetected sessions, or a stealthy node's
    #: reputation asymptotes above the threshold and it is never evicted.
    tamper_report_weight: float = 5.0

    def __post_init__(self) -> None:
        if self.prior_alpha <= 0 or self.prior_beta <= 0:
            raise ValueError("Beta prior must be positive")
        if not 0.0 < self.eviction_threshold < 1.0:
            raise ValueError("eviction threshold must lie in (0, 1)")
        for rate in (self.detection_rate, self.false_report_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must lie in [0, 1]")
        if self.tamper_report_weight < 1.0:
            raise ValueError("tamper weight must be at least 1")


@dataclass(slots=True)
class SupernodeRecord:
    """The provider's book on one supernode."""

    supernode_id: int
    credentialed: bool = True
    clean_reports: float = 0.0
    tamper_reports: float = 0.0
    evicted: bool = False

    def reputation(self, params: TrustParams) -> float:
        """Posterior mean of P(honest) under the weighted Beta model."""
        alpha = params.prior_alpha + self.clean_reports
        beta = (params.prior_beta
                + params.tamper_report_weight * self.tamper_reports)
        return alpha / (alpha + beta)


class TrustRegistry:
    """The provider's reputation ledger over deployed supernodes."""

    def __init__(self, params: TrustParams | None = None):
        self.params = params or TrustParams()
        self._records: dict[int, SupernodeRecord] = {}
        self.evictions = 0

    def register(self, supernode_id: int,
                 credentialed: bool = True) -> SupernodeRecord:
        """Admit a supernode (§III-A-1 contracting step).

        Uncredentialed contributors are rejected outright — the paper's
        verification requirement.
        """
        if not credentialed:
            raise PermissionError(
                "supernode contributors must present credentials")
        record = SupernodeRecord(supernode_id, credentialed=True)
        self._records[supernode_id] = record
        return record

    def get(self, supernode_id: int) -> Optional[SupernodeRecord]:
        return self._records.get(supernode_id)

    def is_active(self, supernode_id: int) -> bool:
        record = self._records.get(supernode_id)
        return record is not None and not record.evicted

    def active_ids(self) -> list[int]:
        return sorted(sid for sid, r in self._records.items()
                      if not r.evicted)

    # -- reporting ------------------------------------------------------------
    def report(self, supernode_id: int, tampered: bool) -> bool:
        """File one player report; returns True if this triggers eviction."""
        record = self._records.get(supernode_id)
        if record is None or record.evicted:
            return False
        if tampered:
            record.tamper_reports += 1.0
        else:
            record.clean_reports += 1.0
        if record.reputation(self.params) < self.params.eviction_threshold:
            record.evicted = True
            self.evictions += 1
            return True
        return False

    def observe_session(
        self,
        supernode_id: int,
        was_tampered: bool,
        rng: np.random.Generator,
    ) -> bool:
        """One served session's noisy report, then the eviction check.

        A tampered session is reported with ``detection_rate``; a clean
        session draws a false report with ``false_report_rate``.
        """
        if was_tampered:
            reported = rng.uniform() < self.params.detection_rate
        else:
            reported = rng.uniform() < self.params.false_report_rate
        return self.report(supernode_id, tampered=reported)

    # -- summaries ---------------------------------------------------------------
    def reputations(self) -> dict[int, float]:
        """Current reputation of every registered supernode."""
        return {sid: r.reputation(self.params)
                for sid, r in self._records.items()}

    def sessions_until_eviction(self, tamper_rate: float = 1.0) -> float:
        """Expected sessions a malicious supernode survives.

        Closed-form from the weighted Beta update in expectation: per
        served session the attacker accrues clean mass
        ``c = (1−t)(1−f) + t(1−d)`` and weighted tamper mass ``w·r`` with
        ``r = t·d + (1−t)·f``. Eviction happens when

            (α + c·k) / (α + c·k + β + w·r·k) < θ

        which solves to ``k > (α(1−θ) − θβ) / (θ·w·r − (1−θ)·c)``.
        Returns ``inf`` when the attacker's asymptotic reputation sits
        above the threshold (it is never evicted in expectation).
        """
        if not 0.0 < tamper_rate <= 1.0:
            raise ValueError("tamper_rate must lie in (0, 1]")
        p = self.params
        t, d, f = tamper_rate, p.detection_rate, p.false_report_rate
        clean_per_session = (1 - t) * (1 - f) + t * (1 - d)
        tamper_per_session = t * d + (1 - t) * f
        theta = p.eviction_threshold
        denom = (theta * p.tamper_report_weight * tamper_per_session
                 - (1 - theta) * clean_per_session)
        if denom <= 0:
            return float("inf")
        needed = p.prior_alpha * (1 - theta) - theta * p.prior_beta
        return max(1.0, needed / denom + 1.0)
