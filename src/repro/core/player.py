"""Player endpoint: playback, QoE accounting, adaptation feedback.

A :class:`PlayerEndpoint` owns the receive side of one gaming session: the
playback buffer (continuity and satisfaction accounting), the
receiver-driven rate adaptation controller, and the feedback channel back
to the serving server's encoder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.adaptation import (
    AdaptationParams,
    Adjustment,
    RateAdaptationController,
)
from repro.core.server import StreamingServer
from repro.network.packet import VideoSegment
from repro.sim.engine import Environment
from repro.streaming.playback import PlaybackBuffer
from repro.streaming.video import SEGMENT_DURATION_S
from repro.workload.games import Game

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class PlayerEndpoint:
    """The receive side of one player's session.

    Parameters
    ----------
    env:
        Simulation environment.
    player_id:
        Player identity (also the encoder key at the server).
    game:
        The game being played (latency requirement, tolerances).
    server:
        The serving :class:`StreamingServer`.
    feedback_delay_s:
        One-way latency of the player-to-server feedback path.
    use_adaptation:
        Enable the §III-B receiver-driven rate adaptation.
    adaptation_params:
        Constants for the adaptation controller.
    """

    def __init__(
        self,
        env: Environment,
        player_id: int,
        game: Game,
        server: StreamingServer,
        feedback_delay_s: float,
        use_adaptation: bool = False,
        adaptation_params: AdaptationParams | None = None,
        stats_after_s: float = 0.0,
        obs: "Observability | None" = None,
    ):
        self.env = env
        self.player_id = player_id
        self.game = game
        self.server = server
        self.feedback_delay_s = feedback_delay_s
        #: Warmup horizon: segments for actions before this time drive
        #: adaptation but are excluded from the QoE counters, so the
        #: reported steady state is not polluted by the convergence
        #: transient (the paper's sessions run for hours).
        self.stats_after_s = stats_after_s
        self._obs = obs
        self.component = f"player:{player_id}"
        self.playback = PlaybackBuffer(
            segment_duration_s=SEGMENT_DURATION_S,
            obs=obs, component=self.component)
        self.controller: Optional[RateAdaptationController] = None
        if use_adaptation:
            self.controller = RateAdaptationController(
                game.latency_tolerance, adaptation_params,
                obs=obs, component=self.component)
        #: Pending feedback in flight (debounces duplicate requests).
        self._feedback_pending = False

    # -- delivery path ---------------------------------------------------------
    def deliver(self, segment: VideoSegment, now_s: float) -> None:
        """Receive one segment from the server (the server's callback)."""
        in_window = segment.action_time_s >= self.stats_after_s
        if segment.remaining_packets == 0:
            if in_window:
                self.playback.on_segment_lost(segment, now_s)
            return
        if in_window:
            self.playback.on_segment_arrival(segment, now_s)
        if self.controller is not None:
            r = self.playback.buffered_segments(now_s)
            missed = now_s > segment.deadline_s + 1e-12
            decision = self.controller.observe(
                r, deadline_missed=missed, now_s=now_s)
            if decision is not Adjustment.NONE:
                self._send_feedback(decision)

    def _send_feedback(self, decision: Adjustment) -> None:
        """Ship an encoder adjustment request upstream (one-way delay)."""
        if self._feedback_pending:
            return
        self._feedback_pending = True

        def apply(_ev, decision=decision):
            self._feedback_pending = False
            encoder = self.server.encoders.get(self.player_id)
            if encoder is None:
                return
            if decision is Adjustment.UP:
                encoder.adjust_up()
            else:
                encoder.adjust_down()
            if self._obs is not None:
                self._obs.emit(
                    self.env.now, self.component, "encoder.level",
                    level=encoder.level, direction=(
                        "up" if decision is Adjustment.UP else "down"))
            if self.controller is not None:
                self.controller.reset()

        ev = self.env.timeout(self.feedback_delay_s)
        ev.callbacks.append(apply)

    # -- reporting ---------------------------------------------------------------
    @property
    def stats(self):
        """The playback QoE counters."""
        return self.playback.stats

    def is_satisfied(self) -> bool:
        """Paper §IV: within loss tolerance and ≥95 % of received
        packets inside the latency requirement."""
        return self.playback.stats.is_satisfied(
            loss_tolerance=self.game.loss_tolerance)
