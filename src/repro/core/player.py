"""Player endpoint: playback, QoE accounting, adaptation feedback.

A :class:`PlayerEndpoint` owns the receive side of one gaming session: the
playback buffer (continuity and satisfaction accounting), the
receiver-driven rate adaptation controller, and the feedback channel back
to the serving server's encoder.

For population-scale runs the per-object endpoint is replaced by
:class:`PlayerCohort` — a structure-of-arrays batch holding the *same*
per-player state (playback position, buffer level, quality tier) for
every player at once, advanced in vectorised ticks. A player whose
trajectory diverges from the batch (crash, failover, adaptation switch)
is *materialised* into a :class:`MaterialisedPlayer`: an individual view
driven by its own simulation events, but reading and writing the very
same arrays through the very same advance kernel — which is what makes
cohort and per-player execution byte-identical (DESIGN.md §11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.adaptation import (
    AdaptationParams,
    Adjustment,
    RateAdaptationController,
)
from repro.core.server import StreamingServer
from repro.network.latency import RegionalLatency
from repro.network.packet import VideoSegment
from repro.sim.engine import Environment
from repro.sim.rng import counter_u01, counter_u01_one
from repro.streaming.playback import PlaybackBuffer
from repro.streaming.video import SEGMENT_DURATION_S
from repro.workload.games import Game

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class PlayerEndpoint:
    """The receive side of one player's session.

    Parameters
    ----------
    env:
        Simulation environment.
    player_id:
        Player identity (also the encoder key at the server).
    game:
        The game being played (latency requirement, tolerances).
    server:
        The serving :class:`StreamingServer`.
    feedback_delay_s:
        One-way latency of the player-to-server feedback path.
    use_adaptation:
        Enable the §III-B receiver-driven rate adaptation.
    adaptation_params:
        Constants for the adaptation controller.
    """

    def __init__(
        self,
        env: Environment,
        player_id: int,
        game: Game,
        server: StreamingServer,
        feedback_delay_s: float,
        use_adaptation: bool = False,
        adaptation_params: AdaptationParams | None = None,
        stats_after_s: float = 0.0,
        obs: "Observability | None" = None,
    ):
        self.env = env
        self.player_id = player_id
        self.game = game
        self.server = server
        self.feedback_delay_s = feedback_delay_s
        #: Warmup horizon: segments for actions before this time drive
        #: adaptation but are excluded from the QoE counters, so the
        #: reported steady state is not polluted by the convergence
        #: transient (the paper's sessions run for hours).
        self.stats_after_s = stats_after_s
        self._obs = obs
        self.component = f"player:{player_id}"
        self.playback = PlaybackBuffer(
            segment_duration_s=SEGMENT_DURATION_S,
            obs=obs, component=self.component)
        self.controller: Optional[RateAdaptationController] = None
        if use_adaptation:
            self.controller = RateAdaptationController(
                game.latency_tolerance, adaptation_params,
                obs=obs, component=self.component)
        #: Pending feedback in flight (debounces duplicate requests).
        self._feedback_pending = False

    # -- delivery path ---------------------------------------------------------
    def deliver(self, segment: VideoSegment, now_s: float) -> None:
        """Receive one segment from the server (the server's callback)."""
        in_window = segment.action_time_s >= self.stats_after_s
        if segment.remaining_packets == 0:
            if in_window:
                self.playback.on_segment_lost(segment, now_s)
            return
        if in_window:
            self.playback.on_segment_arrival(segment, now_s)
        if self.controller is not None:
            r = self.playback.buffered_segments(now_s)
            missed = now_s > segment.deadline_s + 1e-12
            decision = self.controller.observe(
                r, deadline_missed=missed, now_s=now_s)
            if decision is not Adjustment.NONE:
                self._send_feedback(decision)

    def _send_feedback(self, decision: Adjustment) -> None:
        """Ship an encoder adjustment request upstream (one-way delay)."""
        if self._feedback_pending:
            return
        self._feedback_pending = True

        def apply(_ev, decision=decision):
            self._feedback_pending = False
            encoder = self.server.encoders.get(self.player_id)
            if encoder is None:
                return
            if decision is Adjustment.UP:
                encoder.adjust_up()
            else:
                encoder.adjust_down()
            if self._obs is not None:
                self._obs.emit(
                    self.env.now, self.component, "encoder.level",
                    level=encoder.level, direction=(
                        "up" if decision is Adjustment.UP else "down"))
            if self.controller is not None:
                self.controller.reset()

        ev = self.env.timeout(self.feedback_delay_s)
        ev.callbacks.append(apply)

    # -- reporting ---------------------------------------------------------------
    @property
    def stats(self):
        """The playback QoE counters."""
        return self.playback.stats

    def is_satisfied(self) -> bool:
        """Paper §IV: within loss tolerance and ≥95 % of received
        packets inside the latency requirement."""
        return self.playback.stats.is_satisfied(
            loss_tolerance=self.game.loss_tolerance)


# ---------------------------------------------------------------------------
# Cohort execution (population scale)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CohortParams:
    """Constants of the cohort tick dynamics (DESIGN.md §11).

    Every per-tick computation built on these sticks to IEEE-exact
    elementwise operations (``+ - * / min max`` and comparisons): no
    transcendentals, no reductions inside the advance kernel, so a
    vectorised batch advance and a one-player advance produce
    bit-identical state.
    """

    #: Simulation tick — one representative frame group per tick.
    tick_s: float = 0.5
    #: Delivered video per on-time tick, as a multiple of ``tick_s``
    #: (>1 so buffers can recover after a loss).
    fill_rate: float = 1.25
    #: Initial playback buffer level.
    init_buffer_s: float = 2.0
    #: Playback buffer cap.
    max_buffer_s: float = 8.0
    #: Buffer level above which an on-time player upgrades its tier.
    up_buffer_s: float = 6.0
    #: Quality tiers ``0 .. n_tiers-1``; everyone starts at the top.
    n_tiers: int = 5
    #: Minimum ticks between two tier switches of one player.
    switch_cooldown_ticks: int = 16
    #: Frame deadline at the top tier.
    frame_deadline_s: float = 0.1
    #: Deadline slack added per tier below the top (lower bitrate is
    #: easier to deliver — the §III-B adaptation escape valve). At the
    #: bottom tier the deadline exceeds the worst access latency the
    #: scale sampler produces, so every player can stabilise.
    tier_deadline_step_s: float = 0.05
    #: Extra headroom an upgrade must clear below the next tier's
    #: deadline. At the full jitter amplitude (2 × jitter scale) a
    #: player whose base latency rides a deadline boundary can never
    #: up-switch into a tier it will occasionally miss, so nobody
    #: oscillates between tiers on jitter noise — the property that
    #: keeps the materialised set small and re-absorbable.
    up_margin_s: float = 0.004
    #: Per-player crash probability per tick.
    crash_rate_per_tick: float = 2e-5
    #: Scale of the per-(player, tick) uniform jitter; the draw is
    #: ``2·scale·u`` so its mean matches an exponential of this scale.
    jitter_scale_s: float = 0.002
    #: Added latency per unit of overload at the serving region.
    congestion_gain_s: float = 0.02
    #: Serving capacity per region, relative to its home population.
    capacity_factor: float = 1.25
    #: Latency histogram bin width and bin count (the last bin absorbs
    #: the tail). 512 × 1 ms covers every sane frame latency.
    latency_bin_s: float = 0.001
    n_latency_bins: int = 512
    #: A materialised player that goes this many ticks without a new
    #: divergence folds back into the cohort (cohort mode only). Two
    #: cooldown periods: long enough to see any residual instability,
    #: short enough that a one-off divergence stays cheap.
    reabsorb_ticks: int = 32
    #: Loss tolerance for the §IV satisfaction criterion.
    loss_tolerance: float = 0.2

    def __post_init__(self) -> None:
        if self.tick_s <= 0 or self.fill_rate <= 0:
            raise ValueError("tick_s and fill_rate must be positive")
        if self.n_tiers < 1 or self.n_latency_bins < 2:
            raise ValueError("need at least 1 tier and 2 latency bins")
        if not 0.0 <= self.crash_rate_per_tick <= 1.0:
            raise ValueError("crash_rate_per_tick must be a probability")


class PlayerCohort:
    """All players' state as a structure of arrays, advanced in ticks.

    The arrays are the single source of truth for *every* player,
    materialised or not. :meth:`advance` is the one state-transition
    kernel; the cohort driver calls it with the batch of non-materialised
    indices, a :class:`MaterialisedPlayer` calls it with its own length-1
    index array. Because both paths run the same IEEE-exact elementwise
    code over the same arrays, who drives a player never changes its
    trajectory — the equivalence the digest tests pin down.

    Cross-player aggregates (`tick_load`, the latency histogram) are
    int64 accumulators fed by ``bincount``, so contributions commute
    exactly regardless of event order within a tick.
    """

    def __init__(
        self,
        region_of_player: np.ndarray,
        access_s: np.ndarray,
        latency: RegionalLatency,
        params: CohortParams,
        seed: int,
    ):
        region = np.asarray(region_of_player)
        n = region.shape[0]
        if np.asarray(access_s).shape[0] != n:
            raise ValueError("access_s must align with region_of_player")
        self.params = params
        self.latency = latency
        n_regions = latency.n_regions
        self.n_regions = n_regions
        self.n_players = n
        self._salt_jitter = 2 * seed + 1
        self._salt_crash = 2 * seed + 2
        # Derived constants, precomputed once so advance stays lean.
        self._fill_s = params.fill_rate * params.tick_s
        self._inv_bin = 1.0 / params.latency_bin_s
        self._top_tier = params.n_tiers - 1

        # -- per-player state (player id is the array index) ----------------
        self.player_id = np.arange(n, dtype=np.int64)
        self.region = region.astype(np.int64)
        self.access_s = np.asarray(access_s, dtype=np.float64).copy()
        self.served_by = self.region.copy()
        self.buffer_s = np.full(n, params.init_buffer_s, dtype=np.float64)
        self.position_s = np.zeros(n, dtype=np.float64)
        self.tier = np.full(n, self._top_tier, dtype=np.int64)
        self.last_switch = np.full(
            n, -params.switch_cooldown_ticks, dtype=np.int64)
        self.materialised = np.zeros(n, dtype=bool)
        #: Population-dynamics membership: inactive players are parked in
        #: the join pool and excluded from the batch. All-true outside
        #: ``repro.dynamics`` (the base kernel never edits it).
        self.active = np.ones(n, dtype=bool)
        self.rebuffer_ticks = np.zeros(n, dtype=np.int64)
        self.crashes = np.zeros(n, dtype=np.int64)
        self.switches = np.zeros(n, dtype=np.int64)
        self.reconnects = np.zeros(n, dtype=np.int64)
        self.migrations = np.zeros(n, dtype=np.int64)
        self.on_time_frames = np.zeros(n, dtype=np.int64)
        self.frames = np.zeros(n, dtype=np.int64)

        # -- tick-level shared inputs (written by the driver, before any
        # advance at that tick, identically in both modes) -------------------
        self.region_offline = np.zeros(n_regions, dtype=bool)
        self.failover_to = np.arange(n_regions, dtype=np.int64)
        self.congestion_s = np.zeros(n_regions, dtype=np.float64)

        # -- integer aggregates (order-free accumulators) --------------------
        self.tick_load = np.zeros(n_regions, dtype=np.int64)
        self.lat_hist = np.zeros(
            n_regions * params.n_latency_bins, dtype=np.int64)

    # -- the one state-transition kernel ------------------------------------
    def advance(self, idx: np.ndarray, tick: int) -> np.ndarray:
        """Advance the players in ``idx`` through tick ``tick``.

        Returns the divergence mask (crashed or down-switched) aligned
        with ``idx``. Restricted to IEEE-exact elementwise operations —
        see :class:`CohortParams`.

        Length-1 calls (a materialised player's tick) dispatch to the
        scalar mirror :meth:`_advance_one`: the same operations in the
        same order on Python doubles, which the IEEE-exactness
        restriction makes bit-identical to the vector path — the
        equivalence the cohort-vs-per-player digest tests pin down.
        """
        if idx.size == 1:
            return np.array([self._advance_one(int(idx[0]), tick)])
        p = self.params
        region = self.region[idx]
        served = self.served_by[idx]
        pid = self.player_id[idx]

        # 1) This tick's frame latency: access + propagation + congestion
        #    + uniform jitter from the counter generator.
        u_jit = counter_u01(pid, tick, self._salt_jitter)
        lat = (self.access_s[idx]
               + self.latency.gather_s(served, region)
               + self.congestion_s[served]
               + (2.0 * p.jitter_scale_s) * u_jit)

        # 2) Crash draw (independent counter stream).
        crashed = counter_u01(pid, tick, self._salt_crash) \
            < p.crash_rate_per_tick

        # 3) Delivery against the tier-dependent deadline.
        tier = self.tier[idx]
        deadline = (p.frame_deadline_s
                    + p.tier_deadline_step_s
                    * (self._top_tier - tier).astype(np.float64))
        on_time = lat <= deadline
        ok = on_time & ~crashed

        # 4) Playback buffer: fill on delivery, drain by playing.
        buf = self.buffer_s[idx] + np.where(ok, self._fill_s, 0.0)
        playing = buf >= p.tick_s
        consumed = np.where(playing, p.tick_s, 0.0)
        self.position_s[idx] += consumed
        buf = np.minimum(buf - consumed, p.max_buffer_s)

        # 5) Adaptation: down on a missed deadline, up on a full buffer —
        #    both rate-limited by the cooldown. An upgrade additionally
        #    requires this tick's latency to fit the *next* tier's
        #    tighter deadline, otherwise a player whose latency sits
        #    between two tier deadlines would oscillate up and down
        #    forever (and in cohort mode never re-converge).
        can = tick - self.last_switch[idx] >= p.switch_cooldown_ticks
        down = can & ~on_time & (tier > 0)
        up = (can
              & (lat <= deadline - p.tier_deadline_step_s - p.up_margin_s)
              & (buf > p.up_buffer_s) & (tier < self._top_tier))
        new_tier = tier + up.astype(np.int64) - down.astype(np.int64)
        switched = new_tier != tier

        # 6) Crash effects: buffer wiped, restart at the bottom tier,
        #    reconnect home (or to the failover target if home is down).
        reconnect_to = np.where(
            self.region_offline[region], self.failover_to[region], region)
        buf = np.where(crashed, 0.0, buf)
        new_tier = np.where(crashed, 0, new_tier)

        # 7) Write back.
        self.buffer_s[idx] = buf
        self.tier[idx] = new_tier
        self.last_switch[idx] = np.where(
            switched | crashed, tick, self.last_switch[idx])
        self.served_by[idx] = np.where(crashed, reconnect_to, served)
        self.rebuffer_ticks[idx] += ~playing
        self.crashes[idx] += crashed
        self.switches[idx] += switched
        self.reconnects[idx] += crashed & (reconnect_to != served)
        self.on_time_frames[idx] += on_time
        self.frames[idx] += 1

        # Divergence = crash or down-switch: the events that push a
        # player *away* from the cohort's homogeneous state. An
        # up-switch is re-convergence toward it, handled identically
        # by the batch, so it neither materialises a player nor resets
        # the re-absorption clock.
        diverged = crashed | down

        # 8) Order-free integer aggregates. Integer addition commutes
        #    exactly, so the scatter-add (cheap for the handful of
        #    indices a materialised advance carries) and the bincount
        #    (cheap for the cohort batch) produce identical counters —
        #    a performance branch, never a math branch.
        bins = np.minimum((lat * self._inv_bin).astype(np.int64),
                          p.n_latency_bins - 1)
        flat = region * p.n_latency_bins + bins
        if idx.size <= 64:
            np.add.at(self.tick_load, served, 1)
            np.add.at(self.lat_hist, flat, 1)
        else:
            self.tick_load += np.bincount(served, minlength=self.n_regions)
            self.lat_hist += np.bincount(
                flat, minlength=self.lat_hist.shape[0])

        return diverged

    def _advance_one(self, i: int, tick: int) -> bool:
        """Scalar mirror of :meth:`advance` for one player.

        Every arithmetic step repeats the vector path's operation in the
        vector path's order on Python doubles (IEEE binary64, like
        numpy's float64), so the state written here is bit-identical to
        what the batch would have written for index ``i``. Any edit to
        :meth:`advance` must be mirrored here — the cohort-equivalence
        digest suite fails loudly if the two drift.
        """
        p = self.params
        region = int(self.region[i])
        served = int(self.served_by[i])

        # 1) Frame latency.
        u_jit = counter_u01_one(i, tick, self._salt_jitter)
        lat = (float(self.access_s[i])
               + float(self.latency.propagation_row_s(served)[region])
               + float(self.congestion_s[served])
               + (2.0 * p.jitter_scale_s) * u_jit)

        # 2) Crash draw.
        crashed = counter_u01_one(i, tick, self._salt_crash) \
            < p.crash_rate_per_tick

        # 3) Delivery.
        tier = int(self.tier[i])
        deadline = (p.frame_deadline_s
                    + p.tier_deadline_step_s * float(self._top_tier - tier))
        on_time = lat <= deadline
        ok = on_time and not crashed

        # 4) Buffer.
        buf = float(self.buffer_s[i]) + (self._fill_s if ok else 0.0)
        playing = buf >= p.tick_s
        consumed = p.tick_s if playing else 0.0
        self.position_s[i] = float(self.position_s[i]) + consumed
        buf = min(buf - consumed, p.max_buffer_s)

        # 5) Adaptation.
        can = tick - int(self.last_switch[i]) >= p.switch_cooldown_ticks
        down = can and not on_time and tier > 0
        up = (can
              and lat <= deadline - p.tier_deadline_step_s - p.up_margin_s
              and buf > p.up_buffer_s and tier < self._top_tier)
        new_tier = tier + (1 if up else 0) - (1 if down else 0)
        switched = new_tier != tier

        # 6) Crash effects.
        if crashed:
            reconnect_to = (int(self.failover_to[region])
                            if self.region_offline[region] else region)
            buf = 0.0
            new_tier = 0

        # 7) Write back.
        self.buffer_s[i] = buf
        self.tier[i] = new_tier
        if switched or crashed:
            self.last_switch[i] = tick
        if not playing:
            self.rebuffer_ticks[i] += 1
        if crashed:
            self.served_by[i] = reconnect_to
            self.crashes[i] += 1
            if reconnect_to != served:
                self.reconnects[i] += 1
        if switched:
            self.switches[i] += 1
        if on_time:
            self.on_time_frames[i] += 1
        self.frames[i] += 1

        # 8) Aggregates.
        self.tick_load[served] += 1
        b = int(lat * self._inv_bin)
        if b > p.n_latency_bins - 1:
            b = p.n_latency_bins - 1
        self.lat_hist[region * p.n_latency_bins + b] += 1

        # Same divergence rule as the vector path: crash or down-switch.
        return crashed or down

    # -- materialisation -----------------------------------------------------
    def materialise(self, player_id: int) -> "MaterialisedPlayer":
        """Promote one player to individually-driven execution."""
        if self.materialised[player_id]:
            raise ValueError(f"player {player_id} is already materialised")
        self.materialised[player_id] = True
        return MaterialisedPlayer(self, player_id)

    def reabsorb(self, player_id: int) -> None:
        """Fold a re-converged materialised player back into the batch."""
        self.materialised[player_id] = False

    @property
    def n_materialised(self) -> int:
        return int(np.count_nonzero(self.materialised))

    def batch_indices(self) -> np.ndarray:
        """Indices the cohort driver advances (active, non-materialised)."""
        return np.flatnonzero(self.active & ~self.materialised)


class MaterialisedPlayer:
    """An individually-driven view of one cohort player.

    Holds no state of its own beyond the index: every read and write
    goes through the cohort arrays, and :meth:`advance` runs the shared
    kernel on a length-1 index array. ``last_divergence_tick`` is
    bookkeeping for re-absorption and deliberately not part of any
    digest.
    """

    __slots__ = ("cohort", "player_id", "idx", "last_divergence_tick")

    def __init__(self, cohort: PlayerCohort, player_id: int):
        self.cohort = cohort
        self.player_id = int(player_id)
        self.idx = np.array([self.player_id], dtype=np.int64)
        self.last_divergence_tick = -1

    def advance(self, tick: int) -> bool:
        """Advance this player one tick; True if it diverged again."""
        diverged = self.cohort._advance_one(self.player_id, tick)
        if diverged:
            self.last_divergence_tick = tick
        return diverged

    @property
    def buffer_s(self) -> float:
        return float(self.cohort.buffer_s[self.player_id])

    @property
    def tier(self) -> int:
        return int(self.cohort.tier[self.player_id])

    @property
    def served_by(self) -> int:
        return int(self.cohort.served_by[self.player_id])

    def __repr__(self) -> str:
        return (f"<MaterialisedPlayer id={self.player_id} "
                f"tier={self.tier} buffer={self.buffer_s:.2f}s>")
