"""System variants and the packet-level gaming session simulation.

This module wires the substrates together into the six systems the paper
compares (§IV):

=================  ====  ============  ==========  ============
variant            fog   edge servers  adaptation  scheduling
=================  ====  ============  ==========  ============
Cloud              no    no            no          no
EdgeCloud          no    yes           no          no
CloudFog/B         yes   no            no          no
CloudFog-adapt     yes   no            yes         no
CloudFog-schedule  yes   no            no          yes
CloudFog/A         yes   no            yes         yes
=================  ====  ============  ==========  ============

``simulate_sessions`` runs a segment-level discrete-event simulation of a
set of concurrently online players and reports the per-player QoE numbers
behind Figures 8 and 9 and the cloud egress behind Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

import numpy as np

import repro.obs as obs_mod
from repro.core.adaptation import AdaptationParams
from repro.core.assignment import (
    AssignmentParams,
    AssignmentStrategy,
    SupernodeAssignment,
    make_assignment,
)
from repro.core.cloud import (
    DEFAULT_COMPUTE_DELAY_S,
    UPDATE_MESSAGE_BYTES,
    CloudCoordinator,
)
from repro.core.player import PlayerEndpoint
from repro.core.scheduling import SchedulingParams
from repro.core.server import StreamingServer
from repro.core.supernode import SupernodeServer
from repro.faults.failover import FailoverController, FailoverParams
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.session import SessionChaos
from repro.network.topology import HostKind
from repro.sim.engine import Environment
from repro.streaming.encoder import SegmentEncoder
from repro.streaming.video import SEGMENT_DURATION_S
from repro.workload.games import GAMES, Game
from repro.workload.players import Population


class SystemVariant(Enum):
    """The systems compared in the paper's evaluation."""

    CLOUD = "Cloud"
    EDGECLOUD = "EdgeCloud"
    CLOUDFOG_B = "CloudFog/B"
    CLOUDFOG_ADAPT = "CloudFog-adapt"
    CLOUDFOG_SCHEDULE = "CloudFog-schedule"
    CLOUDFOG_A = "CloudFog/A"

    @property
    def uses_fog(self) -> bool:
        return self in (SystemVariant.CLOUDFOG_B, SystemVariant.CLOUDFOG_ADAPT,
                        SystemVariant.CLOUDFOG_SCHEDULE, SystemVariant.CLOUDFOG_A)

    @property
    def uses_edge_servers(self) -> bool:
        return self is SystemVariant.EDGECLOUD

    @property
    def uses_adaptation(self) -> bool:
        return self in (SystemVariant.CLOUDFOG_ADAPT, SystemVariant.CLOUDFOG_A)

    @property
    def uses_scheduling(self) -> bool:
        return self in (SystemVariant.CLOUDFOG_SCHEDULE, SystemVariant.CLOUDFOG_A)


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of the session simulation."""

    #: Simulated wall time.
    duration_s: float = 30.0
    #: Warmup before QoE accounting starts (convergence transient).
    warmup_s: float = 5.0
    #: Video segment cadence (and cloud update tick).
    segment_interval_s: float = SEGMENT_DURATION_S
    #: Cloud game-state computation time per action.
    compute_delay_s: float = DEFAULT_COMPUTE_DELAY_S
    #: Rendering time per segment (cloud, edge or supernode).
    render_delay_s: float = 0.005
    #: Per-datacenter egress rate for *streaming* (baselines and
    #: cloud-fallback players).
    dc_egress_bps: float = 200e6
    #: EdgeCloud edge server capacity (players) and derived uplink.
    edge_capacity_slots: int = 50
    #: Λ — cloud-to-supernode update message size.
    update_message_bytes: int = UPDATE_MESSAGE_BYTES
    #: Strategy constants.
    adaptation: AdaptationParams = field(default_factory=AdaptationParams)
    scheduling: SchedulingParams = field(default_factory=SchedulingParams)
    assignment: AssignmentParams = field(default_factory=AssignmentParams)
    #: Deterministic fault plan. ``None`` disarms every piece of chaos
    #: machinery; an armed-but-empty plan is byte-identical to ``None``
    #: (trace digest, series, metrics) — the zero-overhead contract.
    faults: Optional[FaultPlan] = None
    #: Failover timing constants (consulted only when a plan is armed).
    failover: FailoverParams = field(default_factory=FailoverParams)


@dataclass
class PlayerOutcome:
    """Per-player results of a session simulation."""

    player_id: int
    game_id: int
    served_by: str  # "supernode" | "edge" | "cloud"
    continuity: float
    mean_latency_s: float
    satisfied: bool
    segments_received: int
    final_quality_level: int


@dataclass
class SessionResult:
    """Aggregate results of one ``simulate_sessions`` run."""

    variant: SystemVariant
    duration_s: float
    outcomes: list[PlayerOutcome]
    cloud_update_bytes: float
    cloud_stream_bytes: float
    supernode_bytes: float
    edge_bytes: float
    #: Failover/injection tallies when a fault plan was armed, else None.
    fault_stats: Optional[dict] = None
    #: Load-distribution indices over the supernode placement (Gini,
    #: Herfindahl, coefficient of variation for users- and
    #: utilisation-per-node, plus negotiation tallies for the
    #: distributed strategy) when the variant deploys fog, else None.
    load_indices: Optional[dict] = None

    @property
    def n_players(self) -> int:
        return len(self.outcomes)

    @property
    def mean_continuity(self) -> float:
        if not self.outcomes:
            return 1.0
        return float(np.mean([o.continuity for o in self.outcomes]))

    @property
    def mean_latency_s(self) -> float:
        vals = [o.mean_latency_s for o in self.outcomes
                if o.segments_received > 0]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def satisfied_fraction(self) -> float:
        if not self.outcomes:
            return 1.0
        return float(np.mean([o.satisfied for o in self.outcomes]))

    @property
    def cloud_egress_bytes(self) -> float:
        """Cloud egress: update fan-out plus directly streamed video."""
        return self.cloud_update_bytes + self.cloud_stream_bytes

    @property
    def cloud_egress_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return 8.0 * self.cloud_egress_bytes / self.duration_s

    def fraction_served_by(self, kind: str) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.served_by == kind for o in self.outcomes]))


class GamingSession:
    """One assembled simulation: servers, endpoints, generators."""

    def __init__(
        self,
        population: Population,
        variant: SystemVariant,
        online_player_ids: np.ndarray,
        config: SessionConfig | None = None,
        edge_server_host_ids: Optional[np.ndarray] = None,
        obs: "obs_mod.Observability | None" = None,
    ):
        self.population = population
        self.variant = variant
        self.config = config or SessionConfig()
        self.online_ids = np.asarray(online_player_ids, dtype=int)
        #: Telemetry context: the explicit argument wins, else whatever
        #: the experiment driver installed via ``repro.obs.use(...)``.
        self.obs = obs if obs is not None else obs_mod.current()
        self.env = Environment()
        if self.obs is not None:
            obs_mod.attach_kernel_probes(self.env, self.obs)
            # Reset per-run invariant state (checkers may span several
            # back-to-back sessions in one recorder) and fence the trace.
            self.obs.emit(self.env.now, "session", "session.start",
                          variant=variant.value,
                          n_players=int(self.online_ids.size))
        self.cloud = CloudCoordinator(
            self.env,
            population.datacenter_ids,
            compute_delay_s=self.config.compute_delay_s,
            update_message_bytes=self.config.update_message_bytes,
        )
        self._edge_host_ids = (
            np.asarray(edge_server_host_ids, dtype=int)
            if edge_server_host_ids is not None else np.empty(0, dtype=int))
        self._servers: dict[int, StreamingServer] = {}
        self._endpoints: dict[int, PlayerEndpoint] = {}
        self._served_by: dict[int, str] = {}
        self._games: dict[int, Game] = {}
        # Per-player session state, indirected so failover can redirect
        # a player to a new server mid-run (the tick loop re-reads these
        # every segment interval).
        self._encoders: dict[int, SegmentEncoder] = {}
        self._serving: dict[int, StreamingServer] = {}
        self._l_r: dict[int, float] = {}
        self._player_hosts: dict[int, int] = {}
        self._sn_service: Optional[AssignmentStrategy] = None
        #: Chaos machinery — constructed only when ``config.faults`` is
        #: armed; unarmed sessions carry three ``None``s and pay nothing.
        self.chaos: Optional[SessionChaos] = None
        self.failover: Optional[FailoverController] = None
        self.injector: Optional[FaultInjector] = None
        # A fresh, deterministic generator per session: two variants run
        # over the same population MUST see the identical workload (game
        # choices, tick phases), or A/B comparisons are meaningless.
        self._rng = np.random.default_rng(
            population.rngs.master_seed * 0x9E3779B9 % (2**63))
        self._assign_games()
        self._build()

    # -- construction ----------------------------------------------------------
    def _assign_games(self) -> None:
        """Pick each online player's game with the social rule (§IV)."""
        rng = self._rng
        playing: dict[int, int] = {}
        for pid in self.online_ids:
            game = self.population.social.choose_game(
                int(pid), playing, rng, GAMES)
            self._games[int(pid)] = game
            playing[int(pid)] = game.game_id

    def _get_server(
        self, host_id: int, kind: str, capacity_slots: int | None = None
    ) -> StreamingServer:
        server = self._servers.get(host_id)
        if server is not None:
            return server
        cfg = self.config
        common = dict(
            render_delay_s=cfg.render_delay_s,
            use_deadline_scheduling=self.variant.uses_scheduling,
            scheduling_params=cfg.scheduling,
            obs=self.obs,
        )
        if kind == "supernode":
            player_idx = self._host_to_player_idx(host_id)
            slots = (capacity_slots if capacity_slots is not None
                     else self.population.players[player_idx].capacity_slots)
            server = SupernodeServer(
                self.env, host_id, capacity_slots=slots, **common)
        elif kind == "edge":
            from repro.workload.capacities import SLOT_BANDWIDTH_BPS
            server = StreamingServer(
                self.env, host_id,
                uplink_rate_bps=cfg.edge_capacity_slots * SLOT_BANDWIDTH_BPS,
                **common)
        else:  # datacenter streaming
            server = StreamingServer(
                self.env, host_id, uplink_rate_bps=cfg.dc_egress_bps, **common)
        self._servers[host_id] = server
        return server

    def _host_to_player_idx(self, host_id: int) -> int:
        # Player hosts were appended after datacenters in build order.
        n_dc = self.population.datacenter_ids.size
        return int(host_id) - n_dc

    def _build(self) -> None:
        pop = self.population
        cfg = self.config
        lat = pop.latency

        sn_service: Optional[AssignmentStrategy] = None
        if self.variant.uses_fog:
            sn_caps = np.array([
                pop.players[self._host_to_player_idx(h)].capacity_slots
                for h in pop.supernode_host_ids
            ], dtype=int)
            sn_service = make_assignment(
                lat, pop.supernode_host_ids, sn_caps,
                pop.datacenter_ids, cfg.assignment)
        self._sn_service = sn_service
        if cfg.faults is not None:
            self.failover = FailoverController(
                self.env, cfg.failover,
                is_up=self._server_is_up,
                reattach=self._reattach_player,
                migrate=self._migrate_player,
                obs=self.obs)
            self.chaos = SessionChaos(self, cfg.faults, self.failover)
            self.injector = FaultInjector(
                self.env, cfg.faults, self.chaos, obs=self.obs)
        edge_service: Optional[SupernodeAssignment] = None
        if self.variant.uses_edge_servers and self._edge_host_ids.size:
            from dataclasses import replace
            edge_caps = np.full(
                self._edge_host_ids.size, cfg.edge_capacity_slots, dtype=int)
            edge_service = SupernodeAssignment(
                lat, self._edge_host_ids, edge_caps, pop.datacenter_ids,
                replace(cfg.assignment, filter_by_lmax=False))

        for pid in self.online_ids:
            pid = int(pid)
            player = pop.players[pid]
            game = self._games[pid]
            host = player.host_id

            served_by = "cloud"
            site_host: int
            if sn_service is not None:
                result = sn_service.assign(host, game.latency_req_s)
                if result.uses_supernode:
                    served_by = "supernode"
                    site_host = result.supernode_host_id
                else:
                    site_host = result.datacenter_host_id
            elif edge_service is not None:
                # EdgeCloud: connect to the closest server overall —
                # edge or datacenter, whichever is nearer.
                result = edge_service.assign(host, game.latency_req_s)
                if result.uses_supernode:
                    edge_lat = lat.one_way_s(host, result.supernode_host_id)
                    dc_lat = lat.one_way_s(host, result.datacenter_host_id)
                    if edge_lat <= dc_lat:
                        served_by = "edge"
                        site_host = result.supernode_host_id
                    else:
                        edge_service.release(host)
                        site_host = result.datacenter_host_id
                else:
                    site_host = result.datacenter_host_id
            else:
                dc_lat = lat.one_way_matrix_s(
                    np.array([host]), pop.datacenter_ids)[0]
                site_host = int(pop.datacenter_ids[int(np.argmin(dc_lat))])

            server = self._get_server(site_host, served_by if served_by
                                      != "cloud" else "dc")
            downstream_s = lat.one_way_s(site_host, host)
            path_rate = lat.path_throughput_bps(site_host, host)
            encoder = SegmentEncoder(
                pid, game.latency_req_s, game.loss_tolerance)
            endpoint = PlayerEndpoint(
                self.env, pid, game, server,
                feedback_delay_s=downstream_s,
                use_adaptation=self.variant.uses_adaptation,
                adaptation_params=cfg.adaptation,
                stats_after_s=cfg.warmup_s,
                obs=self.obs,
            )
            deliver = (endpoint.deliver if self.chaos is None
                       else self.chaos.make_deliver(pid, endpoint, site_host))
            server.attach_player(pid, encoder, deliver,
                                 downstream_s, path_rate)
            self._endpoints[pid] = endpoint
            self._served_by[pid] = served_by
            self._encoders[pid] = encoder
            self._serving[pid] = server
            self._player_hosts[pid] = host

            # l_r: player action -> serving site holds the game state.
            if served_by == "supernode":
                nearest_dc = result.datacenter_host_id
                l_r = self.cloud.action_to_update_delay_s(
                    lat.one_way_s(host, nearest_dc),
                    lat.one_way_s(nearest_dc, site_host))
            else:
                # Cloud/edge compute locally at the serving site.
                l_r = (lat.one_way_s(host, site_host)
                       + self.cloud.compute_delay_s)
            self._l_r[pid] = l_r
            self.env.process(self._player_loop(pid))

        if self.variant.uses_fog:
            self.env.process(self._cloud_update_loop())
        if self.injector is not None:
            self.injector.arm()

    # -- failover callables -------------------------------------------------------
    def _server_is_up(self, host_id: int) -> bool:
        """Probe whether a host is currently able to serve."""
        server = self._servers.get(host_id)
        return server is not None and not server.crashed

    def _attach_to(self, player_id: int, server: StreamingServer,
                   site_host: int) -> None:
        """(Re)connect a player to ``server`` with a fresh delivery epoch.

        Bumping the epoch first makes every wrapper from the previous
        attachment a silent sink, so segments still in flight from the
        old server can never reach a migrated player.
        """
        lat = self.population.latency
        host = self._player_hosts[player_id]
        endpoint = self._endpoints[player_id]
        downstream_s = lat.one_way_s(site_host, host)
        path_rate = lat.path_throughput_bps(site_host, host)
        self.chaos.bump_epoch(player_id)
        deliver = self.chaos.make_deliver(player_id, endpoint, site_host)
        server.attach_player(player_id, self._encoders[player_id], deliver,
                             downstream_s, path_rate)
        endpoint.server = server
        endpoint.feedback_delay_s = downstream_s
        self._serving[player_id] = server

    def _reattach_player(self, player_id: int, host_id: int) -> bool:
        """Reconnect a player to its recovered server (same placement)."""
        server = self._servers.get(host_id)
        if server is None or server.crashed:
            return False
        self._attach_to(player_id, server, host_id)
        return True

    def _migrate_player(self, player_id: int) -> str:
        """Move a player to the next-best supernode, or direct cloud.

        Re-runs the §III-A-3 assignment protocol; crashed supernodes
        are excluded from the candidate table via ``mark_failed``, so
        the player lands on the best *live* option or falls back to its
        nearest datacenter.
        """
        pop = self.population
        lat = pop.latency
        host = self._player_hosts[player_id]
        game = self._games[player_id]
        served_by = "cloud"
        result = None
        if self._sn_service is not None:
            self._sn_service.release(host)
            result = self._sn_service.assign(host, game.latency_req_s)
            if result.uses_supernode:
                served_by = "supernode"
                site_host = result.supernode_host_id
            else:
                site_host = result.datacenter_host_id
        else:
            dc_lat = lat.one_way_matrix_s(
                np.array([host]), pop.datacenter_ids)[0]
            site_host = int(pop.datacenter_ids[int(np.argmin(dc_lat))])
        server = self._get_server(
            site_host, "supernode" if served_by == "supernode" else "dc")
        if server.crashed:  # pragma: no cover - mark_failed prevents this
            if self._sn_service is not None:
                self._sn_service.release(host)
            served_by = "cloud"
            site_host = (result.datacenter_host_id if result is not None
                         else site_host)
            server = self._get_server(site_host, "dc")
        self._attach_to(player_id, server, site_host)
        if served_by == "supernode":
            nearest_dc = result.datacenter_host_id
            l_r = self.cloud.action_to_update_delay_s(
                lat.one_way_s(host, nearest_dc),
                lat.one_way_s(nearest_dc, site_host))
        else:
            l_r = (lat.one_way_s(host, site_host)
                   + self.cloud.compute_delay_s)
        self._l_r[player_id] = l_r
        self._served_by[player_id] = served_by
        return served_by

    # -- processes ----------------------------------------------------------------
    def _player_loop(self, player_id: int):
        """Generate one segment per cadence tick for ``player_id``.

        The serving server and l_r are re-read from the per-player
        tables every tick, so a failover migration redirects the very
        next segment without touching this process.
        """
        cfg = self.config
        rng = self._rng
        # Random phase so players' ticks interleave instead of bursting.
        yield self.env.timeout(float(rng.uniform(0, cfg.segment_interval_s)))
        while self.env.now < cfg.duration_s:
            action_time = self.env.now
            server = self._serving[player_id]

            def start_render(_ev, action_time=action_time, server=server):
                server.render_and_send(player_id, action_time)

            ev = self.env.timeout(self._l_r[player_id])
            ev.callbacks.append(start_render)
            yield self.env.timeout(cfg.segment_interval_s)

    def _cloud_update_loop(self):
        """Charge cloud egress for supernode update fan-out (Λ×m per tick)."""
        cfg = self.config
        while self.env.now < cfg.duration_s:
            active = sum(
                1 for s in self._servers.values()
                if isinstance(s, SupernodeServer) and s.n_players > 0)
            if active:
                self.cloud.account_update(active)
            yield self.env.timeout(cfg.segment_interval_s)

    # -- run ------------------------------------------------------------------------
    def run(self) -> SessionResult:
        """Run to the configured horizon (plus drain time) and report."""
        cfg = self.config
        # Extra drain time so in-flight segments arrive and count.
        self.env.run(until=cfg.duration_s + 2.0)

        outcomes = []
        for pid, endpoint in self._endpoints.items():
            stats = endpoint.stats
            encoder = self._encoders.get(pid)
            outcomes.append(PlayerOutcome(
                player_id=pid,
                game_id=endpoint.game.game_id,
                served_by=self._served_by[pid],
                continuity=stats.continuity,
                mean_latency_s=stats.mean_latency_s,
                satisfied=endpoint.is_satisfied(),
                segments_received=stats.segments_received,
                final_quality_level=encoder.level if encoder else 0,
            ))

        dc_stream = sum(
            s.bytes_sent for h, s in self._servers.items()
            if h in set(int(x) for x in self.population.datacenter_ids))
        sn_bytes = sum(
            s.bytes_sent for s in self._servers.values()
            if isinstance(s, SupernodeServer))
        edge_set = set(int(x) for x in self._edge_host_ids)
        edge_bytes = sum(
            s.bytes_sent for h, s in self._servers.items() if h in edge_set)
        self.cloud.account_stream(dc_stream)

        fault_stats: Optional[dict] = None
        if self.chaos is not None:
            fault_stats = {
                **self.failover.stats(),
                "injected": self.injector.injected,
                "cleared": self.injector.cleared,
                "skipped": self.injector.skipped,
                "stale_suppressed": self.chaos.stale_suppressed,
                "segments_lost_to_faults": self.chaos.segments_lost_to_faults,
            }

        load_indices: Optional[dict] = None
        if self._sn_service is not None:
            from repro.metrics.load_indices import LoadDistribution

            dist = LoadDistribution.from_strategy(self._sn_service)
            load_indices = dist.to_dict()
            load_indices["strategy"] = self.config.assignment.strategy
            negotiation = getattr(self._sn_service, "stats", None)
            if callable(negotiation):
                load_indices["negotiation"] = negotiation()
            if self.obs is not None:
                # Registry gauges only — never trace events, which would
                # break the greedy strategy's seed digest equivalence.
                dist.emit(self.obs.metrics, prefix="assignment")

        return SessionResult(
            variant=self.variant,
            duration_s=cfg.duration_s,
            outcomes=outcomes,
            cloud_update_bytes=self.cloud.update_bytes_sent,
            cloud_stream_bytes=dc_stream,
            supernode_bytes=sn_bytes,
            edge_bytes=edge_bytes,
            fault_stats=fault_stats,
            load_indices=load_indices,
        )


def simulate_sessions(
    population: Population,
    variant: SystemVariant,
    online_player_ids: np.ndarray,
    config: SessionConfig | None = None,
    edge_server_host_ids: Optional[np.ndarray] = None,
    obs: "obs_mod.Observability | None" = None,
) -> SessionResult:
    """Build and run one session simulation (Figures 7–9 driver)."""
    session = GamingSession(
        population, variant, online_player_ids, config, edge_server_host_ids,
        obs=obs)
    return session.run()
