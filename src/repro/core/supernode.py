"""Supernode: a fog streaming server built from a player machine.

A supernode is a :class:`~repro.core.server.StreamingServer` whose uplink
comes from its contributed capacity slots (each slot backs one top-quality
stream — see :mod:`repro.workload.capacities`) and which receives compact
state updates from the cloud instead of computing game state itself.
"""

from __future__ import annotations

from repro.core.overload import OverloadGuard, OverloadParams
from repro.core.scheduling import SchedulingParams
from repro.core.server import StreamingServer
from repro.sim.engine import Environment
from repro.workload.capacities import SLOT_BANDWIDTH_BPS


class SupernodeServer(StreamingServer):
    """A deployed supernode.

    Parameters
    ----------
    env:
        Simulation environment.
    host_id:
        Topology host id (a promoted player machine).
    capacity_slots:
        C_j — concurrent players this supernode can serve; also sizes
        the uplink (slots × top-ladder bitrate).
    render_delay_s:
        l_s — game video rendering time per segment.
    use_deadline_scheduling:
        Enable the §III-C sender buffer (CloudFog-schedule, CloudFog/A).
    overload:
        Optional :class:`~repro.core.overload.OverloadParams`; when set
        the supernode degrades gracefully under a flash crowd — refusing
        admissions past the admit watermark and shedding sessions down
        the quality ladder before evicting (see DESIGN.md §14).
    """

    def __init__(
        self,
        env: Environment,
        host_id: int,
        capacity_slots: int,
        render_delay_s: float = 0.005,
        use_deadline_scheduling: bool = False,
        server_receive_delay_s: float = 0.0,
        scheduling_params: SchedulingParams | None = None,
        uplink_rate_bps: float | None = None,
        obs=None,
        overload: OverloadParams | None = None,
    ):
        if capacity_slots < 1:
            raise ValueError("a supernode needs at least one slot")
        self.capacity_slots = capacity_slots
        rate = (uplink_rate_bps if uplink_rate_bps is not None
                else capacity_slots * SLOT_BANDWIDTH_BPS)
        super().__init__(
            env,
            host_id,
            uplink_rate_bps=rate,
            render_delay_s=render_delay_s,
            use_deadline_scheduling=use_deadline_scheduling,
            server_receive_delay_s=server_receive_delay_s,
            scheduling_params=scheduling_params,
            obs=obs,
        )
        #: Update messages received from the cloud.
        self.updates_received = 0
        #: Graceful-degradation layer; None keeps legacy hard-cap only.
        self.overload_guard = (
            OverloadGuard(self, overload, obs,
                          component=f"supernode:{host_id}")
            if overload is not None else None)

    @property
    def has_capacity(self) -> bool:
        """Whether another player fits (C_j not exhausted)."""
        return self.n_players < self.capacity_slots

    def admit_player(self, now_s: float = 0.0) -> bool:
        """Admission check: hard slot cap plus, when overload-guarded,
        the admit watermark. A refusal means direct-cloud fallback."""
        if not self.has_capacity:
            if self.overload_guard is not None:
                self.overload_guard.refused += 1
                self.overload_guard._count("refused")
            return False
        if self.overload_guard is not None:
            return self.overload_guard.admit(now_s)
        return True

    def rebalance_overload(self, now_s: float = 0.0) -> list[int]:
        """Shed quality / evict until back under the watermarks; returns
        evicted player ids (to be re-homed on direct cloud). No-op when
        not overload-guarded."""
        if self.overload_guard is None:
            return []
        return self.overload_guard.rebalance(now_s)

    def receive_update(self) -> None:
        """Account one cloud update message (virtual world refresh)."""
        self.updates_received += 1

    def utilization(self, elapsed_s: float) -> float:
        """u_j — fraction of the uplink used so far."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, 8.0 * self.bytes_sent
                   / (self.uplink_rate_bps * elapsed_s))
