"""Generic streaming server: the render-encode-queue-send pipeline.

A :class:`StreamingServer` is anything that renders game video and streams
it to players over a shared, rate-limited uplink: a supernode, an
EdgeCloud edge server, or a datacenter acting as the streamer in the plain
cloud gaming baseline. The differences between system variants reduce to

* which queue discipline the sender buffer uses (FIFO vs deadline-driven);
* whether per-player encoders accept rate-adaptation feedback;
* how large the uplink is (supernode slots vs datacenter egress).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.scheduling import DeadlineSenderBuffer, SchedulingParams
from repro.network.packet import VideoSegment
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.streaming.encoder import SegmentEncoder
from repro.streaming.sender_buffer import FifoSenderBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: Deliver callback signature: (segment, arrival_time_s) -> None.
DeliverFn = Callable[[VideoSegment, float], None]


class StreamingServer:
    """A video-rendering host with a shared uplink and a sender queue.

    Parameters
    ----------
    env:
        Simulation environment.
    host_id:
        The server's host id in the topology.
    uplink_rate_bps:
        λ_r — total upload rate shared by all served players.
    render_delay_s:
        l_s — per-segment rendering time.
    use_deadline_scheduling:
        Choose the deadline-driven buffer (CloudFog-schedule / CloudFog/A)
        over plain FIFO.
    server_receive_delay_s:
        Nominal l_r handed to the deadline scheduler's estimator.
    scheduling_params:
        Constants for the deadline scheduler.
    """

    def __init__(
        self,
        env: Environment,
        host_id: int,
        uplink_rate_bps: float,
        render_delay_s: float = 0.005,
        use_deadline_scheduling: bool = False,
        server_receive_delay_s: float = 0.0,
        scheduling_params: SchedulingParams | None = None,
        obs: "Observability | None" = None,
    ):
        if uplink_rate_bps <= 0:
            raise ValueError("uplink rate must be positive")
        self.env = env
        self.host_id = host_id
        self.uplink_rate_bps = uplink_rate_bps
        self.render_delay_s = render_delay_s
        self.use_deadline_scheduling = use_deadline_scheduling
        self._obs = obs
        self.component = f"server:{host_id}"
        if use_deadline_scheduling:
            self.buffer = DeadlineSenderBuffer(
                uplink_rate_bps,
                server_receive_delay_s=server_receive_delay_s,
                render_delay_s=render_delay_s,
                params=scheduling_params,
                obs=obs,
                component=self.component,
            )
        else:
            self.buffer = FifoSenderBuffer(
                obs=obs, component=self.component)
        #: encoders keyed by player id.
        self.encoders: dict[int, SegmentEncoder] = {}
        #: per-player delivery callbacks and propagation delays.
        self._routes: dict[int, tuple[DeliverFn, float]] = {}
        registry = obs.metrics if obs is not None else MetricsRegistry()
        self._c_bytes_sent = registry.counter("server.bytes_sent")
        self._c_segments_sent = registry.counter("server.segments_sent")
        #: Set by the fault injector; a crashed server has no encoders or
        #: routes, so rendering and sending degrade to no-ops.
        self.crashed = False
        self._wake: Optional[Event] = None
        self._proc = env.process(self._sender_loop())

    @property
    def bytes_sent(self) -> float:
        """Bytes serialized onto the uplink (metrics-registry backed)."""
        return self._c_bytes_sent.value

    @property
    def segments_sent(self) -> int:
        """Segments serialized onto the uplink."""
        return self._c_segments_sent.value

    # -- player management ---------------------------------------------------
    def attach_player(
        self,
        player_id: int,
        encoder: SegmentEncoder,
        deliver: DeliverFn,
        propagation_s: float,
        path_rate_bps: float = float("inf"),
    ) -> None:
        """Register a served player: its encoder and downstream path.

        ``path_rate_bps`` caps the streaming throughput of the
        server-to-player path (window-limited transport over the path's
        RTT); a segment spends ``size × 8 / path_rate`` in the pipe on
        top of the propagation delay.
        """
        if path_rate_bps <= 0:
            raise ValueError("path rate must be positive")
        self.encoders[player_id] = encoder
        self._routes[player_id] = (deliver, propagation_s, path_rate_bps)
        if self.use_deadline_scheduling:
            # Seed the Eq. 13 estimator so the first segments already
            # schedule against a sane downstream estimate.
            self.buffer.propagation.record(player_id, propagation_s)

    def detach_player(self, player_id: int) -> None:
        """Unregister a player (session ended)."""
        self.encoders.pop(player_id, None)
        self._routes.pop(player_id, None)

    @property
    def n_players(self) -> int:
        return len(self._routes)

    # -- failure injection ---------------------------------------------------
    def fail(self, now_s: float | None = None) -> int:
        """Crash the server: flush the queue, forget players.

        Queued segments are dropped through the buffer's flush path with
        full packet accounting; encoders and routes are cleared so
        rendering for former players degrades to a no-op. A segment
        already being serialized keeps its captured route and still
        arrives (it was in flight when the host died). Cold path — only
        the fault injector calls this. Returns the segments lost.
        """
        if self.crashed:
            return 0
        now = self.env.now if now_s is None else now_s
        lost = self.buffer.flush(now)
        self.encoders.clear()
        self._routes.clear()
        self.crashed = True
        if self._obs is not None:
            self._obs.emit(now, self.component, "server.fail",
                           segments_lost=lost)
        return lost

    def recover(self) -> None:
        """Bring a crashed server back, empty and playerless."""
        if not self.crashed:
            return
        self.crashed = False
        if self._obs is not None:
            self._obs.emit(self.env.now, self.component, "server.recover")

    # -- pipeline --------------------------------------------------------------
    def render_and_send(self, player_id: int, action_time_s: float) -> None:
        """Render one segment for ``player_id`` and queue it for sending.

        The segment enters the sender buffer after the render delay.
        """
        encoder = self.encoders.get(player_id)
        if encoder is None:
            return
        state_ready_s = self.env.now

        def after_render(_ev, player_id=player_id,
                         action_time_s=action_time_s,
                         state_ready_s=state_ready_s):
            enc = self.encoders.get(player_id)
            if enc is None:
                return
            segment = enc.encode_segment(
                action_time_s, self.env.now, state_ready_s=state_ready_s)
            self.buffer.enqueue(segment, self.env.now)
            self._wake_sender()

        ev = self.env.timeout(self.render_delay_s)
        ev.callbacks.append(after_render)

    def render_and_send_batch(self, actions) -> None:
        """Render one segment per ``(player_id, action_time_s)`` pair.

        The per-tick aggregate form of :meth:`render_and_send`: the
        cloud's state update for a tick covers every served player at
        once, so the server schedules *one* render completion for the
        whole batch, encodes each player's segment, enqueues them in one
        buffer operation, and wakes the sender once. Players detached
        between scheduling and render completion are skipped, exactly as
        in the per-player path.
        """
        actions = [(pid, t) for pid, t in actions if pid in self.encoders]
        if not actions:
            return
        state_ready_s = self.env.now

        def after_render(_ev, actions=actions, state_ready_s=state_ready_s):
            segments = []
            for player_id, action_time_s in actions:
                enc = self.encoders.get(player_id)
                if enc is None:
                    continue
                segments.append(enc.encode_segment(
                    action_time_s, self.env.now,
                    state_ready_s=state_ready_s))
            if self.buffer.enqueue_batch(segments, self.env.now):
                self._wake_sender()

        ev = self.env.timeout(self.render_delay_s)
        ev.callbacks.append(after_render)

    def _wake_sender(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _sender_loop(self):
        """Drain the sender buffer at the uplink rate, forever."""
        while True:
            # Expiry is done here, not in the buffer: the server knows the
            # exact route (uplink rate, path rate, propagation), so only
            # truly hopeless segments get expired.
            segment = self.buffer.dequeue(self.env.now, expire=False)
            if segment is None:
                self._wake = self.env.event()
                yield self._wake
                self._wake = None
                continue
            route = self._routes.get(segment.player_id)

            if (self.use_deadline_scheduling and route is not None
                    and segment.remaining_packets > 0):
                _, prop_s, rate_bps = route
                size = segment.remaining_bytes
                tx = 8.0 * size / self.uplink_rate_bps
                pipe = (8.0 * size / rate_bps
                        if rate_bps != float("inf") else 0.0)
                if self.env.now + tx + pipe + prop_s > segment.deadline_s:
                    expired = segment.drop_all()
                    self.buffer.note_expired(
                        segment, expired, now_s=self.env.now)

            size = segment.remaining_bytes
            if size > 0:
                yield self.env.timeout(8.0 * size / self.uplink_rate_bps)
                self._c_bytes_sent.inc(size)
                self._c_segments_sent.inc()
                if self._obs is not None:
                    self._obs.emit(
                        self.env.now, self.component, "server.send",
                        player=segment.player_id, bytes=size,
                        packets=segment.remaining_packets)
            if route is None:
                continue  # player left while the segment queued
            deliver, propagation_s, path_rate_bps = route
            # Downstream delay: the path pipes the segment at its
            # window-limited rate, then the last packet propagates.
            path_transfer_s = (8.0 * size / path_rate_bps
                               if size > 0 and path_rate_bps != float("inf")
                               else 0.0)
            downstream_s = path_transfer_s + propagation_s
            if self.use_deadline_scheduling:
                self.buffer.propagation.record(
                    segment.player_id, downstream_s)

            def arrive(_ev, segment=segment, deliver=deliver):
                deliver(segment, self.env.now)

            ev = self.env.timeout(downstream_s)
            ev.callbacks.append(arrive)
