"""Population-scale cohort simulation kernel (DESIGN.md §11).

Orchestrates a :class:`~repro.core.player.PlayerCohort` over the
discrete-event :class:`~repro.sim.engine.Environment`:

* a **driver** event fires once per tick — it folds the previous tick's
  aggregates into the run digest, applies region fault transitions,
  recomputes congestion from the (integer) load counters, and, in cohort
  mode, advances every non-materialised player in one vectorised call;
* each **materialised player** has its own per-tick event chain calling
  the same advance kernel on its length-1 index array; a player that
  stays convergence-free for ``reabsorb_ticks`` folds back into the
  batch.

Execution modes
---------------
``"cohort"``
    The scale mode: vectorised batch + individually-driven divergents.
``"per-player"``
    Every player is materialised from tick 0 and driven by its own
    events — the reference execution the cohort mode must match
    byte-for-byte (same digest), and the event-population stress test
    for the calendar queue.

Determinism
-----------
The driver is always the first event processed at each tick time: it is
scheduled before any player chain at construction, and it reschedules
itself before any player event of the current tick runs, so its sequence
number stays the lowest by induction. Tick-level inputs it writes
(outage flags, failover targets, congestion) are therefore visible to
every advance of that tick in both modes. All cross-player accumulation
is integer (``bincount``), so per-tick event order cannot perturb state,
and the digest covers player state and aggregates only — never the
materialised set, which is the one thing the modes legitimately disagree
on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.player import CohortParams, MaterialisedPlayer, PlayerCohort
from repro.network.latency import (
    LatencyParams,
    RegionalLatency,
    sample_access_latency_s,
)
from repro.network.topology import Regions, build_regions
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry, counter_u01

#: Fault presets: (outage windows as tick fractions, crash rate).
#: Windows are resolved against ``n_ticks`` at kernel construction.
FAULT_PRESETS = ("none", "outage", "crashes", "mixed")

#: Crash probability per tick used by the crash-bearing presets — high
#: enough that a 1k-player, ~100-tick equivalence run materialises a
#: handful of players through the crash path.
PRESET_CRASH_RATE = 1e-3


@dataclass(frozen=True)
class OutageWindow:
    """One region outage: offline in ``[start_tick, end_tick)``."""

    region: int
    start_tick: int
    end_tick: int

    def __post_init__(self) -> None:
        if not 0 <= self.start_tick < self.end_tick:
            raise ValueError("need 0 <= start_tick < end_tick")


@dataclass(frozen=True)
class ScaleSpec:
    """Configuration of one scale run.

    ``mode`` and ``queue`` select the execution strategy; everything
    else shapes the population and workload. Two specs differing only
    in ``mode`` or ``queue`` must produce the same digest.
    """

    n_players: int = 100_000
    n_regions: int = 8
    n_ticks: int = 240
    seed: int = 0
    mode: str = "cohort"  # or "per-player"
    queue: str = "calendar"  # or "heap"
    faults: str = "outage"  # one of FAULT_PRESETS
    #: Overrides the preset's crash rate when not None.
    crash_rate_per_tick: float | None = None
    params: CohortParams = field(default_factory=CohortParams)
    #: Extra (tick, player_id) materialisations forced by tests — must
    #: never change the digest (cohort mode only; no-ops otherwise).
    forced_materialisations: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("cohort", "per-player"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.faults not in FAULT_PRESETS:
            raise ValueError(
                f"unknown fault preset {self.faults!r}; "
                f"expected one of {FAULT_PRESETS}")
        if self.n_players <= 0 or self.n_regions <= 0 or self.n_ticks <= 0:
            raise ValueError("population, regions and ticks must be positive")


@dataclass
class RegionPercentiles:
    """Per-region latency distribution summary."""

    region: int
    n_players: int
    frames: int
    p50_ms: float
    p95_ms: float
    p99_ms: float


@dataclass
class ScaleReport:
    """Everything a scale run reports (CLI + experiment payload)."""

    n_players: int
    n_regions: int
    n_ticks: int
    seed: int
    mode: str
    queue: str
    faults: str
    digest: str
    wall_s: float
    events_scheduled: int
    materialisations: int
    reabsorptions: int
    final_materialised: int
    satisfied_fraction: float
    crashes: int
    switches: int
    reconnects: int
    migrations: int
    rebuffer_ticks: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    regions: list[RegionPercentiles]

    def to_dict(self) -> dict:
        """Stable JSON schema (CLI ``--json`` and external tooling)."""
        return dataclasses.asdict(self)

    def format_text(self) -> str:
        """Human-readable summary for the ``cloudfog scale`` CLI."""
        head = (
            f"scale run: {self.n_players:,} players / {self.n_regions} "
            f"regions / {self.n_ticks} ticks  "
            f"[mode={self.mode} queue={self.queue} faults={self.faults} "
            f"seed={self.seed}]\n"
            f"  wall {self.wall_s:.2f}s · {self.events_scheduled:,} events "
            f"· {self.materialisations:,} materialised "
            f"({self.reabsorptions:,} reabsorbed, "
            f"{self.final_materialised:,} at end)\n"
            f"  faults: {self.crashes:,} crashes · {self.switches:,} tier "
            f"switches · {self.reconnects:,} reconnects · "
            f"{self.migrations:,} migrations · "
            f"{self.rebuffer_ticks:,} rebuffer ticks\n"
            f"  satisfied: {100.0 * self.satisfied_fraction:.1f}%\n"
            f"  latency   P50 {self.p50_ms:7.1f} ms   "
            f"P95 {self.p95_ms:7.1f} ms   P99 {self.p99_ms:7.1f} ms\n"
            f"  digest    {self.digest}")
        rows = [
            f"  region {r.region:>3}  {r.n_players:>9,} players   "
            f"P50 {r.p50_ms:7.1f}   P95 {r.p95_ms:7.1f}   "
            f"P99 {r.p99_ms:7.1f} ms"
            for r in self.regions
        ]
        return "\n".join([head, *rows])


def percentiles_from_hist(hist: np.ndarray, bin_s: float,
                          qs=(0.50, 0.95, 0.99)) -> list[float]:
    """Quantiles of an integer latency histogram (bin-centre estimate)."""
    total = int(hist.sum())
    if total == 0:
        return [0.0 for _ in qs]
    cum = np.cumsum(hist)
    out = []
    for q in qs:
        rank = min(total, max(1, int(np.ceil(q * total))))
        b = int(np.searchsorted(cum, rank))
        out.append((b + 0.5) * bin_s)
    return out


def resolve_faults(spec: ScaleSpec) -> tuple[tuple[OutageWindow, ...], float]:
    """Turn a fault preset into concrete outage windows and a crash rate.

    The outage presets take region 0 — the most populous under the Zipf
    weights — offline for the middle third of the run, which is the
    worst case for the failover target's congestion.
    """
    third = max(1, spec.n_ticks // 3)
    outage = OutageWindow(
        region=0, start_tick=third,
        end_tick=min(2 * third, spec.n_ticks))
    windows: tuple[OutageWindow, ...]
    if spec.faults in ("outage", "mixed") and spec.n_regions > 1:
        windows = (outage,)
    else:
        windows = ()
    crash = PRESET_CRASH_RATE if spec.faults in ("crashes", "mixed") else 0.0
    if spec.crash_rate_per_tick is not None:
        crash = spec.crash_rate_per_tick
    return windows, crash


class CohortKernel:
    """One scale run: population build, tick driver, report."""

    def __init__(self, spec: ScaleSpec,
                 latency_params: LatencyParams | None = None):
        self.spec = spec
        self.outages, crash_rate = resolve_faults(spec)
        self.params = replace(spec.params, crash_rate_per_tick=crash_rate)

        rngs = RngRegistry(spec.seed)
        self.regions: Regions = build_regions(
            rngs.stream("regions"), spec.n_players, spec.n_regions)
        lp = latency_params or LatencyParams()
        access = sample_access_latency_s(
            rngs.stream("access"), spec.n_players, lp)
        self.latency = RegionalLatency(self.regions.centers_km, lp)
        self.cohort = PlayerCohort(
            self.regions.region_of_player, access, self.latency,
            self.params, spec.seed)
        self._capacity = (self.params.capacity_factor
                          * np.maximum(self.regions.player_counts(), 1)
                          .astype(np.float64))
        self.env = Environment(queue=spec.queue)
        self._digest = hashlib.sha256()
        self._forced: dict[int, list[int]] = {}
        for tick, pid in spec.forced_materialisations:
            self._forced.setdefault(int(tick), []).append(int(pid))
        self.materialisations = 0
        self.reabsorptions = 0
        self._cohort_mode = spec.mode == "cohort"
        self._salt_failover = 2 * spec.seed + 3

    # -- event machinery -----------------------------------------------------
    def _schedule_player(self, mp: MaterialisedPlayer, tick: int,
                         delay: float) -> None:
        ev = self.env.timeout(delay)
        ev.callbacks.append(lambda _e, t=tick: self._player_fire(mp, t))

    def _player_fire(self, mp: MaterialisedPlayer, tick: int) -> None:
        diverged = mp.advance(tick)
        if tick + 1 >= self.spec.n_ticks:
            return
        if (self._cohort_mode and not diverged
                and tick - mp.last_divergence_tick
                >= self.params.reabsorb_ticks):
            self.cohort.reabsorb(mp.player_id)
            self.reabsorptions += 1
            return
        self._schedule_player(mp, tick + 1, self.params.tick_s)

    def _spawn(self, player_id: int, tick: int) -> None:
        """Materialise ``player_id``; its chain starts at ``tick + 1``."""
        mp = self.cohort.materialise(player_id)
        mp.last_divergence_tick = tick
        self.materialisations += 1
        if tick + 1 < self.spec.n_ticks:
            self._schedule_player(mp, tick + 1, self.params.tick_s)

    def _driver_fire(self, tick: int) -> None:
        self._hash_tick(tick)
        self._apply_fault_transitions(tick)
        self._update_congestion()
        # Reschedule before any player event of this tick runs, so the
        # driver's sequence number stays the lowest at tick + 1.
        if tick + 1 < self.spec.n_ticks:
            ev = self.env.timeout(self.params.tick_s)
            ev.callbacks.append(lambda _e, t=tick + 1: self._driver_fire(t))
        if self._cohort_mode:
            idx = self.cohort.batch_indices()
            if idx.size:
                diverged = self.cohort.advance(idx, tick)
                for pid in idx[diverged]:
                    self._spawn(int(pid), tick)
            for pid in self._forced.get(tick, ()):
                if not self.cohort.materialised[pid]:
                    self._spawn(pid, tick)

    # -- tick-level inputs ---------------------------------------------------
    def _failover_target(self, region: int) -> int:
        """Nearest online region by propagation (stable argmin)."""
        row = self.latency.propagation_row_s(region)
        blocked = self.cohort.region_offline.copy()
        blocked[region] = True
        candidates = np.where(blocked, np.inf, row)
        if not np.isfinite(candidates).any():  # pragma: no cover - degenerate
            return region
        return int(np.argmin(candidates))

    def _apply_fault_transitions(self, tick: int) -> None:
        """Region-wide outage start/end — rule-homogeneous, driver-applied.

        A region failing over is not individual divergence: one rule
        moves every affected player, so the driver rewrites
        ``served_by`` for the whole block (materialised players
        included) in both modes, before any advance of this tick. The
        rule spreads the displaced load across online regions in
        proportion to capacity — dumping a top region's population onto
        its single nearest neighbour would melt that neighbour — using
        the per-player counter hash, so the assignment is deterministic
        and mode-independent. Individual crash *reconnects* still go to
        the single nearest online region (``failover_to``).
        """
        c = self.cohort
        for w in self.outages:
            if tick == w.start_tick:
                c.region_offline[w.region] = True
                c.failover_to[w.region] = self._failover_target(w.region)
                moving = np.flatnonzero(c.served_by == w.region)
                caps = np.where(c.region_offline, 0.0, self._capacity)
                cum = np.cumsum(caps)
                u = counter_u01(c.player_id[moving],
                                w.start_tick, self._salt_failover)
                c.served_by[moving] = np.searchsorted(
                    cum, u * cum[-1], side="right")
                c.migrations[moving] += 1
            if tick == w.end_tick:
                c.region_offline[w.region] = False
                c.failover_to[w.region] = w.region
                home = c.region == w.region
                c.migrations[home & (c.served_by != w.region)] += 1
                c.served_by[home] = w.region

    def _update_congestion(self) -> None:
        """Congestion from the previous tick's integer load counters."""
        c = self.cohort
        util = c.tick_load / self._capacity
        c.congestion_s = self.params.congestion_gain_s * np.maximum(
            0.0, util - 1.0)
        c.tick_load[:] = 0

    # -- digest --------------------------------------------------------------
    def _hash_tick(self, tick: int) -> None:
        """Fold the state after ticks ``< tick`` into the run digest.

        Integer aggregates only: exact sums of int64 arrays plus the
        previous tick's load counters. Array layouts are little-endian
        int64 on every supported platform.
        """
        c = self.cohort
        h = self._digest
        h.update(np.int64(tick).tobytes())
        h.update(np.bincount(
            c.tier, minlength=self.params.n_tiers).tobytes())
        h.update(c.tick_load.tobytes())
        totals = np.array(
            [c.crashes.sum(), c.switches.sum(), c.reconnects.sum(),
             c.migrations.sum(), c.rebuffer_ticks.sum(),
             c.on_time_frames.sum()], dtype=np.int64)
        h.update(totals.tobytes())

    def _hash_final(self) -> str:
        """Full-state hash: every per-player array, bit for bit."""
        c = self.cohort
        h = self._digest
        for arr in (c.buffer_s, c.position_s, c.tier, c.served_by,
                    c.last_switch, c.crashes, c.switches, c.reconnects,
                    c.migrations, c.rebuffer_ticks, c.on_time_frames,
                    c.frames, c.lat_hist):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    # -- run -----------------------------------------------------------------
    def _initial_player_ids(self):
        """Players materialised up-front in per-player mode. Subclasses
        with dynamic membership start chains for the active set only."""
        return range(self.spec.n_players)

    def run(self) -> ScaleReport:
        spec, p = self.spec, self.params
        t0 = time.perf_counter()
        # The driver's tick-0 event is created first: lowest sequence
        # number, so it precedes every player event at every tick.
        ev = self.env.timeout(0.0)
        ev.callbacks.append(lambda _e: self._driver_fire(0))
        if not self._cohort_mode:
            for pid in self._initial_player_ids():
                mp = self.cohort.materialise(pid)
                self.materialisations += 1
                self._schedule_player(mp, 0, 0.0)
        self.env.run()
        self._hash_tick(spec.n_ticks)
        digest = self._hash_final()
        wall = time.perf_counter() - t0

        c = self.cohort
        satisfied = np.count_nonzero(
            c.on_time_frames >= (1.0 - p.loss_tolerance) * c.frames)
        hist = c.lat_hist.reshape(spec.n_regions, p.n_latency_bins)
        p50, p95, p99 = percentiles_from_hist(hist.sum(axis=0),
                                              p.latency_bin_s)
        counts = self.regions.player_counts()
        regions = [
            RegionPercentiles(
                region=r, n_players=int(counts[r]),
                frames=int(hist[r].sum()),
                p50_ms=1e3 * rp[0], p95_ms=1e3 * rp[1], p99_ms=1e3 * rp[2])
            for r in range(spec.n_regions)
            for rp in [percentiles_from_hist(hist[r], p.latency_bin_s)]
        ]
        return ScaleReport(
            n_players=spec.n_players, n_regions=spec.n_regions,
            n_ticks=spec.n_ticks, seed=spec.seed, mode=spec.mode,
            queue=spec.queue, faults=spec.faults, digest=digest,
            wall_s=wall, events_scheduled=self.env._seq,
            materialisations=self.materialisations,
            reabsorptions=self.reabsorptions,
            final_materialised=c.n_materialised,
            satisfied_fraction=satisfied / spec.n_players,
            crashes=int(c.crashes.sum()), switches=int(c.switches.sum()),
            reconnects=int(c.reconnects.sum()),
            migrations=int(c.migrations.sum()),
            rebuffer_ticks=int(c.rebuffer_ticks.sum()),
            p50_ms=1e3 * p50, p95_ms=1e3 * p95, p99_ms=1e3 * p99,
            regions=regions)


def run_scale(spec: ScaleSpec,
              latency_params: LatencyParams | None = None) -> ScaleReport:
    """Build and run one scale simulation."""
    return CohortKernel(spec, latency_params).run()
