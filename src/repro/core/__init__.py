"""CloudFog core: the paper's contribution.

* :mod:`repro.core.adaptation` — receiver-driven encoding rate adaptation
  (paper §III-B, Eqs. 7–11);
* :mod:`repro.core.scheduling` — deadline-driven sender buffer scheduling
  (paper §III-C, Eqs. 12–14);
* :mod:`repro.core.assignment` — supernode assignment protocol
  (paper §III-A-3);
* :mod:`repro.core.cloud`, :mod:`repro.core.supernode`,
  :mod:`repro.core.player` — the simulated entities;
* :mod:`repro.core.infrastructure` — system variants (Cloud, EdgeCloud,
  CloudFog/B, CloudFog-adapt, CloudFog-schedule, CloudFog/A) and the
  packet-level session simulation that drives Figures 8–11.
"""

from repro.core.adaptation import AdaptationParams, RateAdaptationController
from repro.core.assignment import (
    AssignmentParams,
    AssignmentStrategy,
    STRATEGY_NAMES,
    SupernodeAssignment,
    assign_players,
    make_assignment,
)
from repro.core.cohort import CohortKernel, ScaleReport, ScaleSpec, run_scale
from repro.core.orchestration import DistributedAssignment, OrchestrationParams
from repro.core.infrastructure import (
    GamingSession,
    SessionConfig,
    SystemVariant,
    simulate_sessions,
)
from repro.core.scheduling import DeadlineSenderBuffer, SchedulingParams

__all__ = [
    "AdaptationParams",
    "AssignmentParams",
    "AssignmentStrategy",
    "CohortKernel",
    "DeadlineSenderBuffer",
    "DistributedAssignment",
    "GamingSession",
    "OrchestrationParams",
    "RateAdaptationController",
    "STRATEGY_NAMES",
    "ScaleReport",
    "ScaleSpec",
    "SchedulingParams",
    "SessionConfig",
    "SupernodeAssignment",
    "SystemVariant",
    "assign_players",
    "run_scale",
    "simulate_sessions",
]
