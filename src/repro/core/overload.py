"""Overload-graceful supernodes: admission control and load shedding.

A flash crowd should degrade QoE smoothly, never crash assignment
invariants (Stimpack's quality-vs-capacity trade, PAPERS.md). Two layers
share the same :class:`OverloadParams` watermarks:

* **Session layer** — :class:`OverloadGuard` wraps one
  :class:`~repro.core.supernode.SupernodeServer`. Load is measured in
  *effective slots*: each attached encoder costs ``bitrate / top-ladder
  bitrate`` slots, so shedding a session down the quality ladder genuinely
  frees uplink. Above the admit watermark new players are refused to
  direct-cloud fallback; above the shed watermark the highest-quality
  (lowest-priority: cheapest to degrade) sessions step down the ladder;
  only at the evict watermark are floor-level sessions detached.

* **Cohort layer** — :class:`~repro.dynamics.kernel.DynamicsKernel`
  applies the same watermarks to per-region tick-load utilisation with
  counter-hash player selection, so the shed set is a pure function of
  ``(seed, tick)`` and identical in cohort and per-player modes.

All ``overload.*`` instruments are created lazily on the first overload
event: an armed-but-never-stressed guard leaves the metrics snapshot
byte-identical to an unguarded run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.streaming.video import MAX_LEVEL, get_level

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: Bucket bounds for overload recovery-time histograms (seconds).
#: Same grid as ``repro.faults.failover.RECOVERY_BUCKETS`` so failover
#: and overload recovery distributions are directly comparable.
OVERLOAD_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True, slots=True)
class OverloadParams:
    """Watermarks of the graceful-degradation ladder.

    Utilisation is load over capacity — effective slots over
    ``capacity_slots`` at the session layer, tick load over cohort
    capacity at the cohort layer. The ladder must be ordered:
    admit ≤ shed ≤ evict.
    """

    #: Above this utilisation new admissions are refused (the player is
    #: served by direct cloud streaming instead of the fog).
    admit_watermark: float = 0.95
    #: Above this utilisation sessions are stepped down the quality
    #: ladder (shed) until utilisation drops back under it.
    shed_watermark: float = 1.0
    #: Above this utilisation even floor-quality sessions are evicted.
    evict_watermark: float = 1.25
    #: Fraction of eligible cohort players shed/evicted per overloaded
    #: tick (counter-hash selected; session layer sheds one at a time).
    shed_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.admit_watermark <= 0:
            raise ValueError("admit watermark must be positive")
        if self.shed_watermark < self.admit_watermark:
            raise ValueError("shed watermark must be >= admit watermark")
        if self.evict_watermark < self.shed_watermark:
            raise ValueError("evict watermark must be >= shed watermark")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError("shed fraction must be in (0, 1]")


class OverloadGuard:
    """Admission control + quality-ladder shedding for one supernode.

    Parameters
    ----------
    server:
        The guarded :class:`~repro.core.server.StreamingServer` (needs
        ``encoders``, ``capacity_slots`` and ``detach_player``).
    params:
        Watermarks.
    obs:
        Optional observability sink for ``overload.*`` instruments.
    """

    def __init__(
        self,
        server,
        params: OverloadParams | None = None,
        obs: "Observability | None" = None,
        component: str = "overload",
    ):
        self.server = server
        self.params = params or OverloadParams()
        self._obs = obs
        self.component = component
        self.refused = 0
        self.shed = 0
        self.evicted = 0
        #: Start time of the current overload episode, or None.
        self._episode_start_s: Optional[float] = None
        self.episode_durations_s: list[float] = []
        self._inst: dict | None = None
        self._top_bitrate = get_level(MAX_LEVEL).bitrate_bps

    # -- lazy instruments ---------------------------------------------------
    def _instruments(self) -> dict | None:
        if self._obs is None:
            return None
        if self._inst is None:
            m = self._obs.metrics
            self._inst = {
                "refused": m.counter("overload.refused"),
                "shed": m.counter("overload.shed"),
                "evicted": m.counter("overload.evicted"),
                "recovery_time": m.histogram(
                    "overload.recovery_time_s", bounds=OVERLOAD_BUCKETS),
            }
        return self._inst

    def _count(self, key: str) -> None:
        inst = self._instruments()
        if inst is not None:
            inst[key].inc()

    # -- load model ---------------------------------------------------------
    def effective_load(self) -> float:
        """Uplink demand in slots: Σ bitrate_i / top-ladder bitrate."""
        total = sum(enc.bitrate_bps for enc in self.server.encoders.values())
        return total / self._top_bitrate

    def utilization(self) -> float:
        """Effective load over contributed capacity slots."""
        return self.effective_load() / self.server.capacity_slots

    # -- admission ----------------------------------------------------------
    def admit(self, now_s: float = 0.0) -> bool:
        """Whether one more top-quality session fits under the admit
        watermark; refusals are counted (the caller falls back to direct
        cloud streaming)."""
        util_after = ((self.effective_load() + 1.0)
                      / self.server.capacity_slots)
        if util_after > self.params.admit_watermark:
            self.refused += 1
            self._count("refused")
            self._note_load(now_s)
            return False
        return True

    # -- shedding -----------------------------------------------------------
    def rebalance(self, now_s: float = 0.0) -> list[int]:
        """Shed quality (then evict) until back under the watermarks.

        Sessions at the highest quality level are stepped down first
        (ties broken by lowest player id); a session already at the
        ladder floor can only be evicted, and eviction happens only
        above the evict watermark. Returns the evicted player ids — the
        caller re-homes them on direct cloud.
        """
        p = self.params
        evicted: list[int] = []
        # Step highest-level sessions down one rung at a time.
        while self.utilization() > p.shed_watermark:
            target = None
            for pid in sorted(self.server.encoders):
                enc = self.server.encoders[pid]
                if target is None or enc.level > target[1].level:
                    target = (pid, enc)
            if target is None or not target[1].adjust_down():
                break  # empty, or everyone is at the ladder floor
            self.shed += 1
            self._count("shed")
        while (self.utilization() > p.evict_watermark
               and self.server.encoders):
            pid = min(self.server.encoders)
            self.server.detach_player(pid)
            evicted.append(pid)
            self.evicted += 1
            self._count("evicted")
        self._note_load(now_s)
        return evicted

    # -- episode tracking ---------------------------------------------------
    def _note_load(self, now_s: float) -> None:
        """Open/close the overload episode around the admit watermark."""
        over = self.utilization() > self.params.admit_watermark
        if over and self._episode_start_s is None:
            self._episode_start_s = now_s
        elif not over and self._episode_start_s is not None:
            duration = now_s - self._episode_start_s
            self._episode_start_s = None
            self.episode_durations_s.append(duration)
            inst = self._instruments()
            if inst is not None:
                inst["recovery_time"].observe(duration)

    def note_load(self, now_s: float) -> None:
        """Public hook: call after attach/detach to track recovery time."""
        self._note_load(now_s)

    # -- reporting ----------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able summary of overload handling."""
        return {
            "refused": self.refused,
            "shed": self.shed,
            "evicted": self.evicted,
            "utilization": self.utilization(),
            "episodes": len(self.episode_durations_s),
            "mean_recovery_s": (
                float(sum(self.episode_durations_s)
                      / len(self.episode_durations_s))
                if self.episode_durations_s else None),
        }
