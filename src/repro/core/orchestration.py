"""DRAGON-style distributed supernode orchestration (DESIGN.md §13).

The paper's §III-A-3 assignment is a one-shot greedy placement computed
by the cloud: the joining player takes the lowest-delay candidate with a
free slot. Under regional load skew that piles players onto the few
nearest supernodes while farther (but still qualified) nodes idle.

:class:`DistributedAssignment` replaces the cloud's decision with a
negotiation between per-supernode *agents*, in the spirit of DRAGON
(Distributed Resource AssiGnment and OrchestratioN): agents iteratively
exchange votes over who should host a joining player, each round
revealing the true load of the currently leading agent, until the vote
is stable or a configured round bound is hit. The marginal value an
agent bids — proximity times remaining-capacity share — is a decreasing
(submodular) function of its load, which is what gives the greedy
vote-agreement scheme DRAGON's (1−1/e)-style approximation flavour
while actively spreading load.

Mechanics per ``assign()`` call:

1. the candidate set is the nearest live supernodes (crashed or evicted
   nodes never enter, so they can never win a round), probed and
   filtered by ``L_max`` exactly like the greedy strategy;
2. agents vote on a shared but *stale* gossip board of announced loads:
   only the winner of each negotiation announces its true load, so the
   board drifts as placements and releases happen and later
   negotiations genuinely need rounds to re-converge;
3. each round the leading agent's announced load is refreshed with its
   true load; the negotiation converges when the leader's entry was
   already truthful and it still has a free slot. Every round either
   converges or refreshes one stale entry, so a negotiation takes at
   most ``len(candidates) + 1`` rounds — ``max_rounds`` is a hard
   cutoff after which the best *truthfully* eligible agent is taken;
4. ties break deterministically by (utility, probe delay, host id), and
   no step draws randomness: the same seed (same world, same call
   sequence) always produces the same placement.

The strategy reuses :class:`~repro.core.assignment.SupernodeAssignment`
state and failover surface (``release``/``mark_failed``/
``mark_recovered``), so chaos plans and the failover controller work
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.assignment import (
    AssignmentParams,
    AssignmentResult,
    SupernodeAssignment,
)
from repro.network.latency import LatencyModel


@dataclass(frozen=True, slots=True)
class OrchestrationParams:
    """Constants of the distributed negotiation."""

    #: Hard cutoff on negotiation rounds per joining player. The
    #: natural bound is ``candidates + 1`` (each round refreshes one
    #: stale gossip entry); the cutoff keeps adversarial configurations
    #: strictly bounded.
    max_rounds: int = 8
    #: Weight of the remaining-capacity share in an agent's bid; the
    #: complement weighs probe proximity. 0 reduces to greedy-by-delay,
    #: 1 to pure load balancing.
    load_weight: float = 0.5
    #: Candidate-horizon multiplier over the greedy protocol's
    #: ``n_candidates``: more agents hear the call, which is what lets
    #: the negotiation spread load beyond the nearest handful.
    candidate_factor: int = 2

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        if not 0.0 <= self.load_weight <= 1.0:
            raise ValueError("load_weight must lie in [0, 1]")
        if self.candidate_factor < 1:
            raise ValueError("candidate_factor must be positive")


class DistributedAssignment(SupernodeAssignment):
    """Negotiated placement behind the greedy strategy's interface.

    Capacity accounting, release, failover marking and the candidate
    table are inherited; only the per-player decision differs.
    """

    def __init__(
        self,
        latency: LatencyModel,
        supernode_host_ids: np.ndarray,
        supernode_capacities: np.ndarray,
        datacenter_host_ids: np.ndarray,
        params: AssignmentParams | None = None,
        trust=None,
        orchestration: OrchestrationParams | None = None,
    ):
        super().__init__(latency, supernode_host_ids, supernode_capacities,
                         datacenter_host_ids, params, trust=trust)
        self.orch = orchestration or OrchestrationParams()
        #: The gossip board: the load each agent last *announced*.
        #: Agents vote on these (possibly stale) figures; truth is
        #: revealed one leader per round and broadcast back to the
        #: board. Releases and failovers make entries stale again.
        self._announced = self.load.astype(float)
        # Negotiation telemetry (folded into SessionResult.load_indices).
        self.negotiations = 0
        self.rounds_total = 0
        self.max_rounds_seen = 0
        self.round_limit_hits = 0

    # -- negotiation ---------------------------------------------------------
    def candidates_for(self, player_host_id: int) -> np.ndarray:
        """The nearest live agents that hear the call (wider horizon).

        Same live/trusted filtering as the greedy table, but
        ``candidate_factor`` times as many agents participate — the
        negotiation can only spread load over agents that hear about
        the joining player.
        """
        from repro.network.geometry import pairwise_distances_km

        pool = self.sn_host_ids
        if self.trust is not None and pool.size:
            pool = np.array([h for h in pool
                             if self.trust.is_active(int(h))], dtype=int)
        if self._failed and pool.size:
            pool = np.array([h for h in pool
                             if int(h) not in self._failed], dtype=int)
        if pool.size == 0:
            return np.empty(0, dtype=int)
        dists = pairwise_distances_km(
            self.latency.positions_km[[player_host_id]],
            self.latency.positions_km[pool])[0]
        k = min(self.params.n_candidates * self.orch.candidate_factor,
                pool.size)
        order = np.argsort(dists, kind="stable")[:k]
        return pool[order]

    def assign(
        self,
        player_host_id: int,
        game_latency_req_s: float,
    ) -> AssignmentResult:
        """Negotiate one joining player among the candidate agents."""
        lmax = self.params.lmax_fraction * game_latency_req_s
        dc = self.nearest_datacenter(player_host_id)
        candidates = self.candidates_for(player_host_id)
        if candidates.size == 0:
            return AssignmentResult(player_host_id, None, dc)

        delays = self.latency.one_way_matrix_s(
            np.array([player_host_id]), candidates)[0]
        if self.params.filter_by_lmax:
            ok = delays <= lmax
            candidates, delays = candidates[ok], delays[ok]
        if candidates.size == 0:
            return AssignmentResult(player_host_id, None, dc)

        idxs = np.array([self._sn_index[int(h)] for h in candidates])
        caps = self.capacities[idxs].astype(float)
        # Proximity value in (0, 1]: monotone decreasing in probe delay,
        # well-defined even when the L_max filter is ablated off.
        proximity = lmax / (lmax + np.maximum(delays, 0.0))
        w = self.orch.load_weight

        def utilities(loads: np.ndarray) -> np.ndarray:
            free_share = np.zeros_like(caps)
            np.divide(np.maximum(caps - loads, 0.0), caps,
                      out=free_share, where=caps > 0)
            return (1.0 - w) * proximity + w * free_share

        def leader(loads: np.ndarray) -> Optional[int]:
            """Index into ``candidates`` of the winning vote, or None."""
            eligible = (caps - loads) > 0
            if not eligible.any():
                return None
            util = np.where(eligible, utilities(loads), -np.inf)
            # Deterministic tie-break: utility desc, delay asc, host asc.
            order = np.lexsort((candidates, delays, -util))
            return int(order[0])

        announced = self._announced[idxs].copy()
        true_load = self.load[idxs].astype(float)
        rounds = 0
        winner: Optional[int] = None
        hit_limit = False
        while True:
            rounds += 1
            vote = leader(announced)
            if vote is not None and announced[vote] == true_load[vote]:
                winner = vote  # the leading bid was truthful: agreed
                break
            if vote is None and np.array_equal(announced, true_load):
                break  # truthfully full everywhere: cloud fallback
            # Reveal: the leading agent's truth — or everyone's, when
            # the whole board *looks* full but might not be.
            if vote is None:
                announced = true_load.copy()
            else:
                announced[vote] = true_load[vote]
            if rounds >= self.orch.max_rounds:
                hit_limit = True
                winner = leader(true_load)  # forced settlement on truth
                break

        self.negotiations += 1
        self.rounds_total += rounds
        self.max_rounds_seen = max(self.max_rounds_seen, rounds)
        self.round_limit_hits += int(hit_limit)
        # Broadcast whatever this negotiation revealed. The winner's
        # *acceptance* is announced lazily — peers only learn of the
        # extra player by contesting the node in a later negotiation —
        # which is what keeps later rounds meaningful.
        self._announced[idxs] = announced

        if winner is None:
            return AssignmentResult(player_host_id, None, dc)

        chosen = int(candidates[winner])
        idx = self._sn_index[chosen]
        self.load[idx] += 1
        self._placements[int(player_host_id)] = idx

        # Backups: remaining truth-eligible agents by final utility.
        util = utilities(true_load)
        order = np.lexsort((candidates, delays, -util))
        backups = [int(candidates[i]) for i in order
                   if i != winner and (caps[i] - true_load[i]) > 0]
        backups = backups[:self.params.n_backups]
        return AssignmentResult(player_host_id, chosen, dc, tuple(backups))

    # -- telemetry -----------------------------------------------------------
    def stats(self) -> dict:
        """Negotiation tallies for reports and the obs registry."""
        n = max(self.negotiations, 1)
        return {
            "negotiations": self.negotiations,
            "mean_rounds": self.rounds_total / n,
            "max_rounds_seen": self.max_rounds_seen,
            "round_limit_hits": self.round_limit_hits,
        }
