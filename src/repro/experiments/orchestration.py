"""Orchestration experiment: assignment strategies head to head.

Runs the packet-level session simulation once per (strategy, load-skew,
churn) grid point and reports QoE alongside the load-distribution
indices (DESIGN.md §13), so a single sweep answers *when* the
DRAGON-style distributed negotiation beats the paper's one-shot greedy
placement. Everything is a pure function of ``(scale, seed, strategy,
skew, churn)``, so points slot into the parallel sweep engine and the
result cache like any other figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.assignment import AssignmentParams, STRATEGY_NAMES
from repro.core.infrastructure import (
    SessionConfig,
    SessionResult,
    SystemVariant,
    simulate_sessions,
)
from repro.experiments.scenarios import peersim_scenario
from repro.faults.plan import preset_plan

#: Load-skew scenarios: the Zipf exponent over metro ranks. ``uniform``
#: is the paper's testbed; ``skewed`` concentrates ~90 % of the
#: population in the top metro (launch-day regional pile-up).
SKEW_EXPONENTS = {"uniform": 1.0, "skewed": 3.5}

#: Churn scenarios: ``none`` runs fault-free; ``churn`` arms the
#: crash-recover preset so both strategies re-place players through
#: ``mark_failed``/failover mid-run.
CHURN_MODES = ("none", "churn")


@dataclass(frozen=True)
class OrchestrationConfig:
    """Constants of an orchestration run."""

    #: Session horizon — long enough for the churn grid points to
    #: detect, back off, and recover (matches the chaos experiment).
    duration_s: float = 12.0
    #: Statistics warm-up (matches the QoE experiments).
    warmup_s: float = 2.0
    #: CloudFog/A is the full system and the one placing supernodes.
    variant: SystemVariant = SystemVariant.CLOUDFOG_A
    #: Fault-preset intensity for the churn grid points.
    intensity: int = 1


def run_orchestration(
    scale: float,
    seed: int,
    strategy: str = "greedy",
    skew: str = "uniform",
    churn: str = "none",
    config: OrchestrationConfig | None = None,
) -> dict:
    """Run one grid point and report QoE + load-distribution indices."""
    if strategy not in STRATEGY_NAMES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"choose from {STRATEGY_NAMES}")
    if skew not in SKEW_EXPONENTS:
        raise ValueError(f"unknown skew {skew!r}; "
                         f"choose from {tuple(SKEW_EXPONENTS)}")
    if churn not in CHURN_MODES:
        raise ValueError(f"unknown churn {churn!r}; "
                         f"choose from {CHURN_MODES}")
    cfg = config or OrchestrationConfig()
    scenario = peersim_scenario(scale, seed=seed).with_(
        zipf_exponent=SKEW_EXPONENTS[skew])
    pop = scenario.build()
    online = scenario.online_sample(pop)
    plan = None
    if churn == "churn":
        plan = preset_plan("crash-recover", horizon_s=cfg.duration_s,
                           intensity=cfg.intensity, seed=seed)
    session_cfg = SessionConfig(
        duration_s=cfg.duration_s, warmup_s=cfg.warmup_s, faults=plan,
        assignment=AssignmentParams(strategy=strategy))
    result: SessionResult = simulate_sessions(
        pop, cfg.variant, online, session_cfg,
        edge_server_host_ids=pop.edge_server_host_ids)
    outcomes = result.outcomes
    return {
        "strategy": strategy,
        "skew": skew,
        "churn": churn,
        "n_players": len(outcomes),
        "continuity": float(np.mean([o.continuity for o in outcomes]))
        if outcomes else 0.0,
        "satisfied": float(np.mean([o.satisfied for o in outcomes]))
        if outcomes else 0.0,
        "mean_latency_s": float(np.mean(
            [o.mean_latency_s for o in outcomes
             if o.segments_received > 0] or [0.0])),
        "served_supernode": result.fraction_served_by("supernode"),
        "load_indices": result.load_indices,
        "fault_stats": result.fault_stats,
    }
