"""Dynamic population simulation — the paper's §IV churn model.

The paper's experiments run for days with "players join[ing] the system
following the Poisson distribution with an average rate of 5 players per
second" and leaving when their session ends. The per-figure drivers use
a static online snapshot for speed; this module runs the *dynamic*
version end-to-end:

* joins arrive via :class:`~repro.workload.sessions.SessionSchedule`;
* each joining player picks a game socially, runs the §III-A-3
  assignment, streams for its session duration, then leaves and releases
  its supernode slot;
* a sampler records the time series of online count, fog-served
  fraction, and supernode slot utilization.

The arrival rate scales with the population (the paper's 5/s belongs to
its 10 000-player population).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import SupernodeAssignment
from repro.core.cloud import CloudCoordinator
from repro.core.infrastructure import SessionConfig, SystemVariant
from repro.core.player import PlayerEndpoint
from repro.core.server import StreamingServer
from repro.core.supernode import SupernodeServer
from repro.dynamics.plan import DiurnalLoad, DynamicsPlan
from repro.metrics.series import FigureSeries
from repro.sim.engine import Environment
from repro.streaming.encoder import SegmentEncoder
from repro.workload.games import GAMES
from repro.workload.players import Population
from repro.workload.sessions import DEFAULT_ARRIVAL_RATE_PER_S

#: The paper's arrival rate belongs to a 10 000-player population.
PAPER_POPULATION = 10_000


@dataclass
class DynamicResult:
    """Results of one dynamic run."""

    horizon_s: float
    #: time series, sampled every ``sample_interval_s``.
    times_s: list[float] = field(default_factory=list)
    online: list[int] = field(default_factory=list)
    fog_fraction: list[float] = field(default_factory=list)
    slot_utilization: list[float] = field(default_factory=list)
    #: per-completed-session QoE.
    continuities: list[float] = field(default_factory=list)
    satisfied: list[bool] = field(default_factory=list)
    joins: int = 0
    leaves: int = 0

    @property
    def mean_online(self) -> float:
        return float(np.mean(self.online)) if self.online else 0.0

    @property
    def mean_continuity(self) -> float:
        return float(np.mean(self.continuities)) if self.continuities \
            else 1.0

    @property
    def satisfied_fraction(self) -> float:
        return float(np.mean(self.satisfied)) if self.satisfied else 1.0

    def series(self) -> list[FigureSeries]:
        out = []
        for label, ys in (("online players", self.online),
                          ("fog-served fraction", self.fog_fraction),
                          ("slot utilization", self.slot_utilization)):
            s = FigureSeries(label=label, x_label="time (s)", y_label=label)
            for t, y in zip(self.times_s, ys):
                s.add(t, float(y))
            out.append(s)
        return out


class DynamicSimulation:
    """Join/leave-driven CloudFog simulation."""

    def __init__(
        self,
        population: Population,
        variant: SystemVariant,
        horizon_s: float = 120.0,
        config: SessionConfig | None = None,
        sample_interval_s: float = 5.0,
        min_session_s: float = 20.0,
        max_session_s: float = 90.0,
        diurnal: bool = False,
        plan: DynamicsPlan | None = None,
    ):
        if not variant.uses_fog and variant is not SystemVariant.CLOUD:
            raise ValueError(
                "dynamic simulation supports Cloud and fog variants")
        self.population = population
        self.variant = variant
        self.horizon_s = horizon_s
        self.config = config or SessionConfig()
        self.sample_interval_s = sample_interval_s
        self.min_session_s = min_session_s
        self.max_session_s = max_session_s
        #: Arrival modulation comes from a dynamics plan
        #: (:mod:`repro.dynamics.plan`); the legacy ``diurnal=True``
        #: flag is a shim for a plan with one evening-peaked
        #: :class:`DiurnalLoad` whose day is compressed into the
        #: horizon — same thinning sequence, bit for bit.
        if plan is None:
            plan = DynamicsPlan(
                sources=(DiurnalLoad(day_length_s=horizon_s),)
                if diurnal else ())
        self.plan = plan
        self.diurnal = diurnal or plan.peak_rate_multiplier() > 1.0
        self.env = Environment()
        self.result = DynamicResult(horizon_s=horizon_s)
        self.cloud = CloudCoordinator(self.env, population.datacenter_ids)
        self._rng = np.random.default_rng(
            population.rngs.master_seed * 0x51ED270B % (2**63))
        self._servers: dict[int, StreamingServer] = {}
        self._online: dict[int, PlayerEndpoint] = {}
        self._playing: dict[int, int] = {}  # player -> game id
        self._sn_service: SupernodeAssignment | None = None
        if variant.uses_fog:
            n_dc = population.datacenter_ids.size
            caps = np.array([
                population.players[int(h) - n_dc].capacity_slots
                for h in population.supernode_host_ids], dtype=int)
            self._sn_service = SupernodeAssignment(
                population.latency, population.supernode_host_ids, caps,
                population.datacenter_ids, self.config.assignment)

    # -- server factory -----------------------------------------------------
    def _server_for(self, host_id: int, is_supernode: bool
                    ) -> StreamingServer:
        server = self._servers.get(host_id)
        if server is not None:
            return server
        if is_supernode:
            n_dc = self.population.datacenter_ids.size
            slots = self.population.players[host_id - n_dc].capacity_slots
            server = SupernodeServer(
                self.env, host_id, capacity_slots=slots,
                render_delay_s=self.config.render_delay_s,
                use_deadline_scheduling=self.variant.uses_scheduling,
                scheduling_params=self.config.scheduling)
        else:
            server = StreamingServer(
                self.env, host_id,
                uplink_rate_bps=self.config.dc_egress_bps,
                render_delay_s=self.config.render_delay_s,
                use_deadline_scheduling=self.variant.uses_scheduling,
                scheduling_params=self.config.scheduling)
        self._servers[host_id] = server
        return server

    # -- processes ------------------------------------------------------------
    def _arrival_proc(self):
        pop = self.population
        plan = self.plan
        rate = (DEFAULT_ARRIVAL_RATE_PER_S
                * pop.n_players / PAPER_POPULATION)
        peak_mult = plan.peak_rate_multiplier()
        peak = rate * peak_mult
        rng = self._rng
        while True:
            yield self.env.timeout(float(rng.exponential(1.0 / max(
                peak, 1e-9))))
            if self.env.now >= self.horizon_s:
                return
            if peak_mult > 1.0:
                # Thinning against the plan's diurnal envelope. A flat
                # plan (peak 1.0) skips the draw entirely, keeping the
                # RNG sequence identical to the pre-plan code path.
                accept = (rate * plan.rate_multiplier(self.env.now)
                          / peak)
                if rng.uniform() >= accept:
                    continue
            pid = int(rng.integers(pop.n_players))
            if pid in self._online:
                continue
            duration = float(rng.uniform(self.min_session_s,
                                         self.max_session_s))
            self.env.process(self._session_proc(pid, duration))

    def _session_proc(self, pid: int, duration_s: float):
        pop = self.population
        lat = pop.latency
        player = pop.players[pid]
        game = pop.social.choose_game(pid, self._playing, self._rng, GAMES)
        host = player.host_id

        served_by = "cloud"
        if self._sn_service is not None:
            res = self._sn_service.assign(host, game.latency_req_s)
            if res.uses_supernode:
                served_by = "supernode"
                site = res.supernode_host_id
            else:
                site = res.datacenter_host_id
        else:
            dc_lat = lat.one_way_matrix_s(
                np.array([host]), pop.datacenter_ids)[0]
            site = int(pop.datacenter_ids[int(np.argmin(dc_lat))])

        server = self._server_for(site, served_by == "supernode")
        downstream = lat.one_way_s(site, host)
        path_rate = lat.path_throughput_bps(site, host)
        encoder = SegmentEncoder(pid, game.latency_req_s,
                                 game.loss_tolerance)
        endpoint = PlayerEndpoint(
            self.env, pid, game, server, feedback_delay_s=downstream,
            use_adaptation=self.variant.uses_adaptation,
            adaptation_params=self.config.adaptation)
        endpoint.served_by = served_by  # type: ignore[attr-defined]
        server.attach_player(pid, encoder, endpoint.deliver,
                             downstream, path_rate)
        self._online[pid] = endpoint
        self._playing[pid] = game.game_id
        self.result.joins += 1

        if served_by == "supernode":
            l_r = self.cloud.action_to_update_delay_s(
                lat.one_way_s(host, pop.datacenter_ids[0]),
                lat.one_way_s(int(pop.datacenter_ids[0]), site))
        else:
            l_r = (lat.one_way_s(host, site) + self.cloud.compute_delay_s)

        end = min(self.env.now + duration_s, self.horizon_s)
        interval = self.config.segment_interval_s
        while self.env.now < end:
            action_time = self.env.now

            def start_render(_ev, action_time=action_time):
                server.render_and_send(pid, action_time)

            ev = self.env.timeout(l_r)
            ev.callbacks.append(start_render)
            yield self.env.timeout(interval)

        # Leave: free everything.
        server.detach_player(pid)
        if self._sn_service is not None:
            self._sn_service.release(host)
        self._online.pop(pid, None)
        self._playing.pop(pid, None)
        self.result.leaves += 1
        self.result.continuities.append(endpoint.stats.continuity)
        self.result.satisfied.append(endpoint.is_satisfied())

    def _sampler_proc(self):
        while self.env.now < self.horizon_s:
            yield self.env.timeout(self.sample_interval_s)
            n_online = len(self._online)
            fog = (np.mean([
                getattr(e, "served_by", "cloud") == "supernode"
                for e in self._online.values()])
                if self._online else 0.0)
            if self._sn_service is not None:
                caps = self._sn_service.capacities.sum()
                util = (self._sn_service.load.sum() / caps
                        if caps else 0.0)
            else:
                util = 0.0
            self.result.times_s.append(self.env.now)
            self.result.online.append(n_online)
            self.result.fog_fraction.append(float(fog))
            self.result.slot_utilization.append(float(util))

    def run(self) -> DynamicResult:
        """Run the dynamic simulation to the horizon and report."""
        self.env.process(self._arrival_proc())
        self.env.process(self._sampler_proc())
        self.env.run(until=self.horizon_s + 2.0)
        return self.result


def run_dynamic(
    population: Population,
    variant: SystemVariant = SystemVariant.CLOUDFOG_A,
    horizon_s: float = 120.0,
    config: SessionConfig | None = None,
    plan: DynamicsPlan | None = None,
) -> DynamicResult:
    """Convenience wrapper: build, run, return."""
    sim = DynamicSimulation(population, variant, horizon_s, config,
                            plan=plan)
    return sim.run()
