"""Chaos experiment: QoE under deterministic fault injection.

Runs the packet-level session simulation with a :class:`FaultPlan`
armed and reports playback/latency QoE alongside the failover
controller's recovery statistics. Everything is a pure function of
``(scale, seed, preset, intensity)``, so chaos points slot into the
parallel sweep engine and result cache like any other figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.infrastructure import (
    SessionConfig,
    SessionResult,
    SystemVariant,
    simulate_sessions,
)
from repro.experiments.scenarios import peersim_scenario
from repro.faults.plan import FaultPlan, preset_plan


@dataclass(frozen=True)
class ChaosConfig:
    """Constants of a chaos run."""

    #: Session horizon. Longer than the QoE figures' default so a
    #: mid-run crash leaves room for detection, backoff and recovery.
    duration_s: float = 12.0
    #: Statistics warm-up (matches the QoE experiments).
    warmup_s: float = 2.0
    #: System variant under test. CloudFog/A is the paper's full
    #: system and the one with supernodes to crash.
    variant: SystemVariant = SystemVariant.CLOUDFOG_A


def run_chaos(
    scale: float,
    seed: int,
    preset: str = "crash-recover",
    intensity: int = 1,
    plan: Optional[FaultPlan] = None,
    config: ChaosConfig | None = None,
) -> dict:
    """Run one chaos point and report QoE + failover statistics.

    ``plan`` overrides the ``preset``/``intensity`` pair when given
    (e.g. a plan loaded from JSON by the CLI).
    """
    cfg = config or ChaosConfig()
    scenario = peersim_scenario(scale, seed=seed)
    pop = scenario.build()
    online = scenario.online_sample(pop)
    if plan is None:
        plan = preset_plan(preset, horizon_s=cfg.duration_s,
                           intensity=intensity, seed=seed)
    session_cfg = SessionConfig(
        duration_s=cfg.duration_s, warmup_s=cfg.warmup_s, faults=plan)
    result: SessionResult = simulate_sessions(
        pop, cfg.variant, online, session_cfg,
        edge_server_host_ids=pop.edge_server_host_ids)
    outcomes = result.outcomes
    return {
        "n_players": len(outcomes),
        "n_faults": len(plan),
        "continuity": float(np.mean([o.continuity for o in outcomes]))
        if outcomes else 0.0,
        "satisfied": float(np.mean([o.satisfied for o in outcomes]))
        if outcomes else 0.0,
        "mean_latency_s": float(np.mean(
            [o.mean_latency_s for o in outcomes
             if not np.isnan(o.mean_latency_s)] or [np.nan])),
        "served_supernode": result.fraction_served_by("supernode"),
        "fault_stats": result.fault_stats,
        "plan": plan.to_dict(),
    }
