"""Supernode-load experiments — Figures 10 and 11.

Both figures stress a single supernode with a growing number of supported
players (5–25) and report the fraction of satisfied players:

* Figure 10: CloudFog-adapt vs CloudFog/B — the encoding rate adaptation
  lowers bitrates under congestion so segments keep meeting deadlines
  ("the increase rate reaches 27 % when the number of supported players
  of a supernode is 25");
* Figure 11: CloudFog-schedule vs CloudFog/B — EDF ordering plus
  tolerance-weighted packet dropping keeps tight-deadline segments on
  time when the uplink saturates.

The harness builds the microcosm directly from core classes: one
supernode with a fixed uplink, ``k`` same-metro players with the paper's
workload mix, and the standard segment cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.adaptation import AdaptationParams
from repro.core.player import PlayerEndpoint
from repro.core.scheduling import SchedulingParams
from repro.core.supernode import SupernodeServer
from repro.metrics.series import FigureSeries
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.streaming.encoder import SegmentEncoder
from repro.streaming.video import SEGMENT_DURATION_S
from repro.workload.games import GAMES


@dataclass(frozen=True)
class SupernodeLoadConfig:
    """Microcosm parameters for the Figure 10/11 sweeps."""

    #: C_j of the stressed supernode (uplink = slots × 1800 kbps).
    #: The sweep pushes to 25 supported players, which only an
    #: above-average supernode would be assigned; 10 slots (18 Mbps)
    #: puts the FIFO baseline's saturation knee inside the sweep range
    #: while leaving the adaptation floor (25 × 300 kbps) feasible.
    capacity_slots: int = 10
    #: Simulated session length.
    duration_s: float = 30.0
    #: Warmup before QoE accounting starts (convergence transient).
    warmup_s: float = 8.0
    #: l_r — action-to-supernode delay (player→cloud→supernode), mean.
    server_receive_mean_s: float = 0.045
    #: Same-metro downstream one-way latency: median and log-sigma.
    downstream_median_s: float = 0.006
    downstream_sigma: float = 0.5
    #: Render delay at the supernode.
    render_delay_s: float = 0.005
    #: Strategy constants.
    adaptation: AdaptationParams = AdaptationParams()
    scheduling: SchedulingParams = SchedulingParams()


def simulate_supernode_load(
    n_players: int,
    use_adaptation: bool,
    use_scheduling: bool,
    seed: int = 0,
    config: SupernodeLoadConfig | None = None,
) -> dict[str, float]:
    """Stress one supernode with ``n_players`` and measure QoE.

    Returns a dict with ``satisfied`` (fraction), ``continuity`` (mean),
    ``latency_s`` (mean response), and ``dropped_packets``.
    """
    if n_players < 1:
        raise ValueError("need at least one player")
    cfg = config or SupernodeLoadConfig()
    rngs = RngRegistry(seed)
    rng = rngs.stream("supernode-load")
    env = Environment()

    server = SupernodeServer(
        env, host_id=0,
        capacity_slots=cfg.capacity_slots,
        render_delay_s=cfg.render_delay_s,
        use_deadline_scheduling=use_scheduling,
        server_receive_delay_s=cfg.server_receive_mean_s,
        scheduling_params=cfg.scheduling,
    )

    endpoints: list[PlayerEndpoint] = []
    for pid in range(n_players):
        game = GAMES[int(rng.integers(len(GAMES)))]
        downstream = float(rng.lognormal(
            np.log(cfg.downstream_median_s), cfg.downstream_sigma))
        l_r = float(max(0.005, rng.normal(
            cfg.server_receive_mean_s, cfg.server_receive_mean_s * 0.2)))
        encoder = SegmentEncoder(pid, game.latency_req_s, game.loss_tolerance)
        endpoint = PlayerEndpoint(
            env, pid, game, server,
            feedback_delay_s=downstream,
            use_adaptation=use_adaptation,
            adaptation_params=cfg.adaptation,
            stats_after_s=cfg.warmup_s,
        )
        # Same-metro paths are short: throughput effectively unbounded.
        server.attach_player(pid, encoder, endpoint.deliver, downstream)
        endpoints.append(endpoint)
        env.process(_player_loop(env, server, pid, l_r, cfg, rng))

    env.run(until=cfg.duration_s + 2.0)

    continuities = [e.stats.continuity for e in endpoints]
    latencies = [e.stats.mean_latency_s for e in endpoints
                 if e.stats.latency_count > 0]
    return {
        "satisfied": float(np.mean([e.is_satisfied() for e in endpoints])),
        "continuity": float(np.mean(continuities)),
        "latency_s": float(np.mean(latencies)) if latencies else 0.0,
        "dropped_packets": float(
            getattr(server.buffer, "packets_dropped", 0)),
    }


def _player_loop(env, server, player_id, l_r, cfg, rng):
    """Generate one segment per cadence tick (phase-shifted)."""
    yield env.timeout(float(rng.uniform(0, SEGMENT_DURATION_S)))
    while env.now < cfg.duration_s:
        action_time = env.now

        def start_render(_ev, action_time=action_time):
            server.render_and_send(player_id, action_time)

        ev = env.timeout(l_r)
        ev.callbacks.append(start_render)
        yield env.timeout(SEGMENT_DURATION_S)


#: (label, use_adaptation, use_scheduling) for the paper's comparisons.
FIG10_STRATEGIES = (("CloudFog/B", False, False),
                    ("CloudFog-adapt", True, False))
FIG11_STRATEGIES = (("CloudFog/B", False, False),
                    ("CloudFog-schedule", False, True))


def satisfaction_sweep(
    loads: Sequence[int] = (5, 10, 15, 20, 25),
    strategies: Sequence[tuple[str, bool, bool]] = FIG10_STRATEGIES,
    seeds: Sequence[int] = (0, 1, 2),
    config: SupernodeLoadConfig | None = None,
) -> list[FigureSeries]:
    """Figures 10/11: satisfied fraction vs players per supernode."""
    series = [
        FigureSeries(label=label, x_label="players per supernode",
                     y_label="satisfied players")
        for label, _, _ in strategies
    ]
    for k in loads:
        for s, (label, adapt, sched) in zip(series, strategies):
            vals = [
                simulate_supernode_load(
                    int(k), adapt, sched, seed=seed, config=config)
                ["satisfied"]
                for seed in seeds
            ]
            s.add(k, float(np.mean(vals)))
    return series
