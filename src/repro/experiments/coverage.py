"""Coverage experiments — Figures 5 and 6.

* Figure 5(a)/6(a): user coverage vs number of datacenters, one line per
  network latency requirement (30–110 ms). Coverage saturates: past a
  handful of datacenters, the uncovered users are uncovered because of
  their access networks, not distance.
* Figure 5(b)/6(b): user coverage vs number of supernodes under the
  current infrastructure (5 datacenters in simulation, 2 on PlanetLab).
  Supernode capacity binds, so the assignment protocol is in the loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.coverage import capacity_aware_coverage, datacenter_coverage
from repro.metrics.series import FigureSeries
from repro.experiments.scenarios import Scenario

#: The paper's latency-requirement sweep: the Figure 2 ladder values.
DEFAULT_LATENCY_REQS_S = (0.030, 0.050, 0.070, 0.090, 0.110)


def coverage_vs_datacenters_point(
    scenario: Scenario,
    n_dc: int,
    latency_reqs_s: Sequence[float] = DEFAULT_LATENCY_REQS_S,
) -> list[float]:
    """One Figure 5(a)/6(a) sweep point: coverage per latency req.

    Task-decomposition entry point: each datacenter count rebuilds its
    population from the scenario seed alone, so points are independent
    units for the parallel sweep engine.
    """
    if n_dc < 1:
        raise ValueError("need at least one datacenter")
    pop = scenario.with_(n_datacenters=int(n_dc), n_supernodes=0,
                         n_edge_servers=0).build()
    players = pop.player_host_ids()
    return [
        datacenter_coverage(pop.latency, players, pop.datacenter_ids, req)
        for req in latency_reqs_s
    ]


def coverage_vs_datacenters(
    scenario: Scenario,
    dc_counts: Sequence[int] = (5, 10, 15, 20, 25),
    latency_reqs_s: Sequence[float] = DEFAULT_LATENCY_REQS_S,
) -> list[FigureSeries]:
    """Figure 5(a)/6(a): coverage as datacenters are added.

    Returns one series per latency requirement; x = datacenter count.
    """
    series = [
        FigureSeries(
            label=f"req={int(round(req * 1000))}ms",
            x_label="# datacenters",
            y_label="user coverage",
        )
        for req in latency_reqs_s
    ]
    for n_dc in dc_counts:
        covs = coverage_vs_datacenters_point(scenario, n_dc, latency_reqs_s)
        for s, cov in zip(series, covs):
            s.add(n_dc, cov)
    return series


def coverage_vs_supernodes(
    scenario: Scenario,
    sn_counts: Sequence[int] = (0, 100, 200, 300, 400, 500, 600),
    latency_reqs_s: Sequence[float] = DEFAULT_LATENCY_REQS_S,
) -> list[FigureSeries]:
    """Figure 5(b)/6(b): coverage as supernodes are deployed.

    Coverage is evaluated over the concurrently online (non-supernode)
    players with the §III-A-3 assignment protocol, so both latency *and*
    capacity limit what a supernode deployment buys.
    """
    series = [
        FigureSeries(
            label=f"req={int(round(req * 1000))}ms",
            x_label="# supernodes",
            y_label="user coverage",
        )
        for req in latency_reqs_s
    ]
    for n_sn in sn_counts:
        covs = coverage_vs_supernodes_point(scenario, n_sn, latency_reqs_s)
        for s, cov in zip(series, covs):
            s.add(n_sn, cov)
    return series


def coverage_vs_supernodes_point(
    scenario: Scenario,
    n_sn: int,
    latency_reqs_s: Sequence[float] = DEFAULT_LATENCY_REQS_S,
) -> list[float]:
    """One Figure 5(b)/6(b) sweep point: coverage per latency req.

    Task-decomposition entry point (see
    :func:`coverage_vs_datacenters_point`).
    """
    pop = scenario.with_(n_supernodes=int(n_sn)).build()
    online = scenario.online_sample(pop)
    sn_hosts = set(int(h) for h in pop.supernode_host_ids)
    player_hosts = np.array([
        pop.players[pid].host_id for pid in online
        if pop.players[pid].host_id not in sn_hosts
    ], dtype=int)
    caps = _supernode_capacities(pop)
    out = []
    for req in latency_reqs_s:
        if n_sn == 0:
            cov = datacenter_coverage(
                pop.latency, player_hosts, pop.datacenter_ids, req)
        else:
            cov = capacity_aware_coverage(
                pop.latency, player_hosts, req,
                pop.supernode_host_ids, caps, pop.datacenter_ids)
        out.append(cov)
    return out


def _supernode_capacities(pop) -> np.ndarray:
    """Capacity slots of each deployed supernode, in host-id order."""
    n_dc = pop.datacenter_ids.size
    return np.array([
        pop.players[int(h) - n_dc].capacity_slots
        for h in pop.supernode_host_ids
    ], dtype=int)
