"""Content-addressed on-disk cache for sweep-task results.

Each :class:`~repro.experiments.api.SweepTask` is addressed by the
SHA-256 of its canonical cache material — experiment key, task key,
runner, parameters, scale, seed and the package version — so a cache
entry can never be served to a run it does not byte-identically belong
to. Entries live under ``<root>/<digest[:2]>/<digest>.json`` and store
the task payload plus its metrics snapshot and cold timing, which is
exactly what the merge step needs; warm re-runs therefore skip the
simulation entirely and still produce the same series, digest and
merged metrics as a cold run.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
sharing a cache directory cannot corrupt entries; a torn or unreadable
entry is treated as a miss and rewritten, and additionally counted in
:attr:`ResultCache.errors` so corruption is observable instead of
folded silently into the miss count. Opening a cache sweeps ``*.tmp``
droppings left by workers killed between ``mkstemp`` and
``os.replace``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Optional


def material_digest(material: dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON of ``material``."""
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed task-result store with hit/miss accounting."""

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        #: Unreadable/torn entries served as misses, plus swallowed
        #: write failures (unwritable cache directory).
        self.errors = 0
        #: Orphaned temp files removed when the cache was opened.
        self.tmp_swept = 0
        os.makedirs(self.root, exist_ok=True)
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove ``*.tmp`` files abandoned by workers killed mid-put."""
        try:
            walker = os.walk(self.root)
            for dirpath, _subdirs, files in walker:
                for name in files:
                    if name.endswith(".tmp"):
                        try:
                            os.unlink(os.path.join(dirpath, name))
                            self.tmp_swept += 1
                        except OSError:
                            pass
        except OSError:
            pass

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    def contains(self, digest: str) -> bool:
        """Whether an entry for ``digest`` exists, without reading it
        (and without touching the hit/miss accounting) — the remote
        scheduler's cheap "I already have this blob" probe."""
        return os.path.exists(self._path(digest))

    def get(self, digest: str) -> Optional[dict[str, Any]]:
        """The stored entry for ``digest``, or ``None`` on a miss.

        An entry that exists but cannot be parsed (torn write, bad
        permissions) is a miss *and* an error, so corruption shows up
        in the accounting.
        """
        try:
            with open(self._path(digest), "r", encoding="utf-8") as fp:
                entry = json.load(fp)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            self.misses += 1
            self.errors += 1
            return None
        self.hits += 1
        return entry

    def put(self, digest: str, entry: dict[str, Any]) -> str:
        """Atomically store ``entry`` under ``digest``; returns the path."""
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                json.dump(entry, fp, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        n = 0
        for _dir, _subdirs, files in os.walk(self.root):
            n += sum(1 for f in files if f.endswith(".json"))
        return n

    def __repr__(self) -> str:
        return (f"<ResultCache {self.root!r} hits={self.hits} "
                f"misses={self.misses} errors={self.errors}>")


class BlobCache:
    """Content-addressed pickle store for whole task payloads.

    The worker daemon's local result cache. Where :class:`ResultCache`
    stores the scheduler's canonical JSON entries (data + metrics, no
    trace events — they would dwarf everything else), a worker caches
    the *entire* ``execute_task`` payload tuple as a pickle, so a warm
    worker can replay a task byte-for-byte — same floats, same tuple
    shapes — without recomputing it. Keys are the same task digests
    the scheduler computes, so the two caches agree about identity
    without ever comparing contents.

    Same durability contract as :class:`ResultCache`: atomic writes
    via temp file + ``os.replace``, a torn or unreadable entry is a
    miss, ``*.tmp`` droppings are swept on open.
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        os.makedirs(self.root, exist_ok=True)
        for dirpath, _subdirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                    except OSError:
                        pass

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    def get(self, digest: str) -> Optional[Any]:
        try:
            with open(self._path(digest), "rb") as fp:
                payload = pickle.load(fp)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: Any) -> None:
        """Atomically store ``payload``; best-effort (an unwritable
        cache never fails the task that produced the payload)."""
        path = self._path(digest)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as fp:
                pickle.dump(payload, fp,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        n = 0
        for _dir, _subdirs, files in os.walk(self.root):
            n += sum(1 for f in files if f.endswith(".pkl"))
        return n

    def __repr__(self) -> str:
        return (f"<BlobCache {self.root!r} hits={self.hits} "
                f"misses={self.misses}>")
