"""Supernode churn and backup failover (extension experiment).

The paper requires supernodes to be *stable* and to "notify the central
server of game service providers before leaving the system" (§III-A-1),
and has each player record backup supernodes at assignment time
(§III-A-3). This experiment exercises that machinery: supernodes depart
at a configurable rate (with notice), their players fail over — to their
recorded backup supernode when the strategy is on, or all the way back to
the cloud when it is off — and QoE is measured against the churn rate.

The expected result (and the reason the paper records backups): with
backups, a departure costs one switch gap; without, the affected players
inherit the full cloud path for the rest of the session.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.player import PlayerEndpoint
from repro.core.server import StreamingServer
from repro.core.supernode import SupernodeServer
from repro.dynamics.plan import DynamicsPlan, SupernodeDepartures
from repro.metrics.series import FigureSeries
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.streaming.encoder import SegmentEncoder
from repro.streaming.video import SEGMENT_DURATION_S
from repro.workload.games import GAMES


@dataclass(frozen=True)
class ChurnConfig:
    """Microcosm parameters for the churn experiment."""

    #: Number of supernodes in the neighbourhood (primary + backups).
    n_supernodes: int = 6
    #: Players per supernode at the start.
    players_per_supernode: int = 4
    #: C_j per supernode.
    capacity_slots: int = 8
    #: Simulated session length and warmup.
    duration_s: float = 60.0
    warmup_s: float = 5.0
    #: Notice a departing supernode gives before going dark (§III-A-1).
    notice_s: float = 1.0
    #: Time for a player to switch to its new serving site.
    switch_delay_s: float = 0.3
    #: l_r via the cloud for fog-served players.
    server_receive_mean_s: float = 0.045
    #: Same-metro downstream one-way latency (median, log-sigma).
    downstream_median_s: float = 0.006
    downstream_sigma: float = 0.5
    #: Cloud-path downstream latency and throughput for fallback players.
    cloud_one_way_s: float = 0.045
    cloud_path_rate_bps: float = 4e6
    render_delay_s: float = 0.005


@dataclass
class _PlayerState:
    endpoint: PlayerEndpoint
    encoder: SegmentEncoder
    server: StreamingServer
    downstream_s: float
    l_r: float


def simulate_churn(
    departures_per_minute: float | None = None,
    use_backups: bool = True,
    seed: int = 0,
    config: ChurnConfig | None = None,
    plan: DynamicsPlan | None = None,
) -> dict[str, float]:
    """Run the churn microcosm; returns QoE aggregates.

    The departure process can be given directly (a rate per minute) or
    as a dynamics plan whose :class:`SupernodeDepartures` sources sum
    to the rate — both describe the same exponential-gap process and
    draw from the same ``churn`` RNG stream in the same order, so
    ``simulate_churn(r, ...)`` and
    ``simulate_churn(plan=plan_with_rate(r), ...)`` are byte-identical.
    Returns a dict with ``continuity``, ``satisfied``, ``departures``
    (count actually executed) and ``failovers_to_cloud``.
    """
    if plan is not None:
        if departures_per_minute is not None:
            raise ValueError(
                "pass either departures_per_minute or plan=, not both")
        departures_per_minute = plan.departure_rate_per_minute()
    if departures_per_minute is None:
        raise ValueError("pass departures_per_minute or plan=")
    if departures_per_minute < 0:
        raise ValueError("departure rate must be nonnegative")
    cfg = config or ChurnConfig()
    rngs = RngRegistry(seed)
    rng = rngs.stream("churn")
    env = Environment()

    supernodes = [
        SupernodeServer(env, host_id=i, capacity_slots=cfg.capacity_slots,
                        render_delay_s=cfg.render_delay_s)
        for i in range(cfg.n_supernodes)
    ]
    alive = {sn.host_id: sn for sn in supernodes}
    cloud = StreamingServer(
        env, host_id=10_000, uplink_rate_bps=200e6,
        render_delay_s=cfg.render_delay_s)
    stats = {"departures": 0, "failovers_to_cloud": 0}

    players: dict[int, _PlayerState] = {}
    pid = 0
    for sn in supernodes:
        for _ in range(cfg.players_per_supernode):
            game = GAMES[int(rng.integers(len(GAMES)))]
            downstream = float(rng.lognormal(
                np.log(cfg.downstream_median_s), cfg.downstream_sigma))
            l_r = float(max(0.005, rng.normal(
                cfg.server_receive_mean_s, cfg.server_receive_mean_s * 0.2)))
            encoder = SegmentEncoder(
                pid, game.latency_req_s, game.loss_tolerance)
            endpoint = PlayerEndpoint(
                env, pid, game, sn, feedback_delay_s=downstream,
                use_adaptation=False, stats_after_s=cfg.warmup_s)
            sn.attach_player(pid, encoder, endpoint.deliver, downstream)
            players[pid] = _PlayerState(endpoint, encoder, sn, downstream,
                                        l_r)
            env.process(_segment_loop(env, cfg, players, pid))
            pid += 1

    def relocate(player_id: int) -> None:
        state = players[player_id]
        target: StreamingServer
        if use_backups:
            candidates = [sn for sn in alive.values()
                          if sn.n_players < sn.capacity_slots]
            target = candidates[0] if candidates else cloud
        else:
            target = cloud
        if target is cloud:
            stats["failovers_to_cloud"] += 1
            downstream = cfg.cloud_one_way_s
            path_rate = cfg.cloud_path_rate_bps
        else:
            downstream = state.downstream_s
            path_rate = float("inf")
        state.server = target
        state.endpoint.server = target
        target.attach_player(player_id, state.encoder,
                             state.endpoint.deliver, downstream, path_rate)

    def churn_proc():
        if departures_per_minute == 0:
            return
            yield  # pragma: no cover
        while env.now < cfg.duration_s:
            gap = rng.exponential(60.0 / departures_per_minute)
            yield env.timeout(gap)
            if env.now >= cfg.duration_s or len(alive) <= 1:
                continue
            victim_id = int(rng.choice(sorted(alive)))
            victim = alive.pop(victim_id)
            stats["departures"] += 1
            # Notice period: the supernode keeps serving while its
            # players are migrated.
            yield env.timeout(cfg.notice_s)
            moved = [p for p, s in players.items() if s.server is victim]
            for p in moved:
                victim.detach_player(p)

            def do_moves(_ev, moved=tuple(moved)):
                for p in moved:
                    relocate(p)

            ev = env.timeout(cfg.switch_delay_s)
            ev.callbacks.append(do_moves)

    env.process(churn_proc())
    env.run(until=cfg.duration_s + 2.0)

    endpoints = [s.endpoint for s in players.values()]
    return {
        "continuity": float(np.mean(
            [e.stats.continuity for e in endpoints])),
        "satisfied": float(np.mean(
            [e.is_satisfied() for e in endpoints])),
        "departures": float(stats["departures"]),
        "failovers_to_cloud": float(stats["failovers_to_cloud"]),
    }


def _segment_loop(env, cfg, players, player_id):
    """Generate segments toward whatever server currently holds the
    player (the indirection that makes failover possible)."""
    rng = np.random.default_rng(player_id + 1)
    yield env.timeout(float(rng.uniform(0, SEGMENT_DURATION_S)))
    while env.now < cfg.duration_s:
        state = players[player_id]
        action_time = env.now

        def start_render(_ev, action_time=action_time):
            st = players[player_id]
            current = st.server
            if player_id in current.encoders:
                current.render_and_send(player_id, action_time)
            else:
                # Mid-switch: nobody can render this action's video.
                seg = st.encoder.encode_segment(
                    action_time, env.now, state_ready_s=env.now)
                seg.drop_all()
                st.endpoint.deliver(seg, env.now)

        ev = env.timeout(state.l_r)
        ev.callbacks.append(start_render)
        yield env.timeout(SEGMENT_DURATION_S)


def churn_sweep(
    rates_per_minute=(0.0, 1.0, 2.0, 4.0, 8.0),
    seeds=(0, 1),
    config: ChurnConfig | None = None,
) -> list[FigureSeries]:
    """Continuity vs supernode churn rate, with and without backups.

    Each rate point is described as a one-source dynamics plan so the
    sweep exercises the same DSL the cohort kernel consumes; the rates
    and series shapes are unchanged from the pre-plan sweep.
    """
    with_b = FigureSeries(label="with backups",
                          x_label="supernode departures per minute",
                          y_label="playback continuity")
    without_b = FigureSeries(label="without backups (cloud fallback)",
                             x_label="supernode departures per minute",
                             y_label="playback continuity")
    for rate in rates_per_minute:
        plan = DynamicsPlan(
            sources=(SupernodeDepartures(rate_per_minute=rate),)
            if rate > 0 else ())
        for series, flag in ((with_b, True), (without_b, False)):
            vals = [simulate_churn(use_backups=flag, seed=s,
                                   config=config, plan=plan)["continuity"]
                    for s in seeds]
            series.add(rate, float(np.mean(vals)))
    return [with_b, without_b]
