"""Cloud bandwidth consumption — Figure 7.

"Figures 7(a) and 7(b) show the bandwidth consumption of the cloud versus
the number of players in the system. The result follows
Cloud > EdgeCloud > CloudFog/B."

The cloud's egress is structural, so this experiment computes it from the
assignment outcome (who serves whom) and the per-player streaming rates:

* **Cloud**: every online player streams from a datacenter → ``N × R``;
* **EdgeCloud**: edge-served players cost the *cloud* nothing (the paper
  excludes the extra servers' own egress) → ``(N − n_edge) × R``;
* **CloudFog/B**: supernode-served players cost only the update fan-out
  → ``(N − n_sn) × R + Λ × m × f_tick``.

``R`` is each player's game's initial encoding bitrate (the highest
ladder level within its latency requirement, §III-B).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.core.assignment import AssignmentParams, SupernodeAssignment
from repro.core.cloud import UPDATE_MESSAGE_BYTES
from repro.core.infrastructure import SystemVariant
from repro.experiments.scenarios import Scenario
from repro.metrics.series import FigureSeries
from repro.streaming.video import SEGMENT_DURATION_S, highest_level_for_latency
from repro.workload.games import GAMES
from repro.experiments.coverage import _supernode_capacities

#: Cloud update tick rate (one update per supernode per segment).
UPDATE_TICKS_PER_S = 1.0 / SEGMENT_DURATION_S


def _player_rates_bps(pop, online_ids: np.ndarray) -> np.ndarray:
    """Initial streaming bitrate of each online player's game."""
    rng = pop.rngs.stream("game-choice")
    playing: dict[int, int] = {}
    rates = np.empty(online_ids.size)
    for k, pid in enumerate(online_ids):
        game = pop.social.choose_game(int(pid), playing, rng, GAMES)
        playing[int(pid)] = game.game_id
        rates[k] = highest_level_for_latency(game.latency_req_s).bitrate_bps
    return rates


def bandwidth_vs_players(
    scenario: Scenario,
    player_counts: Sequence[int],
    variants: Sequence[SystemVariant] = (
        SystemVariant.CLOUD, SystemVariant.EDGECLOUD, SystemVariant.CLOUDFOG_B),
    update_message_bytes: int = UPDATE_MESSAGE_BYTES,
) -> list[FigureSeries]:
    """Figure 7: cloud egress (Mbps) vs concurrently online players."""
    pop = scenario.build()
    caps = _supernode_capacities(pop)
    series = [
        FigureSeries(label=v.value, x_label="# players",
                     y_label="cloud bandwidth (Mbps)")
        for v in variants
    ]
    for n in player_counts:
        online = scenario.online_sample(pop, n=int(n), salt=f"online-{n}")
        rates = _player_rates_bps(pop, online)
        hosts = pop.player_host_ids()[online]
        reqs = np.array([
            _rate_to_req(r) for r in rates
        ])
        for s, variant in zip(series, variants):
            egress = _cloud_egress_bps(
                pop, variant, online, hosts, rates, reqs, caps,
                update_message_bytes)
            s.add(n, egress / 1e6)
    return series


def _rate_to_req(bitrate_bps: float) -> float:
    """Latency requirement of the ladder level with this bitrate."""
    from repro.streaming.video import QUALITY_LADDER
    for ql in QUALITY_LADDER:
        if abs(ql.bitrate_bps - bitrate_bps) < 1e-6:
            return ql.latency_req_s
    return QUALITY_LADDER[-1].latency_req_s


def _cloud_egress_bps(
    pop, variant, online, hosts, rates, reqs, caps, update_message_bytes
) -> float:
    if variant is SystemVariant.CLOUD:
        return float(rates.sum())

    if variant is SystemVariant.EDGECLOUD:
        edge_ids = pop.edge_server_host_ids
        if edge_ids.size == 0:
            return float(rates.sum())
        from repro.core.infrastructure import SessionConfig
        cfg = SessionConfig()
        service = SupernodeAssignment(
            pop.latency, edge_ids,
            np.full(edge_ids.size, cfg.edge_capacity_slots, dtype=int),
            pop.datacenter_ids,
            AssignmentParams(filter_by_lmax=False))
        cloud_rate = 0.0
        for host, rate, req in zip(hosts, rates, reqs):
            res = service.assign(int(host), float(req))
            if res.uses_supernode:
                edge_lat = pop.latency.one_way_s(
                    int(host), res.supernode_host_id)
                dc_lat = pop.latency.one_way_s(
                    int(host), res.datacenter_host_id)
                if edge_lat <= dc_lat:
                    continue  # edge-served: no cloud egress
                service.release(int(host))
            cloud_rate += rate
        return cloud_rate

    if variant.uses_fog:
        service = SupernodeAssignment(
            pop.latency, pop.supernode_host_ids, caps, pop.datacenter_ids)
        cloud_rate = 0.0
        used_supernodes: set[int] = set()
        for host, rate, req in zip(hosts, rates, reqs):
            res = service.assign(int(host), float(req))
            if res.uses_supernode:
                used_supernodes.add(res.supernode_host_id)
            else:
                cloud_rate += rate
        update_rate = (8.0 * update_message_bytes * UPDATE_TICKS_PER_S
                       * len(used_supernodes))
        return cloud_rate + update_rate

    raise ValueError(f"unsupported variant {variant}")
