"""Unified execution configuration for the sweep engine.

:class:`RunConfig` collapses the ``jobs / cache / cache_dir /
resilience / resume`` keyword sprawl that used to thread through
:func:`~repro.experiments.parallel.run_spec`,
:func:`~repro.experiments.runner.run_results`,
:func:`~repro.experiments.runner.run_experiment` and
:func:`~repro.experiments.runner.run_all` into one frozen value object,
and adds the execution-backend selection the distributed fabric needs::

    run_spec(spec, scale, seed, config=RunConfig(jobs=4, cache_dir=...))
    run_spec(spec, scale, seed,
             config=RunConfig(backend="remote", launch=2))

The legacy keyword arguments still work for one release through
:func:`coerce_config`, which emits exactly one :class:`DeprecationWarning`
per call site and builds the equivalent :class:`RunConfig`.

Validation happens in one place — :meth:`RunConfig.__post_init__` — so
every entry point (library keywords, ``RunConfig.from_args`` on a parsed
CLI namespace, direct construction) rejects bad combinations with the
same message: negative ``jobs``, ``resume`` without a cache, an unknown
backend name, or a remote backend with no way to reach workers.

``jobs`` semantics (documented here once, enforced by
:func:`resolve_jobs`): ``None`` and ``0`` both mean "use every core
``os.cpu_count()`` reports"; positive integers are taken literally;
negative values are rejected.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.experiments.cache import ResultCache
from repro.experiments.resilience import DEFAULT_RESILIENCE, ResilienceConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.backends.base import ExecutionBackend


class _Unset:
    """Sentinel distinguishing "kwarg not passed" from an explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


#: Default for the deprecated legacy keywords on ``run_spec`` and friends.
_UNSET = _Unset()

#: Accepted ``backend=`` names (``"auto"`` picks inline for one worker,
#: pool otherwise).
BACKEND_NAMES = ("auto", "inline", "pool", "remote")

#: Accepted ``compress=`` policies for the remote fabric's wire
#: frames. ``"auto"`` negotiates the best codec both peers support
#: (zstd where installed, zlib otherwise); ``"none"`` keeps legacy
#: uncompressed CFW1 frames.
COMPRESS_NAMES = ("auto", "none", "zlib", "zstd")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` and ``0`` both mean "all cores" (whatever
    ``os.cpu_count()`` reports); positive integers pass through;
    negative values are rejected — there is no ``-N`` shorthand.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 or None = all cores), got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class RunConfig:
    """How one sweep executes: backend, parallelism, cache, resilience.

    The object is frozen — treat it as a value; derived state (the
    result cache built from ``cache_dir``, the memoized backend) is
    attached once and shared by every run using this config, so cache
    hit/miss accounting and a remote backend's worker fabric span a
    whole ``run_all`` instead of resetting per experiment.
    """

    #: ``"auto"`` | ``"inline"`` | ``"pool"`` | ``"remote"``, or an
    #: already-constructed :class:`ExecutionBackend`. ``"auto"`` runs
    #: inline when one worker is requested and on the pool otherwise.
    backend: Union[str, "ExecutionBackend", None] = "auto"
    #: Worker processes for the pool backend (``0``/``None`` = all
    #: cores; see :func:`resolve_jobs`).
    jobs: Optional[int] = 1
    #: Content-addressed result cache (shared artifact store for the
    #: remote backend). Built from ``cache_dir`` when not given.
    cache: Optional[ResultCache] = None
    #: Convenience: directory to build :attr:`cache` from.
    cache_dir: Optional[str] = None
    #: Retry/timeout/keep-going policy (None = the default policy).
    resilience: Optional[ResilienceConfig] = None
    #: Replay the run journal and execute only unfinished tasks.
    resume: bool = False
    #: Remote backend: ``"host:port"`` addresses of listening worker
    #: daemons to dial (``cloudfog worker --listen ...``). A comma
    #: separated string is accepted and split.
    workers: tuple = ()
    #: Remote backend: scheduler bind address for dial-in workers
    #: (``cloudfog worker --connect ...``).
    listen: Optional[str] = None
    #: Remote backend: number of loopback workers to spawn via
    #: :attr:`launcher`.
    launch: int = 0
    #: Worker launch command template; ``{addr}`` (and ``{host}``,
    #: ``{port}``) are substituted. Default: this interpreter running
    #: ``repro.cli worker --connect {addr}``. SSH-compatible, e.g.
    #: ``"ssh gpu1 cloudfog worker --connect {addr}"``.
    launcher: Optional[str] = None
    #: Remote backend: task slots per *launched* worker daemon (the
    #: default launcher passes ``--slots N``; daemons started by hand
    #: set their own). Each slot is one in-worker task process.
    slots: int = 1
    #: Remote backend: tasks queued on a worker beyond its executing
    #: slots, hiding the dispatch round-trip. 0 disables pipelining
    #: (dispatch stop-and-wait per slot) — useful under tight per-task
    #: timeouts, whose clock starts at dispatch.
    prefetch: int = 2
    #: Remote backend: wire-frame compression policy
    #: (see :data:`COMPRESS_NAMES`; ``None`` is accepted for "none").
    compress: Optional[str] = "auto"

    def __post_init__(self):
        resolve_jobs(self.jobs)  # the single jobs-validation point
        if isinstance(self.workers, str):
            parts = tuple(a for a in
                          (p.strip() for p in self.workers.split(","))
                          if a)
            object.__setattr__(self, "workers", parts)
        else:
            object.__setattr__(self, "workers", tuple(self.workers))
        name = self.backend_name
        if name not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(choose from {', '.join(BACKEND_NAMES)} or pass an "
                f"ExecutionBackend instance)")
        if self.launch < 0:
            raise ValueError(f"launch must be >= 0, got {self.launch}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.prefetch < 0:
            raise ValueError(
                f"prefetch must be >= 0, got {self.prefetch}")
        if self.compress is None:
            object.__setattr__(self, "compress", "none")
        if self.compress not in COMPRESS_NAMES:
            raise ValueError(
                f"unknown compress policy {self.compress!r} "
                f"(choose from {', '.join(COMPRESS_NAMES)})")
        if self.cache is None and self.cache_dir:
            object.__setattr__(self, "cache", ResultCache(self.cache_dir))
        if self.resume and self.cache is None:
            raise ValueError(
                "resume requires a result cache (the journal lives next "
                "to it); pass cache= or cache_dir=")
        if (name == "remote" and isinstance(self.backend, str)
                and not (self.workers or self.listen or self.launch)):
            # An already-constructed RemoteBackend instance carries its
            # own endpoints; only the by-name form needs them here.
            raise ValueError(
                "the remote backend needs at least one of workers= "
                "(addresses to dial), listen= (accept dial-in workers) "
                "or launch= (spawn loopback workers)")

    # -- derived views ----------------------------------------------------

    @property
    def backend_name(self) -> str:
        """The backend's name, normalizing None and instances."""
        if self.backend is None:
            return "auto"
        if isinstance(self.backend, str):
            return self.backend
        return getattr(self.backend, "name", "auto")

    @property
    def resolved_resilience(self) -> ResilienceConfig:
        return (self.resilience if self.resilience is not None
                else DEFAULT_RESILIENCE)

    def make_backend(self) -> "ExecutionBackend":
        """The (memoized) backend instance this config executes on.

        Every :func:`run_spec` call sharing this config reuses the same
        backend, so a remote fabric's workers persist across the
        experiments of one ``run_all``/CLI invocation.
        """
        backend = getattr(self, "_backend", None)
        if backend is None:
            backend = self._build_backend()
            object.__setattr__(self, "_backend", backend)
        return backend

    def _build_backend(self) -> "ExecutionBackend":
        from repro.experiments.backends import (
            ExecutionBackend,
            InlineBackend,
            PoolBackend,
            RemoteBackend,
        )
        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        name = self.backend_name
        if name == "auto":
            name = "pool" if resolve_jobs(self.jobs) > 1 else "inline"
        if name == "inline":
            return InlineBackend()
        if name == "pool":
            return PoolBackend(jobs=self.jobs)
        return RemoteBackend(workers=self.workers, listen=self.listen,
                             launch=self.launch, launcher=self.launcher,
                             slots=self.slots, prefetch=self.prefetch,
                             compress=self.compress)

    def close(self) -> None:
        """Tear down the memoized backend (bye frames to dial-out
        workers, terminate launched ones). Safe to call repeatedly."""
        backend = getattr(self, "_backend", None)
        if backend is not None:
            object.__setattr__(self, "_backend", None)
            backend.close()

    def __enter__(self) -> "RunConfig":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_args(cls, args) -> "RunConfig":
        """Build a config from a parsed argparse namespace.

        Reads the flags :func:`repro.cli.add_execution_args` installs;
        missing attributes fall back to the library defaults, so any
        namespace (even a bare ``argparse.Namespace()``) works.
        """
        cache_dir = getattr(args, "cache_dir", None)
        if getattr(args, "no_cache", False):
            cache_dir = None
        resilience = ResilienceConfig(
            max_retries=getattr(args, "retries", 2),
            timeout_s=getattr(args, "task_timeout", None),
            keep_going=getattr(args, "keep_going", False),
        )
        backend = getattr(args, "backend", "auto") or "auto"
        if backend == "auto" and (getattr(args, "workers", None)
                                  or getattr(args, "listen", None)
                                  or getattr(args, "launch", 0)):
            backend = "remote"  # --workers/--listen/--launch imply it
        return cls(
            backend=backend,
            jobs=getattr(args, "jobs", 1),
            cache_dir=cache_dir,
            resilience=resilience,
            resume=getattr(args, "resume", False),
            workers=getattr(args, "workers", None) or (),
            listen=getattr(args, "listen", None),
            launch=getattr(args, "launch", 0) or 0,
            launcher=getattr(args, "launcher", None),
            slots=getattr(args, "slots", 1) or 1,
            prefetch=(2 if getattr(args, "prefetch", None) is None
                      else args.prefetch),
            compress=getattr(args, "compress", "auto") or "auto",
        )


def coerce_config(config: Optional[RunConfig], *, stacklevel: int = 3,
                  **legacy) -> RunConfig:
    """Resolve a ``config=`` argument against deprecated legacy kwargs.

    ``legacy`` values equal to :data:`_UNSET` were not passed. Passing
    both a config and legacy keywords is an error; passing only legacy
    keywords emits exactly one :class:`DeprecationWarning` (per call)
    and builds the equivalent :class:`RunConfig`.
    """
    given = {k: v for k, v in legacy.items() if v is not _UNSET}
    if config is not None:
        if given:
            raise TypeError(
                "pass execution options either through config=RunConfig(...) "
                f"or the deprecated keywords ({', '.join(sorted(given))}), "
                "not both")
        return config
    if not given:
        return RunConfig()
    warnings.warn(
        "the jobs=/cache=/cache_dir=/resilience=/resume= keyword "
        "arguments are deprecated; pass config=RunConfig(backend=..., "
        "jobs=..., cache=..., resilience=..., resume=...) instead",
        DeprecationWarning, stacklevel=stacklevel)
    if given.get("resume") is None:
        given["resume"] = False
    return RunConfig(**given)
