"""The experiment catalogue: one typed spec per paper figure/extension.

Each :class:`~repro.experiments.api.ExperimentSpec` here decomposes its
figure into independent sweep tasks — one per sweep point × system
variant × seed wherever the legacy serial sweep already re-derived its
randomness per point (almost everywhere: populations are rebuilt from
the scenario seed at every point, and the per-seed microcosms seed
their own registries). Two sweeps thread RNG state *across* points and
therefore stay single tasks so their numbers match the serial code
exactly: Figure 7's game-choice stream
(:func:`repro.experiments.bandwidth.bandwidth_vs_players`) and the
gameworld partition-balance sweep.

Task runners are module-level functions registered in
:data:`TASK_RUNNERS`; a :class:`~repro.experiments.api.SweepTask`
references its runner by name, so tasks stay picklable and their cache
keys content-addressed. Merges consume ``[(task_key, payload), ...]``
in decompose order — never completion order — which is what makes a
parallel run byte-identical to a serial one.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Sequence

import numpy as np

from repro.core.infrastructure import SessionConfig, SystemVariant
from repro.experiments import bandwidth as bw
from repro.experiments import coverage as cov
from repro.experiments import economics_exp as econ
from repro.experiments import qoe
from repro.experiments import satisfaction as sat
from repro.experiments.api import ExperimentSpec, SweepTask, TaskKey
from repro.experiments.resilience import flaky_probe
from repro.experiments.scenarios import (
    Scenario,
    peersim_scenario,
    planetlab_scenario,
)
from repro.metrics.series import FigureSeries

_SCENARIOS = {
    "peersim": peersim_scenario,
    "planetlab": planetlab_scenario,
}

OrderedResults = "list[tuple[TaskKey, Any]]"


def _scenario(name: str, scale: float, seed: int) -> Scenario:
    return _SCENARIOS[name](scale, seed)


def _session_duration_s(scale: float) -> float:
    # Shorter horizons at smaller scales keep benchmark runtimes sane
    # without touching the steady-state numbers (warmup is excluded).
    return 15.0 if scale < 0.5 else 30.0


def _fragments(series: Sequence[FigureSeries]) -> dict[str, Any]:
    """Encode series (or one-point series fragments) as task payload."""
    return {"series": [s.to_dict() for s in series]}


def merge_series_fragments(ordered) -> list[FigureSeries]:
    """Concatenate per-task series fragments by identity, task order.

    Fragments with the same (label, x_label, y_label) are one logical
    line; their points concatenate in task order, which decompose
    guarantees is the serial sweep order.
    """
    by_ident: dict[tuple, FigureSeries] = {}
    order: list[tuple] = []
    for _key, data in ordered:
        for frag in data["series"]:
            ident = (frag["label"], frag["x_label"], frag["y_label"])
            s = by_ident.get(ident)
            if s is None:
                s = FigureSeries(label=frag["label"],
                                 x_label=frag["x_label"],
                                 y_label=frag["y_label"])
                by_ident[ident] = s
                order.append(ident)
            for xv, yv in zip(frag["x"], frag["y"]):
                s.add(xv, yv)
    return [by_ident[i] for i in order]


def _merge_fragments(scale: float, seed: int, ordered) -> list[FigureSeries]:
    return merge_series_fragments(ordered)


# --------------------------------------------------------------------------
# Task runners (referenced by name; run in worker processes)
# --------------------------------------------------------------------------

def _run_coverage_dc(scale: float, seed: int, p: dict) -> dict:
    scen = _scenario(p["scenario"], scale, seed)
    return _fragments(
        cov.coverage_vs_datacenters(scen, dc_counts=(int(p["n_dc"]),)))


def _run_coverage_sn(scale: float, seed: int, p: dict) -> dict:
    scen = _scenario(p["scenario"], scale, seed)
    return _fragments(
        cov.coverage_vs_supernodes(scen, sn_counts=(int(p["n_sn"]),)))


def _run_bandwidth(scale: float, seed: int, p: dict) -> dict:
    scen = _scenario(p["scenario"], scale, seed)
    return _fragments(bw.bandwidth_vs_players(scen, p["counts"]))


def _run_latency_variant(scale: float, seed: int, p: dict) -> dict:
    scen = _scenario(p["scenario"], scale, seed)
    cfg = SessionConfig(duration_s=p["duration_s"])
    s = FigureSeries(label=p["label"], x_label="system (index)",
                     y_label="avg response latency (ms)")
    s.add(p["index"],
          qoe.latency_point(scen, SystemVariant(p["variant"]), config=cfg))
    return _fragments([s])


def _run_continuity_point(scale: float, seed: int, p: dict) -> dict:
    scen = _scenario(p["scenario"], scale, seed)
    cfg = SessionConfig(duration_s=p["duration_s"])
    return _fragments(qoe.continuity_vs_players(
        scen, [int(p["n_players"])],
        variants=[SystemVariant(p["variant"])], config=cfg))


def _run_supernode_load(scale: float, seed: int, p: dict) -> dict:
    out = sat.simulate_supernode_load(
        int(p["load"]), p["adapt"], p["sched"], seed=int(p["task_seed"]))
    return {"value": out["satisfied"]}


def _run_econ_incentive(scale: float, seed: int, p: dict) -> dict:
    scen = peersim_scenario(scale, seed)
    participation, saved = econ.incentive_sweep(scen)
    return _fragments([participation, saved])


def _run_econ_frontier(scale: float, seed: int, p: dict) -> dict:
    scen = peersim_scenario(scale, seed)
    return _fragments([econ.deployment_frontier(scen)])


def _run_churn_point(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments.churn import ChurnConfig, simulate_churn
    cfg = ChurnConfig(duration_s=p["duration_s"])
    out = simulate_churn(p["rate"], p["with_backups"],
                         seed=int(p["task_seed"]), config=cfg)
    return {"value": out["continuity"]}


def _run_cooperation_point(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments.cooperation import (
        CooperationConfig,
        simulate_cooperation,
    )
    cfg = CooperationConfig(duration_s=p["duration_s"])
    out = simulate_cooperation(int(p["n_players"]), p["hot_fraction"],
                               p["cooperate"], seed=int(p["task_seed"]),
                               config=cfg)
    return {"value": out["satisfied"]}


def _run_security_point(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments.security import SecurityConfig, simulate_security
    cfg = SecurityConfig(n_sessions=int(p["n_sessions"]),
                         malicious_fraction=float(p["malicious_fraction"]))
    out = simulate_security(p["use_reputation"], seed=int(p["task_seed"]),
                            config=cfg)
    return {"value": out["tampered_rate"]}


def _run_gameworld_update(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments import gameworld_exp as gw
    return _fragments(gw.update_size_sweep(
        avatar_counts=(int(p["n_avatars"]),), aoi_radii=(p["aoi_radius"],),
        seed=int(p["task_seed"])))


def _run_gameworld_partition(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments import gameworld_exp as gw
    return _fragments(gw.partition_balance_sweep(seed=int(p["task_seed"])))


def _run_dynamic(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments.dynamic import run_dynamic
    scen = peersim_scenario(max(scale, 0.05), seed)
    pop = scen.build()
    result = run_dynamic(pop, SystemVariant.CLOUDFOG_A, horizon_s=90.0,
                         config=SessionConfig(duration_s=p["duration_s"]))
    return _fragments(result.series())


def _run_chaos_point(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments.chaos import ChaosConfig, run_chaos
    cfg = ChaosConfig(duration_s=p["duration_s"])
    out = run_chaos(scale, int(p["task_seed"]), preset=p["preset"],
                    intensity=int(p["intensity"]), config=cfg)
    fs = out["fault_stats"] or {}
    return {"value": out["continuity"],
            "recoveries": fs.get("recoveries", 0),
            "mean_recovery_time_s": fs.get("mean_recovery_time_s")}


def _run_orchestration_point(scale: float, seed: int, p: dict) -> dict:
    from repro.experiments.orchestration import (
        OrchestrationConfig,
        run_orchestration,
    )
    cfg = OrchestrationConfig(duration_s=p["duration_s"])
    out = run_orchestration(scale, int(p["task_seed"]),
                            strategy=p["strategy"], skew=p["skew"],
                            churn=p["churn"], config=cfg)
    li = out["load_indices"] or {}
    return {
        "continuity": out["continuity"],
        "satisfied": out["satisfied"],
        "gini_users": li.get("gini_users"),
        "herfindahl_users": li.get("herfindahl_users"),
        "cv_users": li.get("cv_users"),
        "gini_utilisation": li.get("gini_utilisation"),
        "negotiation": li.get("negotiation"),
    }


def _run_scale_point(scale: float, seed: int, p: dict) -> dict:
    from repro.core.cohort import ScaleSpec, run_scale

    spec = ScaleSpec(
        n_players=int(p["n_players"]), n_regions=int(p["n_regions"]),
        n_ticks=int(p["n_ticks"]), seed=int(p["task_seed"]),
        mode=p["mode"], queue=p.get("queue", "calendar"),
        faults=p.get("faults", "outage"))
    report = run_scale(spec)
    return {
        "digest": report.digest,
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "p99_ms": report.p99_ms,
        "satisfied": report.satisfied_fraction,
        "materialisations": report.materialisations,
        "events": report.events_scheduled,
    }


def _run_dynamics_point(scale: float, seed: int, p: dict) -> dict:
    from repro.core.cohort import ScaleSpec
    from repro.dynamics import DynamicsSpec, preset_dynamics, run_dynamics

    base = ScaleSpec(
        n_players=int(p["n_players"]), n_regions=int(p["n_regions"]),
        n_ticks=int(p["n_ticks"]), seed=int(p["task_seed"]),
        mode=p.get("mode", "cohort"), queue=p.get("queue", "calendar"),
        faults="none")
    horizon = base.n_ticks * base.params.tick_s
    intensity = int(p["intensity"])
    plan = preset_dynamics(
        p["scenario"], horizon_s=horizon, n_players=base.n_players,
        n_regions=base.n_regions, intensity=intensity,
        seed=int(p["task_seed"]))
    spec = DynamicsSpec(
        base=base, plan=plan,
        # Intensity 0 is the armed-but-empty anchor: full static
        # population, byte-identical to the plain scale baseline.
        initial_fraction=1.0 if intensity == 0
        else float(p.get("initial_fraction", 0.5)),
        strategy=p["strategy"])
    report = run_dynamics(spec)
    if report.invariants:
        raise AssertionError(
            "dynamics invariants violated: " + "; ".join(report.invariants))
    return {
        "digest": report.scale.digest,
        "satisfied": report.satisfied_active_fraction,
        "p99_ms": report.scale.p99_ms,
        "joins": report.joins,
        "leaves": report.leaves,
        "refused": report.refused,
        "shed": report.shed,
        "evicted": report.evicted,
        "moves": report.moves,
    }


#: Picklable dispatch table: runner name -> fn(scale, seed, params).
TASK_RUNNERS = {
    "coverage_dc": _run_coverage_dc,
    "coverage_sn": _run_coverage_sn,
    "bandwidth": _run_bandwidth,
    "latency_variant": _run_latency_variant,
    "continuity_point": _run_continuity_point,
    "supernode_load": _run_supernode_load,
    "econ_incentive": _run_econ_incentive,
    "econ_frontier": _run_econ_frontier,
    "churn_point": _run_churn_point,
    "cooperation_point": _run_cooperation_point,
    "security_point": _run_security_point,
    "gameworld_update": _run_gameworld_update,
    "gameworld_partition": _run_gameworld_partition,
    "dynamic": _run_dynamic,
    "chaos_point": _run_chaos_point,
    "orchestration_point": _run_orchestration_point,
    "scale_point": _run_scale_point,
    "dynamics_point": _run_dynamics_point,
    # Fault-injection hook (crashes/hangs/raises on the Nth attempt):
    # referenced by the resilience test-suite and the CI smoke, kept in
    # the registry so such tasks resolve inside worker processes.
    "flaky_probe": flaky_probe,
}


# --------------------------------------------------------------------------
# Decompositions and merges
# --------------------------------------------------------------------------

def _decompose_coverage_dc(name, scenario, dc_counts, scale, seed):
    return [
        SweepTask(name, (int(n),), "coverage_dc",
                  {"scenario": scenario, "n_dc": int(n)})
        for n in dc_counts
    ]


def _sn_counts(scale: float, bases: Sequence[int]) -> list[int]:
    return sorted(set(int(round(c * scale)) for c in bases))


def _decompose_coverage_sn(name, scenario, bases, scale, seed):
    return [
        SweepTask(name, (int(n),), "coverage_sn",
                  {"scenario": scenario, "n_sn": int(n)})
        for n in _sn_counts(scale, bases)
    ]


def _decompose_bandwidth(name, scenario, min_count, scale, seed):
    scen = _scenario(scenario, scale, seed)
    counts = [max(min_count, int(scen.n_online * f))
              for f in (0.25, 0.5, 0.75, 1.0)]
    # One task: the per-count game-choice draws share one RNG stream, so
    # the sweep is not point-decomposable without changing its numbers.
    return [SweepTask(name, ("sweep",), "bandwidth",
                      {"scenario": scenario, "counts": counts})]


def _decompose_latency(name, scenario, scale, seed):
    label = " | ".join(v.value for v in qoe.ALL_SYSTEMS)
    duration = _session_duration_s(scale)
    return [
        SweepTask(name, (i, v.value), "latency_variant",
                  {"scenario": scenario, "variant": v.value, "index": i,
                   "label": label, "duration_s": duration})
        for i, v in enumerate(qoe.ALL_SYSTEMS)
    ]


def _decompose_continuity(name, scenario, min_count, scale, seed):
    scen = _scenario(scenario, scale, seed)
    counts = [max(min_count, int(scen.n_online * f))
              for f in (0.5, 0.75, 1.0)]
    duration = _session_duration_s(scale)
    return [
        SweepTask(name, (int(n), v.value), "continuity_point",
                  {"scenario": scenario, "n_players": int(n),
                   "variant": v.value, "duration_s": duration})
        for n in counts
        for v in qoe.ALL_SYSTEMS
    ]


_SAT_LOADS = (5, 10, 15, 20, 25)


def _sat_seeds(scale: float, seed: int) -> list[int]:
    return list(range(seed, seed + max(1, int(3 * scale) or 1)))


def _decompose_satisfaction(name, strategies, scale, seed):
    return [
        SweepTask(name, (int(k), si, int(sv)), "supernode_load",
                  {"load": int(k), "adapt": adapt, "sched": sched,
                   "task_seed": int(sv)})
        for k in _SAT_LOADS
        for si, (_label, adapt, sched) in enumerate(strategies)
        for sv in _sat_seeds(scale, seed)
    ]


def _merge_satisfaction(name, strategies, scale, seed, ordered):
    res = dict(ordered)
    seeds = _sat_seeds(scale, seed)
    series = [
        FigureSeries(label=label, x_label="players per supernode",
                     y_label="satisfied players")
        for label, _, _ in strategies
    ]
    for k in _SAT_LOADS:
        for si, s in enumerate(series):
            vals = [res[(k, si, sv)]["value"] for sv in seeds]
            s.add(k, float(np.mean(vals)))
    return series


def _decompose_economics(scale, seed):
    return [
        SweepTask("economics", (0, "incentive"), "econ_incentive", {}),
        SweepTask("economics", (1, "frontier"), "econ_frontier", {}),
    ]


_CHURN_RATES = (0.0, 1.0, 2.0, 4.0, 8.0)
#: (flag value, series label) in the serial sweep's series order.
_CHURN_FLAGS = ((True, "with backups"),
                (False, "without backups (cloud fallback)"))


def _churn_duration_s(scale: float) -> float:
    return 30.0 + 30.0 * min(1.0, scale * 5)


def _decompose_churn(scale, seed):
    duration = _churn_duration_s(scale)
    return [
        SweepTask("churn", (rate, fi, int(sv)), "churn_point",
                  {"rate": rate, "with_backups": flag, "task_seed": int(sv),
                   "duration_s": duration})
        for rate in _CHURN_RATES
        for fi, (flag, _label) in enumerate(_CHURN_FLAGS)
        for sv in (seed, seed + 1)
    ]


def _merge_churn(scale, seed, ordered):
    res = dict(ordered)
    series = [
        FigureSeries(label=label, x_label="supernode departures per minute",
                     y_label="playback continuity")
        for _flag, label in _CHURN_FLAGS
    ]
    for rate in _CHURN_RATES:
        for fi, s in enumerate(series):
            vals = [res[(rate, fi, sv)]["value"] for sv in (seed, seed + 1)]
            s.add(rate, float(np.mean(vals)))
    return series


_COOP_FRACTIONS = (0.25, 0.4, 0.55, 0.7, 0.85)
_COOP_FLAGS = ((False, "no cooperation"), (True, "with cooperation"))
_COOP_PLAYERS = 16


def _coop_duration_s(scale: float) -> float:
    return 20.0 + 20.0 * min(1.0, scale * 5)


def _decompose_cooperation(scale, seed):
    duration = _coop_duration_s(scale)
    return [
        SweepTask("cooperation", (frac, fi, int(sv)), "cooperation_point",
                  {"hot_fraction": frac, "cooperate": flag,
                   "n_players": _COOP_PLAYERS, "task_seed": int(sv),
                   "duration_s": duration})
        for frac in _COOP_FRACTIONS
        for fi, (flag, _label) in enumerate(_COOP_FLAGS)
        for sv in (seed, seed + 1)
    ]


def _merge_cooperation(scale, seed, ordered):
    res = dict(ordered)
    series = [
        FigureSeries(label=label, x_label="fraction on the hot supernode",
                     y_label="satisfied players")
        for _flag, label in _COOP_FLAGS
    ]
    for frac in _COOP_FRACTIONS:
        for fi, s in enumerate(series):
            vals = [res[(frac, fi, sv)]["value"] for sv in (seed, seed + 1)]
            s.add(frac, float(np.mean(vals)))
    return series


_SECURITY_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4)
_SECURITY_FLAGS = ((False, "no reputation system"),
                   (True, "with reputation + eviction"))


def _security_sessions(scale: float) -> int:
    return max(500, int(3000 * scale / 0.08))


def _decompose_security(scale, seed):
    n_sessions = _security_sessions(scale)
    return [
        SweepTask("security", (frac, fi, int(sv)), "security_point",
                  {"malicious_fraction": frac, "use_reputation": flag,
                   "n_sessions": n_sessions, "task_seed": int(sv)})
        for frac in _SECURITY_FRACTIONS
        for fi, (flag, _label) in enumerate(_SECURITY_FLAGS)
        for sv in (seed, seed + 1)
    ]


def _merge_security(scale, seed, ordered):
    res = dict(ordered)
    series = [
        FigureSeries(label=label, x_label="malicious supernode fraction",
                     y_label="tampered session rate")
        for _flag, label in _SECURITY_FLAGS
    ]
    for frac in _SECURITY_FRACTIONS:
        for fi, s in enumerate(series):
            vals = [res[(frac, fi, sv)]["value"] for sv in (seed, seed + 1)]
            s.add(frac, float(np.mean(vals)))
    return series


_GAMEWORLD_RADII = (50.0, 100.0, 200.0)


def _gameworld_counts(scale: float) -> list[int]:
    return sorted(set(max(20, int(round(c * max(scale, 0.05) / 0.08)))
                      for c in (50, 100, 200, 400)))


def _decompose_gameworld(scale, seed):
    tasks = [
        SweepTask("gameworld", (int(n), radius), "gameworld_update",
                  {"n_avatars": int(n), "aoi_radius": radius,
                   "task_seed": int(seed)})
        for n in _gameworld_counts(scale)
        for radius in _GAMEWORLD_RADII
    ]
    # Single task: the partition sweep threads one RNG across points.
    tasks.append(SweepTask("gameworld", ("partition",),
                           "gameworld_partition", {"task_seed": int(seed)}))
    return tasks


def _decompose_dynamic(scale, seed):
    return [SweepTask("dynamic", ("run",), "dynamic",
                      {"duration_s": _session_duration_s(scale)})]


#: Fault presets swept by the chaos figure (``none`` is covered by the
#: zero-intensity point of every preset).
_CHAOS_PRESETS = ("crash", "crash-recover", "partition", "storm")
#: Intensity 0 is the armed-but-empty baseline — byte-identical to a
#: fault-free run, anchoring each preset's curve at the no-fault QoE.
_CHAOS_INTENSITIES = (0, 1, 2)


def _chaos_duration_s(scale: float) -> float:
    # Long enough that a mid-run crash has room to detect + recover.
    return 12.0 if scale < 0.5 else 30.0


def _decompose_chaos(scale, seed):
    duration = _chaos_duration_s(scale)
    return [
        SweepTask("chaos", (preset, intensity), "chaos_point",
                  {"preset": preset, "intensity": intensity,
                   "task_seed": int(seed), "duration_s": duration})
        for preset in _CHAOS_PRESETS
        for intensity in _CHAOS_INTENSITIES
    ]


def _merge_chaos(scale, seed, ordered):
    res = dict(ordered)
    series = []
    for preset in _CHAOS_PRESETS:
        s = FigureSeries(label=preset, x_label="fault intensity",
                         y_label="playback continuity")
        for intensity in _CHAOS_INTENSITIES:
            s.add(intensity, res[(preset, intensity)]["value"])
        series.append(s)
    return series


#: The orchestration grid: strategy × load-skew × churn (DESIGN.md §13).
_ORCH_STRATEGIES = ("greedy", "distributed")
_ORCH_SCENARIOS = (("uniform", "none"), ("uniform", "churn"),
                   ("skewed", "none"), ("skewed", "churn"))
_ORCH_METRICS = (("gini_users", "Gini (users/node)"),
                 ("herfindahl_users", "Herfindahl (users/node)"),
                 ("cv_users", "coeff. of variation (users/node)"),
                 ("continuity", "playback continuity"))


def _decompose_orchestration(scale, seed):
    duration = _chaos_duration_s(scale)
    return [
        SweepTask("orchestration", (strategy, skew, churn),
                  "orchestration_point",
                  {"strategy": strategy, "skew": skew, "churn": churn,
                   "task_seed": int(seed), "duration_s": duration})
        for strategy in _ORCH_STRATEGIES
        for skew, churn in _ORCH_SCENARIOS
    ]


def _merge_orchestration(scale, seed, ordered):
    res = dict(ordered)
    series = []
    for metric, y_label in _ORCH_METRICS:
        for strategy in _ORCH_STRATEGIES:
            s = FigureSeries(label=strategy,
                             x_label="scenario (0=uniform 1=uniform+churn "
                                     "2=skewed 3=skewed+churn)",
                             y_label=y_label)
            for i, (skew, churn) in enumerate(_ORCH_SCENARIOS):
                s.add(i, res[(strategy, skew, churn)][metric])
            series.append(s)
    return series


#: Population points of the ``scale`` experiment at scale factor 1.0.
_SCALE_POINTS = (20_000, 50_000, 100_000)
_SCALE_REGIONS = 8
_SCALE_TICKS = 120


def _scale_players(scale: float) -> list[int]:
    # The 1000-player floor can collapse points at tiny scales; dedupe
    # so task keys stay unique.
    return sorted({max(1000, int(round(n * scale)))
                   for n in _SCALE_POINTS})


def _decompose_scale(scale, seed):
    """Cohort-mode latency sweep + a per-player digest cross-check.

    The smallest population runs in *both* execution modes; the merge
    refuses to produce series if their trace digests differ, so every
    ``cloudfog`` run of this experiment re-proves the cohort kernel's
    equivalence before reporting its numbers.
    """
    base = {"n_regions": _SCALE_REGIONS, "n_ticks": _SCALE_TICKS,
            "task_seed": seed}
    players = _scale_players(scale)
    tasks = [
        SweepTask("scale", (n, "cohort"), "scale_point",
                  {**base, "n_players": n, "mode": "cohort"})
        for n in players
    ]
    tasks.append(SweepTask(
        "scale", (players[0], "per-player"), "scale_point",
        {**base, "n_players": players[0], "mode": "per-player"}))
    return tasks


def _merge_scale(scale, seed, ordered):
    res = dict(ordered)
    players = _scale_players(scale)
    check = res[(players[0], "cohort")]
    cross = res[(players[0], "per-player")]
    if check["digest"] != cross["digest"]:
        raise AssertionError(
            f"cohort/per-player digest mismatch at n={players[0]}: "
            f"{check['digest']} != {cross['digest']}")
    series = []
    for q in ("p50_ms", "p95_ms", "p99_ms"):
        s = FigureSeries(label=q[:3].upper(), x_label="players",
                         y_label="response latency (ms)")
        for n in players:
            s.add(n, res[(n, "cohort")][q])
        series.append(s)
    sat_series = FigureSeries(label="satisfied", x_label="players",
                              y_label="fraction of players")
    for n in players:
        sat_series.add(n, res[(n, "cohort")]["satisfied"])
    series.append(sat_series)
    return series


#: The dynamics grid: population scenario × intensity × overload
#: strategy (DESIGN.md §14). Intensity 0 is the armed-but-empty anchor;
#: the merge refuses to report if any anchor's digest deviates from the
#: static-baseline cross-check task.
_DYNAMICS_SCENARIOS = ("churn", "flash-crowd", "diurnal")
_DYNAMICS_INTENSITIES = (0, 1, 2)
_DYNAMICS_STRATEGIES = ("graceful", "none")
_DYNAMICS_REGIONS = 4
_DYNAMICS_TICKS = 80


def _dynamics_players(scale: float) -> int:
    return max(600, int(round(8000 * scale)))


def _decompose_dynamics(scale, seed):
    base = {"n_players": _dynamics_players(scale),
            "n_regions": _DYNAMICS_REGIONS, "n_ticks": _DYNAMICS_TICKS,
            "task_seed": int(seed)}
    tasks = [
        SweepTask("dynamics", (scenario, intensity, strategy),
                  "dynamics_point",
                  {**base, "scenario": scenario, "intensity": intensity,
                   "strategy": strategy})
        for scenario in _DYNAMICS_SCENARIOS
        for intensity in _DYNAMICS_INTENSITIES
        for strategy in _DYNAMICS_STRATEGIES
    ]
    # Static baseline the empty-plan anchors must match byte for byte.
    tasks.append(SweepTask(
        "dynamics", ("baseline",), "scale_point",
        {**base, "mode": "cohort", "faults": "none"}))
    return tasks


def _merge_dynamics(scale, seed, ordered):
    res = dict(ordered)
    baseline = res[("baseline",)]["digest"]
    for scenario in _DYNAMICS_SCENARIOS:
        for strategy in _DYNAMICS_STRATEGIES:
            anchor = res[(scenario, 0, strategy)]["digest"]
            if anchor != baseline:
                raise AssertionError(
                    f"empty-plan anchor ({scenario}, {strategy}) deviates "
                    f"from the static baseline: {anchor} != {baseline}")
    series = []
    for metric, y_label in (("satisfied", "fraction satisfied "
                                          "(participants)"),
                            ("p99_ms", "P99 response latency (ms)")):
        for scenario in _DYNAMICS_SCENARIOS:
            for strategy in _DYNAMICS_STRATEGIES:
                s = FigureSeries(label=f"{scenario}/{strategy}",
                                 x_label="dynamics intensity",
                                 y_label=y_label)
                for intensity in _DYNAMICS_INTENSITIES:
                    s.add(intensity,
                          res[(scenario, intensity, strategy)][metric])
                series.append(s)
    shed = FigureSeries(label="refused+shed+evicted (graceful)",
                        x_label="dynamics intensity",
                        y_label="sessions degraded")
    for intensity in _DYNAMICS_INTENSITIES:
        total = sum(
            res[(scenario, intensity, "graceful")][k]
            for scenario in _DYNAMICS_SCENARIOS
            for k in ("refused", "shed", "evicted"))
        shed.add(intensity, total)
    series.append(shed)
    return series


def _spec(name: str, description: str, tags: tuple[str, ...],
          decompose, merge=_merge_fragments) -> ExperimentSpec:
    return ExperimentSpec(name=name, description=description, tags=tags,
                          decompose=decompose, merge=merge)


SPECS: dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    SPECS[spec.name] = spec


_register(_spec(
    "fig5a", "user coverage vs datacenters (PeerSim)", ("paper", "peersim"),
    partial(_decompose_coverage_dc, "fig5a", "peersim", (5, 10, 15, 20, 25))))
_register(_spec(
    "fig5b", "user coverage vs supernodes (PeerSim)", ("paper", "peersim"),
    partial(_decompose_coverage_sn, "fig5b", "peersim",
            (0, 100, 200, 300, 400, 500, 600))))
_register(_spec(
    "fig6a", "user coverage vs datacenters (PlanetLab)",
    ("paper", "planetlab"),
    partial(_decompose_coverage_dc, "fig6a", "planetlab", (1, 2, 3, 4))))
_register(_spec(
    "fig6b", "user coverage vs supernodes (PlanetLab)",
    ("paper", "planetlab"),
    partial(_decompose_coverage_sn, "fig6b", "planetlab",
            (0, 50, 100, 150, 200, 250, 300))))
_register(_spec(
    "fig7a", "cloud bandwidth vs players (PeerSim)", ("paper", "peersim"),
    partial(_decompose_bandwidth, "fig7a", "peersim", 10)))
_register(_spec(
    "fig7b", "cloud bandwidth vs players (PlanetLab)",
    ("paper", "planetlab"),
    partial(_decompose_bandwidth, "fig7b", "planetlab", 5)))
_register(_spec(
    "fig8a", "response latency by system (PeerSim)", ("paper", "peersim"),
    partial(_decompose_latency, "fig8a", "peersim")))
_register(_spec(
    "fig8b", "response latency by system (PlanetLab)",
    ("paper", "planetlab"),
    partial(_decompose_latency, "fig8b", "planetlab")))
_register(_spec(
    "fig9a", "playback continuity vs players (PeerSim)",
    ("paper", "peersim"),
    partial(_decompose_continuity, "fig9a", "peersim", 10)))
_register(_spec(
    "fig9b", "playback continuity vs players (PlanetLab)",
    ("paper", "planetlab"),
    partial(_decompose_continuity, "fig9b", "planetlab", 5)))
_register(_spec(
    "fig10", "rate-adaptation satisfaction sweep", ("paper",),
    partial(_decompose_satisfaction, "fig10", sat.FIG10_STRATEGIES),
    partial(_merge_satisfaction, "fig10", sat.FIG10_STRATEGIES)))
_register(_spec(
    "fig11", "deadline-scheduling satisfaction sweep", ("paper",),
    partial(_decompose_satisfaction, "fig11", sat.FIG11_STRATEGIES),
    partial(_merge_satisfaction, "fig11", sat.FIG11_STRATEGIES)))
_register(_spec(
    "economics", "incentive sweep + deployment frontier (§III-A)",
    ("paper", "economics"), _decompose_economics))
# Extensions beyond the paper's figures (DESIGN.md §5b).
_register(_spec(
    "churn", "supernode churn and backup failover", ("extension",),
    _decompose_churn, _merge_churn))
_register(_spec(
    "cooperation", "supernode load cooperation", ("extension",),
    _decompose_cooperation, _merge_cooperation))
_register(_spec(
    "gameworld", "update size + partition balance", ("extension",),
    _decompose_gameworld))
_register(_spec(
    "security", "reputation + eviction vs tampering", ("extension",),
    _decompose_security, _merge_security))
_register(_spec(
    "dynamic", "join/leave-driven CloudFog time series", ("extension",),
    _decompose_dynamic))
_register(_spec(
    "chaos", "QoE under deterministic fault injection", ("extension", "chaos"),
    _decompose_chaos, _merge_chaos))
_register(_spec(
    "orchestration",
    "assignment strategies head to head: QoE + load-distribution indices",
    ("extension", "orchestration"),
    _decompose_orchestration, _merge_orchestration))
_register(_spec(
    "scale", "latency percentiles vs population (cohort kernel)",
    ("extension", "scale"),
    _decompose_scale, _merge_scale))
_register(_spec(
    "dynamics",
    "QoE under churn, flash crowds and diurnal load (overload strategies)",
    ("extension", "dynamics"),
    _decompose_dynamics, _merge_dynamics))


def get_spec(name: str) -> ExperimentSpec:
    """The spec registered under ``name`` (exact key)."""
    try:
        return SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(SPECS)}"
        ) from None


def spec_names() -> list[str]:
    """All registered experiment keys, in registration order."""
    return list(SPECS)
