"""Game-world substrate experiments.

Two questions the main experiments' constants depend on:

1. **How big is Λ really?** The cloud-to-supernode update size used by
   Figure 7 and the economics model is a 2 KB constant; here we measure
   it from the virtual-world substrate across avatar densities and AOI
   radii.
2. **Does kd-tree partitioning balance cloud servers?** The paper's
   related work (Bezerra & Geyer) splits the world at avatar-population
   medians; we compare its load imbalance against a uniform grid as the
   avatar distribution gets more clustered.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gameworld.interest import AreaOfInterest
from repro.gameworld.partition import (
    KdTreePartitioner,
    uniform_grid_assignment,
)
from repro.gameworld.updates import UpdateEncoder
from repro.gameworld.world import World, WorldParams
from repro.metrics.series import FigureSeries


def update_size_sweep(
    avatar_counts: Sequence[int] = (50, 100, 200, 400),
    aoi_radii: Sequence[float] = (50.0, 100.0, 200.0),
    players_per_supernode: int = 20,
    n_ticks: int = 30,
    seed: int = 0,
) -> list[FigureSeries]:
    """Measured Λ (bytes/supernode/tick) vs avatar count, per AOI radius."""
    series = [
        FigureSeries(label=f"AOI={int(r)}", x_label="# avatars",
                     y_label="update message bytes")
        for r in aoi_radii
    ]
    for n in avatar_counts:
        for s, radius in zip(series, aoi_radii):
            s.add(n, update_size_point(
                int(n), radius, players_per_supernode, n_ticks, seed))
    return series


def update_size_point(
    n_avatars: int,
    aoi_radius: float,
    players_per_supernode: int = 20,
    n_ticks: int = 30,
    seed: int = 0,
) -> float:
    """One update-size sweep point: measured Λ at one (count, radius).

    Task-decomposition entry point: each point seeds its own generator,
    so points are independent units for the parallel sweep engine. (The
    partition-balance sweep, by contrast, threads one RNG through all
    its points and stays a single task.)
    """
    rng = np.random.default_rng(seed)
    world = World(rng, n_avatars=int(n_avatars))
    encoder = UpdateEncoder(AreaOfInterest(aoi_radius))
    n_sn = max(1, int(n_avatars) // players_per_supernode)
    sn_players = {
        k: list(range(k * players_per_supernode,
                      min((k + 1) * players_per_supernode, int(n_avatars))))
        for k in range(n_sn)
    }
    return encoder.mean_update_bytes(world, rng, sn_players, n_ticks=n_ticks)


def partition_balance_sweep(
    cluster_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
    n_avatars: int = 400,
    n_regions: int = 16,
    seed: int = 0,
) -> list[FigureSeries]:
    """Load imbalance (max/mean) vs population clustering.

    ``cluster_fraction`` of avatars sit in one tight hotspot (a popular
    in-game city); the rest roam uniformly.
    """
    kd_series = FigureSeries(label="kd-tree (median splits)",
                             x_label="clustered fraction",
                             y_label="max/mean region load")
    grid_series = FigureSeries(label="uniform grid",
                               x_label="clustered fraction",
                               y_label="max/mean region load")
    map_size = 1000.0
    rng = np.random.default_rng(seed)
    for frac in cluster_fractions:
        n_hot = int(round(frac * n_avatars))
        hot = rng.normal(200.0, 25.0, size=(n_hot, 2))
        cold = rng.uniform(0, map_size, size=(n_avatars - n_hot, 2))
        positions = np.clip(np.vstack([hot, cold]), 0, map_size)

        kd = KdTreePartitioner(n_regions)
        kd_assignment = kd.partition(positions, map_size)
        kd_series.add(frac, kd.imbalance(kd_assignment))

        grid_assignment = uniform_grid_assignment(
            positions, map_size, n_regions)
        loads = np.bincount(grid_assignment, minlength=n_regions)
        grid_series.add(frac, float(loads.max() / loads.mean()))
    return [kd_series, grid_series]


def measured_lambda_bytes(
    n_avatars: int = 200,
    players_per_supernode: int = 20,
    aoi_radius: float = 100.0,
    seed: int = 0,
) -> float:
    """The headline measurement: Λ under the default configuration."""
    rng = np.random.default_rng(seed)
    world = World(rng, n_avatars=n_avatars)
    encoder = UpdateEncoder(AreaOfInterest(aoi_radius))
    n_sn = max(1, n_avatars // players_per_supernode)
    sn_players = {
        k: list(range(k * players_per_supernode,
                      min((k + 1) * players_per_supernode, n_avatars)))
        for k in range(n_sn)
    }
    return encoder.mean_update_bytes(world, rng, sn_players, n_ticks=40)
