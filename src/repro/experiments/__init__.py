"""Experiment drivers: one module per paper figure.

Every public function here regenerates the data behind one figure or
table of the paper's §IV and returns
:class:`~repro.metrics.series.FigureSeries` objects (the plotted lines).
The benchmarks under ``benchmarks/`` call these and print the rows.

===========  =====================================================
paper item   driver
===========  =====================================================
Figure 2     :data:`repro.streaming.video.QUALITY_LADDER`
Figure 5(a)  :func:`repro.experiments.coverage.coverage_vs_datacenters`
Figure 5(b)  :func:`repro.experiments.coverage.coverage_vs_supernodes`
Figure 6(a)  same drivers with the PlanetLab scenario
Figure 6(b)  same drivers with the PlanetLab scenario
Figure 7     :func:`repro.experiments.bandwidth.bandwidth_vs_players`
Figure 8     :func:`repro.experiments.qoe.latency_by_system`
Figure 9     :func:`repro.experiments.qoe.continuity_vs_players`
Figure 10    :func:`repro.experiments.satisfaction.satisfaction_sweep`
Figure 11    :func:`repro.experiments.satisfaction.satisfaction_sweep`
§III-A econ  :func:`repro.experiments.economics_exp.incentive_sweep`
===========  =====================================================

The execution surface re-exports from here (resolved lazily so the
simulation stack only imports when actually used)::

    from repro.experiments import RunConfig, run_spec, run_named

    run_named("fig5a", 0.1, 42, config=RunConfig(jobs=4))
    run_named("fig5a", 0.1, 42,
              config=RunConfig(backend="remote", launch=2))
"""

import importlib

from repro.experiments.scenarios import Scenario, peersim_scenario, planetlab_scenario

#: Lazily re-exported execution API: name -> defining module.
_EXPORTS = {
    "RunConfig": "repro.experiments.config",
    "coerce_config": "repro.experiments.config",
    "resolve_jobs": "repro.experiments.config",
    "run_spec": "repro.experiments.parallel",
    "run_named": "repro.experiments.parallel",
    "run_results": "repro.experiments.runner",
    "run_experiment": "repro.experiments.runner",
    "run_all": "repro.experiments.runner",
    "resolve_experiments": "repro.experiments.runner",
    "ExperimentSpec": "repro.experiments.api",
    "SweepTask": "repro.experiments.api",
    "RunResult": "repro.experiments.api",
    "ResultCache": "repro.experiments.cache",
    "ResilienceConfig": "repro.experiments.resilience",
    "SweepFailure": "repro.experiments.resilience",
    "TaskFailure": "repro.experiments.resilience",
    "ExecutionBackend": "repro.experiments.backends",
    "InlineBackend": "repro.experiments.backends",
    "PoolBackend": "repro.experiments.backends",
    "RemoteBackend": "repro.experiments.backends",
}

__all__ = ["Scenario", "peersim_scenario", "planetlab_scenario",
           *sorted(_EXPORTS)]


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
