"""Experiment drivers: one module per paper figure.

Every public function here regenerates the data behind one figure or
table of the paper's §IV and returns
:class:`~repro.metrics.series.FigureSeries` objects (the plotted lines).
The benchmarks under ``benchmarks/`` call these and print the rows.

===========  =====================================================
paper item   driver
===========  =====================================================
Figure 2     :data:`repro.streaming.video.QUALITY_LADDER`
Figure 5(a)  :func:`repro.experiments.coverage.coverage_vs_datacenters`
Figure 5(b)  :func:`repro.experiments.coverage.coverage_vs_supernodes`
Figure 6(a)  same drivers with the PlanetLab scenario
Figure 6(b)  same drivers with the PlanetLab scenario
Figure 7     :func:`repro.experiments.bandwidth.bandwidth_vs_players`
Figure 8     :func:`repro.experiments.qoe.latency_by_system`
Figure 9     :func:`repro.experiments.qoe.continuity_vs_players`
Figure 10    :func:`repro.experiments.satisfaction.satisfaction_sweep`
Figure 11    :func:`repro.experiments.satisfaction.satisfaction_sweep`
§III-A econ  :func:`repro.experiments.economics_exp.incentive_sweep`
===========  =====================================================
"""

from repro.experiments.scenarios import Scenario, peersim_scenario, planetlab_scenario

__all__ = ["Scenario", "peersim_scenario", "planetlab_scenario"]
