"""Backend-agnostic sweep scheduler with deterministic merging.

:func:`run_spec` executes one experiment's
:class:`~repro.experiments.api.SweepTask` decomposition on whichever
:class:`~repro.experiments.backends.ExecutionBackend` the run's
:class:`~repro.experiments.config.RunConfig` selects — serial inline,
the local process pool, or the remote worker fabric — and merges the
per-task payloads **in task order**, never completion order. Every
backend runs each task under its own private
:class:`~repro.obs.Observability` (fresh metrics registry, plus a fresh
trace recorder when the parent run traces) and the scheduler folds the
telemetry into the parent the same way, so any two runs of the same
spec are byte-identical regardless of backend: same series, same
:class:`~repro.experiments.api.RunResult` digest, same trace digest,
same merged metrics snapshot.

Randomness: tasks carry no RNG state across process (or host)
boundaries — each task re-derives its substreams from ``(scale, seed,
task params)`` exactly as the serial sweep's points do, which is what
makes the decomposition sound in the first place.

Caching: with a :class:`~repro.experiments.cache.ResultCache` attached,
each task is looked up by the SHA-256 of its content-addressed cache
material before executing and stored **as soon as its result arrives**
(completion order), so a crash late in a sweep never discards earlier
tasks' entries; warm re-runs skip the simulation wholesale. For the
remote backend the cache doubles as the fabric's shared artifact store:
workers push result blobs back with their task replies and the
scheduler writes them through the same atomic cache path. Cache
*reads* are disabled while an observability context is attached,
because a cache hit cannot replay the trace events the context would
have recorded (entries are still written, so a traced cold run warms
the cache for later untraced runs).

Resilience (see :mod:`repro.experiments.resilience`): every task runs
under a :class:`~repro.experiments.resilience.ResilienceConfig` —
bounded retries with exponential backoff for tasks that raise, per-task
wall-clock watchdogs for backends whose workers can be terminated, and
transparent recovery from dead workers (pool rebuild, remote requeue).
Because task payloads are pure functions of ``(task, scale, seed)``, a
task that fails and then succeeds on retry yields a byte-identical
series/trace/metrics digest to a run that never failed. With a cache
attached, a crash-safe JSONL journal checkpoints each completed task so
``resume=True`` re-executes only the remaining tasks after the
scheduler itself is killed — under *any* backend, since journal keys
are content-addressed, not backend-addressed. Harness-level telemetry
(``harness.retries``, ``harness.timeouts``, ``harness.worker_crashes``,
``harness.workers_lost``, ...) is emitted to the ambient
:mod:`repro.obs` context and deliberately kept *out* of the merged
:class:`RunResult` metrics, which stay inside the determinism envelope.

The pre-``RunConfig`` keyword arguments (``jobs=``, ``cache=``,
``resilience=``, ``resume=``) still work for one release and emit a
single :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Optional

import repro.obs as obs_mod
from repro import __version__
from repro.experiments.api import (
    ExperimentSpec,
    RunResult,
    TaskResult,
    now,
    series_digest,
)
from repro.experiments.backends.base import SweepPlan, execute_task  # noqa: F401 (re-export)
from repro.experiments.cache import material_digest
from repro.experiments.config import (
    _UNSET,
    RunConfig,
    coerce_config,
    resolve_jobs,  # noqa: F401 (re-export; canonical home is config)
)
from repro.experiments.resilience import (
    RunJournal,
    SweepFailure,
    TaskFailure,
    journal_path,
    run_material,
)
from repro.obs.metrics import MetricsRegistry

#: Failure kind -> harness stats counter name.
_KIND_COUNTERS = {
    "exception": "task_errors",
    "timeout": "timeouts",
    "worker-crash": "worker_crashes",
}


def run_spec(
    spec: ExperimentSpec,
    scale: float = 0.1,
    seed: int = 42,
    *,
    config: Optional[RunConfig] = None,
    obs: Optional["obs_mod.Observability"] = None,
    jobs=_UNSET,
    cache=_UNSET,
    resilience=_UNSET,
    resume=_UNSET,
) -> RunResult:
    """Execute one experiment spec and merge its tasks deterministically.

    ``config`` selects the backend, parallelism, cache and resilience
    policy (default: :class:`RunConfig`'s defaults — inline execution,
    no cache). ``resume=True`` on the config requires a cache and
    replays the run's journal so only tasks not checkpointed by an
    earlier (killed) invocation execute; the final result is
    byte-identical to an uninterrupted run on any backend.

    ``jobs=`` / ``cache=`` / ``resilience=`` / ``resume=`` keywords are
    deprecated shims for the same fields on :class:`RunConfig`.
    """
    t_run = now()
    config = coerce_config(config, jobs=jobs, cache=cache,
                           resilience=resilience, resume=resume)
    cfg = config.resolved_resilience
    cache = config.cache
    resume = config.resume
    backend = config.make_backend()

    tasks = spec.decompose(scale, seed)
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError(f"{spec.name}: duplicate task keys in decompose")

    # Trace/checker replay needs the task's event stream; a metrics-only
    # or absent context does not.
    capture = obs is not None and (obs.trace is not None
                                   or bool(obs.checkers))
    read_cache = cache is not None and obs is None

    journal: Optional[RunJournal] = None
    journal_done: set = set()
    if cache is not None:
        material = run_material(spec.name, scale, seed, __version__)
        journal = RunJournal(journal_path(cache.root, material))
        try:
            journal_done = journal.start(material, resume=resume)
        except OSError:
            # Unwritable cache directory: run without checkpointing.
            journal = None

    stats = {"retries": 0, "task_errors": 0, "timeouts": 0,
             "worker_crashes": 0, "pool_rebuilds": 0, "resumed": 0}
    failures: list[TaskFailure] = []

    digests: list[Optional[str]] = [None] * len(tasks)
    results: list[Optional[TaskResult]] = [None] * len(tasks)
    todo: list[int] = []
    for i, task in enumerate(tasks):
        if cache is not None:
            digests[i] = material_digest(
                task.cache_material(scale, seed, __version__))
        entry = cache.get(digests[i]) if read_cache else None
        if entry is not None:
            results[i] = TaskResult(task, entry["data"],
                                    metrics=entry.get("metrics", {}),
                                    cached=True)
            if resume and digests[i] in journal_done:
                stats["resumed"] += 1
        else:
            todo.append(i)

    def record(i: int, payload) -> None:
        """Accept one task's result: store, cache and checkpoint it."""
        data, metrics, events, elapsed = payload
        results[i] = TaskResult(tasks[i], data, metrics, events, elapsed)
        if cache is not None:
            try:
                cache.put(digests[i], {"data": data, "metrics": metrics,
                                       "elapsed_s": elapsed})
            except OSError:
                cache.errors += 1
            if journal is not None:
                try:
                    journal.record_task(digests[i], tasks[i].key, elapsed)
                except OSError:
                    pass

    def dispose(i: int, attempt: int, kind: str,
                message: str) -> Optional[float]:
        """Account one failed attempt; returns the backoff delay before
        the next attempt, or ``None`` when the task is terminally dead
        (raises :class:`SweepFailure` unless keep-going)."""
        stats[_KIND_COUNTERS[kind]] += 1
        if attempt <= cfg.max_retries:
            stats["retries"] += 1
            return cfg.backoff_s(attempt)
        failures.append(TaskFailure(kind, spec.name, tuple(tasks[i].key),
                                    attempt, message))
        if not cfg.keep_going:
            raise SweepFailure(failures)
        return None

    # Remote-fabric cache shipping: when cache *reads* are bypassed by
    # an attached obs context but no trace events are needed, the store
    # may still hold a task's blob — the remote backend then marks the
    # task frame ``have`` and the worker confirms by hash instead of
    # shipping the payload back. ``lookup`` redeems those hashes.
    known: Optional[set] = None
    lookup = None
    if cache is not None:
        if not read_cache and not capture:
            known = {i for i in todo
                     if digests[i] is not None
                     and cache.contains(digests[i])}

        def lookup(i: int):
            entry = cache.get(digests[i])
            if entry is None:
                return None
            return (entry["data"], entry.get("metrics", {}), (),
                    entry.get("elapsed_s", 0.0))

    plan = SweepPlan(tasks=tasks, todo=todo, scale=scale, seed=seed,
                     capture=capture, resilience=cfg, record=record,
                     dispose=dispose, stats=stats, digests=digests,
                     known=known, lookup=lookup)
    try:
        backend.execute(plan)
    except BaseException:
        # Crash-safe exit: every completed task was already cached and
        # journalled in record(); just seal the file.
        if journal is not None:
            journal.close()
        raise

    # Deterministic absorption: task order, regardless of which worker
    # (or host) produced each payload.
    merged = MetricsRegistry()
    for r in results:
        if r is None:
            continue
        if obs is not None:
            for (t, component, kind, data) in r.events:
                obs.emit(t, component, kind, **data)
            if r.metrics:
                obs.metrics.absorb_snapshot(r.metrics)
        if r.metrics:
            merged.absorb_snapshot(r.metrics)

    done = [r for r in results if r is not None]
    if failures:
        stats["tasks_salvaged"] = len(done)
    series = spec.merge(scale, seed, [(r.task.key, r.data) for r in done])
    result = RunResult(
        name=spec.name,
        series=series,
        metrics=merged.snapshot(),
        digest=series_digest(series),
        elapsed_s=now() - t_run,
        tasks_total=len(tasks),
        tasks_cached=sum(1 for r in done if r.cached),
        tasks_failed=len(failures),
        tasks_retried=stats["retries"],
        tasks_resumed=stats["resumed"],
        failures=tuple(failures),
    )
    if journal is not None:
        try:
            journal.complete(result.digest)
        except OSError:
            journal.close()

    # Harness telemetry goes to the ambient obs context, never into the
    # merged result metrics (those must match a run that never failed).
    ctx = obs if obs is not None else obs_mod.current()
    if ctx is not None:
        if failures:
            stats["tasks_failed"] = len(failures)
        for name in sorted(stats):
            if stats[name]:
                ctx.metrics.inc(f"harness.{name}", stats[name])
    return result


def run_named(
    name: str,
    scale: float = 0.1,
    seed: int = 42,
    *,
    config: Optional[RunConfig] = None,
    obs: Optional["obs_mod.Observability"] = None,
    jobs=_UNSET,
    cache=_UNSET,
    resilience=_UNSET,
    resume=_UNSET,
) -> RunResult:
    """:func:`run_spec` by exact experiment key."""
    from repro.experiments.specs import get_spec
    config = coerce_config(config, jobs=jobs, cache=cache,
                           resilience=resilience, resume=resume)
    return run_spec(get_spec(name), scale, seed, config=config, obs=obs)
