"""Parallel sweep execution engine with deterministic merging.

:func:`run_spec` executes one experiment's
:class:`~repro.experiments.api.SweepTask` decomposition either inline
(``jobs=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`
(``jobs>1``), and merges the per-task payloads **in task order**, never
completion order. Both paths run every task under its own private
:class:`~repro.obs.Observability` (fresh metrics registry, plus a fresh
trace recorder when the parent run traces) and then fold the task's
telemetry into the parent the same way, so a parallel run is
byte-identical to a serial one: same series, same
:class:`~repro.experiments.api.RunResult` digest, same trace digest,
same merged metrics snapshot.

Randomness: tasks carry no RNG state across the process boundary — each
task re-derives its substreams from ``(scale, seed, task params)``
exactly as the serial sweep's points do (populations rebuild from the
scenario seed; microcosms seed their own registries), which is what
makes the decomposition sound in the first place.

Caching: with a :class:`~repro.experiments.cache.ResultCache` attached,
each task is looked up by the SHA-256 of its content-addressed cache
material before executing and stored after; warm re-runs skip the
simulation wholesale. Cache *reads* are disabled while an observability
context is attached, because a cache hit cannot replay the trace events
the context would have recorded (entries are still written, so a traced
cold run warms the cache for later untraced runs).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

import repro.obs as obs_mod
from repro import __version__
from repro.experiments.api import (
    ExperimentSpec,
    RunResult,
    SweepTask,
    TaskResult,
    now,
    series_digest,
)
from repro.experiments.cache import ResultCache, material_digest
from repro.obs import Observability, TraceRecorder
from repro.obs.metrics import MetricsRegistry


def execute_task(task: SweepTask, scale: float, seed: int,
                 capture_trace: bool = False):
    """Run one task under a private observability context.

    Returns ``(data, metrics_snapshot, events, elapsed_s)`` where
    ``events`` is a tuple of ``(t, component, kind, data)`` tuples (empty
    unless ``capture_trace``). This is the process-pool worker: it takes
    only picklable values and resolves the runner by name from
    :data:`repro.experiments.specs.TASK_RUNNERS`.
    """
    from repro.experiments.specs import TASK_RUNNERS
    runner = TASK_RUNNERS[task.runner]
    task_obs = Observability(
        trace=TraceRecorder() if capture_trace else None)
    t0 = now()
    with obs_mod.use(task_obs):
        data = runner(scale, seed, task.params)
    elapsed = now() - t0
    events = (tuple((e.t, e.component, e.kind, e.data)
                    for e in task_obs.trace.events)
              if capture_trace else ())
    return data, task_obs.metrics.snapshot(), events, elapsed


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request (``None``/``0`` = all cores)."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return int(jobs)


def run_spec(
    spec: ExperimentSpec,
    scale: float = 0.1,
    seed: int = 42,
    *,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Execute one experiment spec and merge its tasks deterministically."""
    t_run = now()
    jobs = resolve_jobs(jobs)
    tasks = spec.decompose(scale, seed)
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError(f"{spec.name}: duplicate task keys in decompose")

    # Trace/checker replay needs the task's event stream; a metrics-only
    # or absent context does not.
    capture = obs is not None and (obs.trace is not None
                                   or bool(obs.checkers))
    read_cache = cache is not None and obs is None

    digests: list[Optional[str]] = [None] * len(tasks)
    results: list[Optional[TaskResult]] = [None] * len(tasks)
    todo: list[int] = []
    for i, task in enumerate(tasks):
        if cache is not None:
            digests[i] = material_digest(
                task.cache_material(scale, seed, __version__))
        entry = cache.get(digests[i]) if read_cache else None
        if entry is not None:
            results[i] = TaskResult(task, entry["data"],
                                    metrics=entry.get("metrics", {}),
                                    cached=True)
        else:
            todo.append(i)

    if jobs > 1 and len(todo) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            futures = [
                (i, pool.submit(execute_task, tasks[i], scale, seed, capture))
                for i in todo
            ]
            for i, future in futures:
                data, metrics, events, elapsed = future.result()
                results[i] = TaskResult(tasks[i], data, metrics, events,
                                        elapsed)
    else:
        for i in todo:
            data, metrics, events, elapsed = execute_task(
                tasks[i], scale, seed, capture)
            results[i] = TaskResult(tasks[i], data, metrics, events, elapsed)

    if cache is not None:
        for i in todo:
            r = results[i]
            cache.put(digests[i], {"data": r.data, "metrics": r.metrics,
                                   "elapsed_s": r.elapsed_s})

    # Deterministic absorption: task order, regardless of worker count.
    merged = MetricsRegistry()
    for r in results:
        if obs is not None:
            for (t, component, kind, data) in r.events:
                obs.emit(t, component, kind, **data)
            if r.metrics:
                obs.metrics.absorb_snapshot(r.metrics)
        if r.metrics:
            merged.absorb_snapshot(r.metrics)

    series = spec.merge(scale, seed, [(r.task.key, r.data) for r in results])
    return RunResult(
        name=spec.name,
        series=series,
        metrics=merged.snapshot(),
        digest=series_digest(series),
        elapsed_s=now() - t_run,
        tasks_total=len(tasks),
        tasks_cached=sum(1 for r in results if r.cached),
    )


def run_named(
    name: str,
    scale: float = 0.1,
    seed: int = 42,
    *,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
) -> RunResult:
    """:func:`run_spec` by exact experiment key."""
    from repro.experiments.specs import get_spec
    return run_spec(get_spec(name), scale, seed, jobs=jobs, cache=cache,
                    obs=obs)
