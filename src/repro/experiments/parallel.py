"""Parallel sweep execution engine with deterministic merging.

:func:`run_spec` executes one experiment's
:class:`~repro.experiments.api.SweepTask` decomposition either inline
(``jobs=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`
(``jobs>1``), and merges the per-task payloads **in task order**, never
completion order. Both paths run every task under its own private
:class:`~repro.obs.Observability` (fresh metrics registry, plus a fresh
trace recorder when the parent run traces) and then fold the task's
telemetry into the parent the same way, so a parallel run is
byte-identical to a serial one: same series, same
:class:`~repro.experiments.api.RunResult` digest, same trace digest,
same merged metrics snapshot.

Randomness: tasks carry no RNG state across the process boundary — each
task re-derives its substreams from ``(scale, seed, task params)``
exactly as the serial sweep's points do (populations rebuild from the
scenario seed; microcosms seed their own registries), which is what
makes the decomposition sound in the first place.

Caching: with a :class:`~repro.experiments.cache.ResultCache` attached,
each task is looked up by the SHA-256 of its content-addressed cache
material before executing and stored **as soon as its result arrives**
(completion order), so a crash late in a sweep never discards earlier
tasks' entries; warm re-runs skip the simulation wholesale. Cache
*reads* are disabled while an observability context is attached,
because a cache hit cannot replay the trace events the context would
have recorded (entries are still written, so a traced cold run warms
the cache for later untraced runs).

Resilience (see :mod:`repro.experiments.resilience`): every task runs
under a :class:`~repro.experiments.resilience.ResilienceConfig` —
bounded retries with exponential backoff for tasks that raise, a
per-task wall-clock watchdog that terminates hung workers (``jobs>1``)
and reschedules their tasks, and transparent pool rebuild after a
worker crash (``BrokenProcessPool``). Because task payloads are pure
functions of ``(task, scale, seed)``, a task that fails and then
succeeds on retry yields a byte-identical series/trace/metrics digest
to a run that never failed. With a cache attached, a crash-safe JSONL
journal checkpoints each completed task so ``run_spec(..., resume=True)``
(or ``cloudfog <exp> --resume``) re-executes only the remaining tasks
after the harness itself is killed. Harness-level telemetry
(``harness.retries``, ``harness.timeouts``, ``harness.worker_crashes``,
``harness.pool_rebuilds``, ``harness.tasks_failed``, ...) is emitted to
the ambient :mod:`repro.obs` context and deliberately kept *out* of the
merged :class:`RunResult` metrics, which stay inside the determinism
envelope.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from typing import Optional

import repro.obs as obs_mod
from repro import __version__
from repro.experiments.api import (
    ExperimentSpec,
    RunResult,
    SweepTask,
    TaskResult,
    now,
    series_digest,
)
from repro.experiments.cache import ResultCache, material_digest
from repro.experiments.resilience import (
    DEFAULT_RESILIENCE,
    PoolManager,
    ResilienceConfig,
    RunJournal,
    SweepFailure,
    TaskFailure,
    journal_path,
    run_material,
)
from repro.obs import Observability, TraceRecorder
from repro.obs.metrics import MetricsRegistry

#: Failure kind -> harness stats counter name.
_KIND_COUNTERS = {
    "exception": "task_errors",
    "timeout": "timeouts",
    "worker-crash": "worker_crashes",
}


def execute_task(task: SweepTask, scale: float, seed: int,
                 capture_trace: bool = False):
    """Run one task under a private observability context.

    Returns ``(data, metrics_snapshot, events, elapsed_s)`` where
    ``events`` is a tuple of ``(t, component, kind, data)`` tuples (empty
    unless ``capture_trace``). This is the process-pool worker: it takes
    only picklable values and resolves the runner by name from
    :data:`repro.experiments.specs.TASK_RUNNERS`.
    """
    from repro.experiments.specs import TASK_RUNNERS
    runner = TASK_RUNNERS.get(task.runner)
    if runner is None:
        raise KeyError(
            f"unknown task runner {task.runner!r} "
            f"(registered: {sorted(TASK_RUNNERS)})")
    task_obs = Observability(
        trace=TraceRecorder() if capture_trace else None)
    t0 = now()
    with obs_mod.use(task_obs):
        data = runner(scale, seed, task.params)
    elapsed = now() - t0
    events = (tuple((e.t, e.component, e.kind, e.data)
                    for e in task_obs.trace.events)
              if capture_trace else ())
    return data, task_obs.metrics.snapshot(), events, elapsed


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request (``None``/``0`` = all cores)."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return int(jobs)


def run_spec(
    spec: ExperimentSpec,
    scale: float = 0.1,
    seed: int = 42,
    *,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[ResilienceConfig] = None,
    resume: bool = False,
) -> RunResult:
    """Execute one experiment spec and merge its tasks deterministically.

    ``resilience`` sets the retry/timeout/keep-going policy (default:
    :data:`~repro.experiments.resilience.DEFAULT_RESILIENCE`).
    ``resume=True`` requires a cache and replays the run's journal so
    only tasks not checkpointed by an earlier (killed) invocation
    execute; the final result is byte-identical to an uninterrupted run.
    """
    t_run = now()
    cfg = resilience if resilience is not None else DEFAULT_RESILIENCE
    if resume and cache is None:
        raise ValueError("resume requires a result cache (the journal "
                         "lives next to it)")
    jobs = resolve_jobs(jobs)
    tasks = spec.decompose(scale, seed)
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError(f"{spec.name}: duplicate task keys in decompose")

    # Trace/checker replay needs the task's event stream; a metrics-only
    # or absent context does not.
    capture = obs is not None and (obs.trace is not None
                                   or bool(obs.checkers))
    read_cache = cache is not None and obs is None

    journal: Optional[RunJournal] = None
    journal_done: set = set()
    if cache is not None:
        material = run_material(spec.name, scale, seed, __version__)
        journal = RunJournal(journal_path(cache.root, material))
        try:
            journal_done = journal.start(material, resume=resume)
        except OSError:
            # Unwritable cache directory: run without checkpointing.
            journal = None

    stats = {"retries": 0, "task_errors": 0, "timeouts": 0,
             "worker_crashes": 0, "pool_rebuilds": 0, "resumed": 0}
    failures: list[TaskFailure] = []

    digests: list[Optional[str]] = [None] * len(tasks)
    results: list[Optional[TaskResult]] = [None] * len(tasks)
    todo: list[int] = []
    for i, task in enumerate(tasks):
        if cache is not None:
            digests[i] = material_digest(
                task.cache_material(scale, seed, __version__))
        entry = cache.get(digests[i]) if read_cache else None
        if entry is not None:
            results[i] = TaskResult(task, entry["data"],
                                    metrics=entry.get("metrics", {}),
                                    cached=True)
            if resume and digests[i] in journal_done:
                stats["resumed"] += 1
        else:
            todo.append(i)

    def record(i: int, payload) -> None:
        """Accept one task's result: store, cache and checkpoint it."""
        data, metrics, events, elapsed = payload
        results[i] = TaskResult(tasks[i], data, metrics, events, elapsed)
        if cache is not None:
            try:
                cache.put(digests[i], {"data": data, "metrics": metrics,
                                       "elapsed_s": elapsed})
            except OSError:
                cache.errors += 1
            if journal is not None:
                try:
                    journal.record_task(digests[i], tasks[i].key, elapsed)
                except OSError:
                    pass

    def dispose(i: int, attempt: int, kind: str,
                message: str) -> Optional[float]:
        """Account one failed attempt; returns the backoff delay before
        the next attempt, or ``None`` when the task is terminally dead
        (raises :class:`SweepFailure` unless keep-going)."""
        stats[_KIND_COUNTERS[kind]] += 1
        if attempt <= cfg.max_retries:
            stats["retries"] += 1
            return cfg.backoff_s(attempt)
        failures.append(TaskFailure(kind, spec.name, tuple(tasks[i].key),
                                    attempt, message))
        if not cfg.keep_going:
            raise SweepFailure(failures)
        return None

    try:
        if jobs > 1 and len(todo) > 1:
            _run_pooled(tasks, todo, scale, seed, capture,
                        min(jobs, len(todo)), cfg, record, dispose, stats)
        else:
            _run_inline(tasks, todo, scale, seed, capture, cfg, record,
                        dispose)
    except BaseException:
        # Crash-safe exit: every completed task was already cached and
        # journalled in record(); just seal the file.
        if journal is not None:
            journal.close()
        raise

    # Deterministic absorption: task order, regardless of worker count.
    merged = MetricsRegistry()
    for r in results:
        if r is None:
            continue
        if obs is not None:
            for (t, component, kind, data) in r.events:
                obs.emit(t, component, kind, **data)
            if r.metrics:
                obs.metrics.absorb_snapshot(r.metrics)
        if r.metrics:
            merged.absorb_snapshot(r.metrics)

    done = [r for r in results if r is not None]
    if failures:
        stats["tasks_salvaged"] = len(done)
    series = spec.merge(scale, seed, [(r.task.key, r.data) for r in done])
    result = RunResult(
        name=spec.name,
        series=series,
        metrics=merged.snapshot(),
        digest=series_digest(series),
        elapsed_s=now() - t_run,
        tasks_total=len(tasks),
        tasks_cached=sum(1 for r in done if r.cached),
        tasks_failed=len(failures),
        tasks_retried=stats["retries"],
        tasks_resumed=stats["resumed"],
        failures=tuple(failures),
    )
    if journal is not None:
        try:
            journal.complete(result.digest)
        except OSError:
            journal.close()

    # Harness telemetry goes to the ambient obs context, never into the
    # merged result metrics (those must match a run that never failed).
    ctx = obs if obs is not None else obs_mod.current()
    if ctx is not None:
        if failures:
            stats["tasks_failed"] = len(failures)
        for name in sorted(stats):
            if stats[name]:
                ctx.metrics.inc(f"harness.{name}", stats[name])
    return result


def _run_inline(tasks, todo, scale, seed, capture, cfg, record, dispose):
    """Serial execution with retry/backoff (no preemptive timeout: an
    inline task cannot be cancelled, only a worker process can)."""
    for i in todo:
        attempt = 1
        while True:
            try:
                payload = execute_task(tasks[i], scale, seed, capture)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                delay = dispose(i, attempt, "exception",
                                f"{type(exc).__name__}: {exc}")
                if delay is None:
                    break
                cfg.sleep(delay)
                attempt += 1
            else:
                record(i, payload)
                break


def _run_pooled(tasks, todo, scale, seed, capture, workers, cfg, record,
                dispose, stats):
    """Pooled execution with watchdog timeouts, retry/backoff, pool
    rebuild after worker crashes, and graceful SIGINT draining."""
    pending = deque((i, 1) for i in todo)
    backoff: list[tuple[float, int, int]] = []  # (ready_at, index, attempt)
    inflight: dict = {}  # future -> (index, attempt, deadline)
    mgr = PoolManager(workers)

    interrupted: list[bool] = []
    prev_handler = None
    if threading.current_thread() is threading.main_thread():
        try:
            prev_handler = signal.signal(
                signal.SIGINT, lambda _s, _f: interrupted.append(True))
        except ValueError:  # pragma: no cover - non-main interpreter
            prev_handler = None

    def requeue_or_fail(i, attempt, kind, message):
        delay = dispose(i, attempt, kind, message)
        if delay is not None:
            backoff.append((time.monotonic() + delay, i, attempt + 1))

    def salvage_or(fut, fallback):
        """Collect a future that finished despite pool trouble, else
        apply ``fallback`` to its task."""
        i, attempt, _deadline = inflight.pop(fut)
        if fut.done() and not fut.cancelled():
            try:
                record(i, fut.result())
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException:
                pass
        fallback(i, attempt)

    try:
        while pending or backoff or inflight:
            if interrupted:
                raise KeyboardInterrupt
            nowm = time.monotonic()
            if backoff:
                ready = sorted(b for b in backoff if b[0] <= nowm)
                backoff = [b for b in backoff if b[0] > nowm]
                pending.extend((i, att) for _t, i, att in ready)
            while pending and len(inflight) < workers:
                i, attempt = pending.popleft()
                fut = mgr.submit(execute_task, tasks[i], scale, seed,
                                 capture)
                deadline = (time.monotonic() + cfg.timeout_s
                            if cfg.timeout_s else None)
                inflight[fut] = (i, attempt, deadline)
            if not inflight:
                wake = min(b[0] for b in backoff)
                cfg.sleep(max(0.0, wake - time.monotonic()))
                continue

            timeout = cfg.poll_interval_s
            deadlines = [d for (_i, _a, d) in inflight.values()
                         if d is not None]
            if deadlines:
                timeout = max(0.0, min(timeout,
                                       min(deadlines) - time.monotonic()))
            done, _ = wait(list(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            crashed = False
            for fut in done:
                i, attempt, _deadline = inflight.pop(fut)
                try:
                    payload = fut.result()
                except BrokenExecutor as exc:
                    crashed = True
                    requeue_or_fail(
                        i, attempt, "worker-crash",
                        f"worker process died "
                        f"({exc if str(exc) else 'BrokenProcessPool'})")
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    requeue_or_fail(i, attempt, "exception",
                                    f"{type(exc).__name__}: {exc}")
                else:
                    record(i, payload)

            if crashed:
                # The pool is broken: every in-flight future is dead
                # with it. Requeue them and stand up a fresh pool.
                for fut in list(inflight):
                    salvage_or(fut, lambda i, att: requeue_or_fail(
                        i, att, "worker-crash",
                        "worker process died (pool broke mid-task)"))
                mgr.rebuild()
                stats["pool_rebuilds"] = mgr.rebuilds

            if cfg.timeout_s and inflight:
                nowm = time.monotonic()
                expired = [fut for fut, (_i, _a, d) in inflight.items()
                           if d is not None and nowm >= d
                           and not fut.done()]
                if expired:
                    # A hung worker cannot be cancelled individually:
                    # fail the expired tasks, requeue the innocent
                    # in-flight ones (no attempt penalty) and rebuild.
                    for fut in expired:
                        i, attempt, _deadline = inflight.pop(fut)
                        requeue_or_fail(
                            i, attempt, "timeout",
                            f"exceeded per-task timeout of "
                            f"{cfg.timeout_s}s")
                    for fut in list(inflight):
                        salvage_or(fut,
                                   lambda i, att: pending.append((i, att)))
                    mgr.rebuild()
                    stats["pool_rebuilds"] = mgr.rebuilds

            if interrupted:
                # Graceful drain: completed futures above were already
                # recorded (and journalled); abandon the rest.
                raise KeyboardInterrupt
    except BaseException:
        mgr.shutdown(terminate=True)
        raise
    else:
        mgr.shutdown()
    finally:
        if prev_handler is not None:
            signal.signal(signal.SIGINT, prev_handler)


def run_named(
    name: str,
    scale: float = 0.1,
    seed: int = 42,
    *,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[ResilienceConfig] = None,
    resume: bool = False,
) -> RunResult:
    """:func:`run_spec` by exact experiment key."""
    from repro.experiments.specs import get_spec
    return run_spec(get_spec(name), scale, seed, jobs=jobs, cache=cache,
                    obs=obs, resilience=resilience, resume=resume)
