"""Resilience primitives for the sweep engine: failure taxonomy,
retry/backoff policy, crash-safe run journal and process-pool recovery.

This is the harness-level twin of :mod:`repro.faults`: the fog layer of
the *simulated* system already detects crashed supernodes, retries with
backoff and fails over; this module gives the experiment harness that
produces the paper's figures the same discipline. The pieces:

* :class:`TaskFailure` / :class:`SweepFailure` — structured taxonomy of
  how a sweep task can die (``exception``, ``timeout``,
  ``worker-crash``), with attempt counts, surfaced either on
  :class:`~repro.experiments.api.RunResult.failures` (keep-going mode)
  or raised as one readable report;
* :class:`ResilienceConfig` — per-task wall-clock timeout, bounded
  retries with exponential backoff, and the keep-going switch. Retried
  tasks are pure functions of ``(task, scale, seed)``, so a task that
  fails then succeeds on a later attempt produces a byte-identical
  payload — the determinism contract survives recovery;
* :class:`RunJournal` — an append-only JSONL manifest next to the
  :class:`~repro.experiments.cache.ResultCache` that checkpoints every
  completed task by its content-addressed digest (each record is
  flushed and fsynced, so a crash can tear at most the final line).
  ``run_spec(..., resume=True)`` replays the journal against the cache
  and executes only the remaining tasks;
* :class:`PoolManager` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  wrapper that transparently rebuilds the pool after
  ``BrokenProcessPool`` (a SIGKILLed worker) and terminates hung
  workers the watchdog gave up on;
* :func:`flaky_probe` — the test-only fault-injection runner (crash /
  hang / raise / kill-parent on the Nth attempt, tracked in a shared
  state directory) that the resilience test-suite and the CI smoke use
  to prove the recovery paths.
"""

from __future__ import annotations

import json
import os
import signal
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.experiments.cache import material_digest

#: The three ways a sweep task can fail.
FAILURE_KINDS = ("exception", "timeout", "worker-crash")


@dataclass(frozen=True)
class TaskFailure:
    """One task's terminal failure after its retry budget ran out."""

    #: ``"exception"`` (the runner raised), ``"timeout"`` (the watchdog
    #: cancelled a hung task) or ``"worker-crash"`` (the worker process
    #: died and broke the pool).
    kind: str
    #: Experiment the task belongs to.
    experiment: str
    #: The task's ordered key within the experiment.
    key: tuple
    #: Total attempts made (first run + retries).
    attempts: int
    #: Human-readable cause (exception repr, timeout budget, ...).
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "experiment": self.experiment,
            "key": list(self.key),
            "attempts": self.attempts,
            "message": self.message,
        }

    def describe(self) -> str:
        return (f"{self.experiment} task {tuple(self.key)}: {self.kind} "
                f"after {self.attempts} attempt(s) — {self.message}")


class SweepFailure(RuntimeError):
    """A sweep task exhausted its retries (and keep-going was off).

    Carries every :class:`TaskFailure` accumulated so far so the CLI
    can print one structured report instead of a raw traceback.
    """

    def __init__(self, failures: list[TaskFailure]):
        self.failures = list(failures)
        super().__init__(self.report())

    def report(self) -> str:
        lines = [f"{len(self.failures)} sweep task(s) failed:"]
        lines.extend(f"  - {f.describe()}" for f in self.failures)
        return "\n".join(lines)


@dataclass
class ResilienceConfig:
    """Retry/timeout/salvage policy for one :func:`run_spec` call.

    ``timeout_s`` is enforced by the pooled path only (``jobs > 1``):
    an inline task cannot be preempted, while a hung worker process can
    be terminated and its task rescheduled. Backoff before attempt
    ``n+1`` after ``n`` failures is ``backoff_base_s * backoff_factor**(n-1)``.
    """

    #: Retries after the first attempt (0 = fail fast). A task runs at
    #: most ``max_retries + 1`` times.
    max_retries: int = 2
    #: First backoff delay; doubles (by default) per further failure.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: Per-task wall-clock budget for the watchdog (None = no timeout).
    timeout_s: Optional[float] = None
    #: Salvage completed tasks and report failures on the RunResult
    #: instead of raising :class:`SweepFailure`.
    keep_going: bool = False
    #: Watchdog poll granularity.
    poll_interval_s: float = 0.05
    #: Injectable sleep (tests pin backoff wall-time to ~0).
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def backoff_s(self, failed_attempts: int) -> float:
        """Delay before the attempt following ``failed_attempts`` failures."""
        return self.backoff_base_s * (
            self.backoff_factor ** max(0, failed_attempts - 1))


#: Policy used when ``run_spec`` is called without an explicit config.
DEFAULT_RESILIENCE = ResilienceConfig()


def run_material(spec_name: str, scale: float, seed: int,
                 version: str) -> dict[str, Any]:
    """The content that identifies one run for journalling purposes."""
    return {"experiment": spec_name, "scale": scale, "seed": seed,
            "version": version}


def journal_path(cache_root: str, material: dict[str, Any]) -> str:
    """Where the journal for ``material``'s run lives under the cache."""
    return os.path.join(cache_root, "journals",
                        material_digest(material) + ".jsonl")


class RunJournal:
    """Append-only JSONL manifest of one run's completed tasks.

    Record kinds::

        {"kind": "run",  "run_id": ..., "material": {...}, "resumed": bool}
        {"kind": "task", "digest": ..., "key": [...], "elapsed_s": ...}
        {"kind": "end",  "digest": <RunResult.digest>}

    Every record is written as one line, flushed and fsynced, so a
    SIGKILL of the harness can tear at most the trailing line — which
    the loader skips. A journal whose ``run`` header does not match the
    resuming run's material is discarded and restarted from scratch.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._fp = None

    def start(self, material: dict[str, Any], resume: bool = False) -> set:
        """Open the journal; returns the completed digests to skip.

        Fresh runs truncate any stale journal; ``resume`` replays a
        matching journal and appends to it.
        """
        run_id = material_digest(material)
        done: Optional[set] = None
        if resume and os.path.exists(self.path):
            done = self.load_completed(self.path, run_id)
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._fp = open(self.path, "a" if done else "w", encoding="utf-8")
        self._write({"kind": "run", "run_id": run_id, "material": material,
                     "resumed": bool(done)})
        return done or set()

    @staticmethod
    def load_completed(path: str, run_id: str) -> Optional[set]:
        """Completed task digests recorded for ``run_id``, or ``None``
        when the journal belongs to a different run (or is unreadable)."""
        done: set = set()
        matched = False
        try:
            with open(path, "r", encoding="utf-8") as fp:
                for line in fp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn trailing line from a crash
                    kind = rec.get("kind")
                    if kind == "run":
                        matched = rec.get("run_id") == run_id
                    elif kind == "task" and matched:
                        done.add(rec.get("digest"))
        except OSError:
            return None
        return done if matched else None

    def record_task(self, digest: str, key: tuple,
                    elapsed_s: float = 0.0) -> None:
        """Checkpoint one completed task (durable before returning)."""
        self._write({"kind": "task", "digest": digest, "key": list(key),
                     "elapsed_s": elapsed_s})

    def complete(self, run_digest: str) -> None:
        """Mark the run finished and close the journal."""
        self._write({"kind": "end", "digest": run_digest})
        self.close()

    def close(self) -> None:
        if self._fp is not None:
            try:
                self._fp.close()
            finally:
                self._fp = None

    def _write(self, record: dict[str, Any]) -> None:
        if self._fp is None:
            return
        self._fp.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fp.flush()
        os.fsync(self._fp.fileno())


class PoolManager:
    """A self-healing :class:`ProcessPoolExecutor` handle.

    ``rebuild`` terminates the old pool's workers (dead after a crash,
    or hung past the watchdog budget — either way unusable) and lazily
    creates a fresh pool; ``submit`` retries through a broken executor
    so callers never see ``BrokenProcessPool`` at submission time.
    """

    def __init__(self, max_workers: int):
        self.max_workers = max_workers
        self.rebuilds = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def submit(self, fn, *args):
        try:
            return self.pool.submit(fn, *args)
        except BrokenExecutor:
            self.rebuild()
            return self.pool.submit(fn, *args)

    def rebuild(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.rebuilds += 1
        self._reap(pool)

    def shutdown(self, terminate: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            self._reap(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _reap(pool: ProcessPoolExecutor) -> None:
        # Kill workers first: a hung worker would otherwise stall
        # shutdown (and interpreter exit) indefinitely.
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------------
# Test-only fault-injection runner
# --------------------------------------------------------------------------

def claim_attempt(state_dir: str, index: int) -> int:
    """Atomically claim this invocation's attempt number for a task.

    Uses ``O_CREAT | O_EXCL`` marker files so the count is correct
    across worker processes and across a killed-and-resumed harness.
    """
    os.makedirs(state_dir, exist_ok=True)
    n = 1
    while True:
        marker = os.path.join(state_dir, f"task{index}.attempt{n}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            n += 1
            continue
        os.close(fd)
        return n


def flaky_probe(scale: float, seed: int, p: dict) -> dict:
    """Deterministically misbehaving task runner (fault-injection hook).

    Registered in :data:`repro.experiments.specs.TASK_RUNNERS` so the
    resilience tests and the CI smoke can build sweeps whose tasks
    fail in controlled ways. Params:

    ``mode``
        ``ok`` (default), ``raise``, ``crash`` (SIGKILL own worker),
        ``hang`` (sleep ``hang_s``), ``kill-parent`` (SIGKILL the
        harness process, whose pid the harness wrote to ``pid_file`` —
        simulates a dead parent for resume tests).
    ``fail_attempts``
        Misbehave while the attempt number (per ``state_dir``) is
        ``<= fail_attempts``; succeed afterwards.
    ``delegate`` / ``delegate_params``
        After surviving the failure window, run a real registered
        runner — lets tests assert trace/metrics determinism under
        retry against an honest sweep.
    ``sleep_s`` / ``bulk_points``
        Shape the successful task for throughput/wire benches:
        ``sleep_s`` holds a slot busy, ``bulk_points`` appends that
        many pseudo-random series points (a pure function of ``seed``
        and ``index``) so the result payload has realistic bulk.

    The success payload is a pure function of the params (never of the
    attempt number), which is what makes recovery byte-identical.
    """
    index = int(p.get("index", 0))
    mode = p.get("mode", "ok")
    attempt = (claim_attempt(p["state_dir"], index)
               if p.get("state_dir") else 1)
    if mode != "ok" and attempt <= int(p.get("fail_attempts", 1)):
        if mode == "raise":
            raise RuntimeError(
                f"flaky_probe: injected failure (task {index}, "
                f"attempt {attempt})")
        if mode == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(float(p.get("hang_s", 3600.0)))
            raise RuntimeError("flaky_probe: hang outlived its budget")
        if mode == "kill-parent":
            time.sleep(float(p.get("sleep_s", 0.0)))
            # Never guess via getppid(): a cache-warmed sweep can run
            # this task inline, where the "parent" is the test runner.
            with open(p["pid_file"], "r", encoding="utf-8") as fp:
                harness_pid = int(fp.read().strip())
            os.kill(harness_pid, signal.SIGKILL)
            if harness_pid != os.getpid():
                os._exit(0)
        raise ValueError(f"flaky_probe: unknown mode {mode!r}")
    if p.get("sleep_s"):
        time.sleep(float(p["sleep_s"]))
    delegate = p.get("delegate")
    if delegate:
        from repro.experiments.specs import TASK_RUNNERS
        return TASK_RUNNERS[delegate](scale, seed,
                                      dict(p.get("delegate_params", {})))
    from repro.metrics.series import FigureSeries
    s = FigureSeries(label=p.get("label", "flaky"), x_label="task index",
                     y_label="value")
    s.add(index, float(p.get("value", index)))
    # Deterministic bulk (LCG seeded by the task identity): inflates
    # the payload without touching the attempt-independence contract.
    word = (seed * 2654435761 + index * 40503) & 0xFFFFFFFF
    for k in range(int(p.get("bulk_points", 0))):
        word = (word * 1664525 + 1013904223) & 0xFFFFFFFF
        s.add(index + k + 1, word / 2.0 ** 32)
    return {"series": [s.to_dict()]}
