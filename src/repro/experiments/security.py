"""Security experiment: malicious supernodes vs the reputation system.

Plants a fraction of malicious supernodes (they tamper with a share of
the sessions they serve) in a neighbourhood and measures, over a stream
of sessions, how quickly the reputation system evicts them and how many
player sessions get tampered before and after.

The headline series: cumulative tampered-session rate over time, with
the trust registry on vs off — the quantitative case for the §III-A-1
vetting requirements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trust import TrustParams, TrustRegistry
from repro.metrics.series import FigureSeries


@dataclass(frozen=True)
class SecurityConfig:
    """Parameters of the malicious-supernode experiment."""

    n_supernodes: int = 30
    #: Fraction of supernodes that are malicious.
    malicious_fraction: float = 0.2
    #: Probability a malicious supernode tampers with one session.
    tamper_rate: float = 0.5
    #: Sessions simulated (each lands on a uniformly random active
    #: supernode — assignment spreads load in the real system).
    n_sessions: int = 3000
    trust: TrustParams = TrustParams()

    def __post_init__(self) -> None:
        if not 0.0 <= self.malicious_fraction <= 1.0:
            raise ValueError("malicious_fraction must lie in [0, 1]")
        if not 0.0 <= self.tamper_rate <= 1.0:
            raise ValueError("tamper_rate must lie in [0, 1]")


def simulate_security(
    use_reputation: bool,
    seed: int = 0,
    config: SecurityConfig | None = None,
) -> dict[str, float]:
    """Run the session stream; returns tamper/eviction aggregates."""
    cfg = config or SecurityConfig()
    rng = np.random.default_rng(seed)
    registry = TrustRegistry(cfg.trust)

    n_bad = int(round(cfg.malicious_fraction * cfg.n_supernodes))
    malicious = set(rng.choice(cfg.n_supernodes, size=n_bad,
                               replace=False).tolist())
    for sid in range(cfg.n_supernodes):
        registry.register(sid)

    tampered_sessions = 0
    served_by_malicious = 0
    first_eviction_session = None
    for k in range(cfg.n_sessions):
        active = registry.active_ids() if use_reputation \
            else list(range(cfg.n_supernodes))
        if not active:
            break
        sid = int(active[int(rng.integers(len(active)))])
        is_bad = sid in malicious
        tampers = is_bad and rng.uniform() < cfg.tamper_rate
        if is_bad:
            served_by_malicious += 1
        if tampers:
            tampered_sessions += 1
        if use_reputation:
            evicted = registry.observe_session(sid, tampers, rng)
            if evicted and first_eviction_session is None:
                first_eviction_session = k

    survivors = (sum(1 for sid in malicious if registry.is_active(sid))
                 if use_reputation else len(malicious))
    honest_evicted = (
        sum(1 for sid in range(cfg.n_supernodes)
            if sid not in malicious and not registry.is_active(sid))
        if use_reputation else 0)
    return {
        "tampered_rate": tampered_sessions / cfg.n_sessions,
        "served_by_malicious_rate": served_by_malicious / cfg.n_sessions,
        "evictions": float(registry.evictions if use_reputation else 0),
        "malicious_survivors": float(survivors),
        "honest_evicted": float(honest_evicted),
        "first_eviction_session": float(
            -1 if first_eviction_session is None
            else first_eviction_session),
    }


def security_sweep(
    malicious_fractions=(0.0, 0.1, 0.2, 0.3, 0.4),
    seeds=(0, 1, 2),
    config: SecurityConfig | None = None,
) -> list[FigureSeries]:
    """Tampered-session rate vs malicious fraction, trust on vs off."""
    base = config or SecurityConfig()
    without = FigureSeries(label="no reputation system",
                           x_label="malicious supernode fraction",
                           y_label="tampered session rate")
    with_rep = FigureSeries(label="with reputation + eviction",
                            x_label="malicious supernode fraction",
                            y_label="tampered session rate")
    from dataclasses import replace
    for frac in malicious_fractions:
        cfg = replace(base, malicious_fraction=float(frac))
        for series, flag in ((without, False), (with_rep, True)):
            vals = [simulate_security(flag, seed=s, config=cfg)
                    ["tampered_rate"] for s in seeds]
            series.add(frac, float(np.mean(vals)))
    return [without, with_rep]
