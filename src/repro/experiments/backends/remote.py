"""Socket scheduler dispatching sweep tasks to remote worker daemons.

The fabric has three ways to acquire workers, combinable freely:

* ``workers=("host:port", ...)`` — dial worker daemons already
  listening (``cloudfog worker --listen HOST:PORT``);
* ``listen="host:port"`` — bind and accept dial-in workers
  (``cloudfog worker --connect HOST:PORT``), including ones that join
  mid-run;
* ``launch=N`` — spawn N workers through ``launcher`` (default: this
  interpreter running ``repro.cli worker --connect <addr>`` against an
  ephemeral loopback listener; SSH-compatible via a template like
  ``"ssh gpu1 cloudfog worker --connect {addr}"``).

Scheduling is a single-threaded ``select`` loop with per-worker
in-flight accounting (a worker holds at most its advertised ``slots``
tasks). Liveness is two-tier: a dead worker process closes its socket
(immediate EOF detection), and a frozen-but-connected worker is
declared dead when no frame — results *or* heartbeats — arrives within
``heartbeat_timeout_s``. Either way its in-flight tasks requeue through
the ``worker-crash`` arm of the
:class:`~repro.experiments.resilience.TaskFailure` taxonomy, exactly
like a SIGKILLed pool worker. Per-task deadlines (the resilience
config's ``timeout_s``) map onto ``timeout``: the offending worker's
connection is dropped (a remote task cannot be preempted) and its
innocent in-flight tasks requeue without attempt penalty.

The content-addressed result cache is the fabric's shared artifact
store: workers push result blobs back inside their ``result`` frames
and the scheduler writes them through ``plan.record`` — the same
atomic :meth:`~repro.experiments.cache.ResultCache.put` path every
backend uses — so checkpoints are backend-agnostic and a run journal
written under one backend resumes under any other.

Determinism: workers compute with the same ``execute_task`` as inline
and pool execution, and the scheduler merges payloads in task order,
never completion or dispatch order — so a remote run's series, trace
and metrics digests are byte-identical to an inline run of the same
spec, regardless of worker count, join order, crashes or requeues.

The fabric persists across :meth:`execute` calls (one worker set
serves a whole ``run_all``); :meth:`close` says bye to dialed daemons
and terminates launched ones.
"""

from __future__ import annotations

import os
import select
import shlex
import socket
import subprocess
import sys
import time
from collections import deque
from typing import Optional

import repro
from repro import __version__
from repro.experiments.backends.base import ExecutionBackend, SweepPlan
from repro.experiments.backends.protocol import (
    ProtocolError,
    format_addr,
    parse_addr,
    recv_frame,
    send_frame,
)


class RemoteFabricError(RuntimeError):
    """The worker fabric cannot make progress (no workers reachable, or
    every worker died with tasks outstanding and none can rejoin)."""


class _Worker:
    """Scheduler-side state for one connected worker."""

    __slots__ = ("sock", "id", "pid", "slots", "inflight", "last_seen")

    def __init__(self, sock: socket.socket, hello: dict):
        self.sock = sock
        self.id = str(hello.get("worker", "?"))
        self.pid = hello.get("pid")
        self.slots = max(1, int(hello.get("slots", 1)))
        #: tid -> (task index, attempt, deadline or None)
        self.inflight: dict[int, tuple[int, int, Optional[float]]] = {}
        self.last_seen = time.monotonic()


class RemoteBackend(ExecutionBackend):
    """Dispatch sweep tasks to worker daemons over the wire."""

    name = "remote"

    def __init__(self, workers=(), listen: Optional[str] = None,
                 launch: int = 0, launcher: Optional[str] = None,
                 connect_timeout_s: float = 30.0,
                 heartbeat_timeout_s: float = 15.0,
                 poll_interval_s: float = 0.05):
        if not (workers or listen or launch):
            raise ValueError("remote backend needs workers=, listen= "
                             "or launch=")
        self.addresses = tuple(workers)
        self.listen = listen
        self.launch = int(launch)
        self.launcher = launcher
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_interval_s = poll_interval_s

        self._listener: Optional[socket.socket] = None
        self._workers: dict[socket.socket, _Worker] = {}
        self._procs: list[subprocess.Popen] = []
        self._tid = 0
        self._started = False

    # ------------------------------------------------------------------
    # Fabric lifecycle
    # ------------------------------------------------------------------

    @property
    def bound_address(self) -> Optional[str]:
        """The listener's actual ``host:port`` (after :meth:`start`)."""
        if self._listener is None:
            return None
        return format_addr(self._listener.getsockname()[:2])

    def start(self) -> None:
        """Stand up the fabric: bind, launch, dial, await hellos."""
        if self._started:
            return
        if self.listen or self.launch:
            host, port = parse_addr(self.listen or "127.0.0.1:0")
            srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            srv.bind((host, port))
            srv.listen(64)
            srv.setblocking(False)
            self._listener = srv
        for _ in range(self.launch):
            self._procs.append(self._spawn(self.bound_address))
        for addr in self.addresses:
            self._dial(addr)
        # Launched workers dial back in; an explicit listen address
        # must attract at least one worker before dispatch can start.
        want_dial_ins = self.launch or (1 if self.listen else 0)
        deadline = time.monotonic() + self.connect_timeout_s
        joined = 0
        while joined < want_dial_ins:
            self._reap_dead_launches()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RemoteFabricError(
                    f"only {joined}/{want_dial_ins} worker(s) joined "
                    f"within {self.connect_timeout_s}s")
            readable, _, _ = select.select([self._listener], [], [],
                                           min(0.2, remaining))
            if readable and self._accept() is not None:
                joined += 1
        self._started = True

    def close(self) -> None:
        """Dismiss the fabric: bye to daemons, reap launched workers."""
        for worker in list(self._workers.values()):
            try:
                send_frame(worker.sock, "bye")
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        self._workers.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs.clear()
        self._started = False

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _spawn(self, addr: str) -> subprocess.Popen:
        host, port = parse_addr(addr)
        if self.launcher:
            cmd = shlex.split(
                self.launcher.format(addr=addr, host=host, port=port))
        else:
            cmd = [sys.executable, "-m", "repro.cli", "worker",
                   "--connect", addr]
        env = os.environ.copy()
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(cmd, env=env)

    def _reap_dead_launches(self) -> None:
        dead = [p for p in self._procs if p.poll() is not None]
        if dead:
            self._procs = [p for p in self._procs if p.poll() is None]
            raise RemoteFabricError(
                f"launched worker exited with code {dead[0].returncode} "
                f"before joining (cmd: {' '.join(map(str, dead[0].args))})")

    def _dial(self, addr: str) -> None:
        """Connect out to a listening worker daemon and register it."""
        try:
            sock = socket.create_connection(
                parse_addr(addr), timeout=self.connect_timeout_s)
        except OSError as exc:
            self.close()
            raise RemoteFabricError(
                f"cannot reach worker at {addr}: {exc}") from exc
        self._register(sock, where=addr)

    def _accept(self) -> Optional[_Worker]:
        try:
            sock, peer = self._listener.accept()
        except OSError:
            return None
        return self._register(sock, where=f"{peer[0]}:{peer[1]}")

    def _register(self, sock: socket.socket,
                  where: str) -> Optional[_Worker]:
        """Validate a new connection's hello and adopt the worker."""
        sock.settimeout(self.connect_timeout_s)
        try:
            kind, hello = recv_frame(sock)
        except (EOFError, ProtocolError, OSError) as exc:
            sock.close()
            raise RemoteFabricError(
                f"no hello from worker at {where}: {exc}") from exc
        if kind != "hello":
            sock.close()
            raise RemoteFabricError(
                f"worker at {where} opened with {kind!r}, expected hello")
        if hello.get("version") != __version__:
            # A version-skewed worker would compute payloads the cache
            # material says belong to a different code version.
            try:
                send_frame(sock, "bye")
            except OSError:
                pass
            sock.close()
            raise RemoteFabricError(
                f"worker {hello.get('worker')!r} at {where} runs version "
                f"{hello.get('version')!r}, scheduler runs {__version__!r}")
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        worker = _Worker(sock, hello)
        self._workers[sock] = worker
        return worker

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def execute(self, plan: SweepPlan) -> None:
        self.start()
        cfg = plan.resilience
        pending = deque((i, 1) for i in plan.todo)
        backoff: list[tuple[float, int, int]] = []

        plan.stats.setdefault("workers_joined", 0)
        plan.stats["workers_joined"] += len(self._workers)

        def requeue_or_fail(i, attempt, kind, message):
            delay = plan.dispose(i, attempt, kind, message)
            if delay is not None:
                backoff.append((time.monotonic() + delay, i, attempt + 1))

        def drop_worker(worker: _Worker, reason: str,
                        skip_tids=(), penalty: bool = True) -> None:
            """Forget a dead/expired worker and requeue its tasks."""
            self._workers.pop(worker.sock, None)
            try:
                worker.sock.close()
            except OSError:
                pass
            plan.stats["workers_lost"] = (
                plan.stats.get("workers_lost", 0) + 1)
            for tid, (i, attempt, _dl) in worker.inflight.items():
                if tid in skip_tids:
                    continue
                if penalty:
                    requeue_or_fail(i, attempt, "worker-crash",
                                    f"worker {worker.id} {reason}")
                else:
                    pending.append((i, attempt))
            worker.inflight.clear()

        def assign() -> None:
            for worker in list(self._workers.values()):
                while pending and len(worker.inflight) < worker.slots:
                    i, attempt = pending.popleft()
                    self._tid += 1
                    tid = self._tid
                    deadline = (time.monotonic() + cfg.timeout_s
                                if cfg.timeout_s else None)
                    worker.inflight[tid] = (i, attempt, deadline)
                    try:
                        send_frame(worker.sock, "task", {
                            "tid": tid, "index": i,
                            "task": plan.tasks[i],
                            "scale": plan.scale, "seed": plan.seed,
                            "capture": plan.capture,
                        })
                    except OSError:
                        drop_worker(worker, "dropped the connection "
                                            "at dispatch")
                        break

        def inflight_total() -> int:
            return sum(len(w.inflight) for w in self._workers.values())

        def handle_frame(worker: _Worker) -> None:
            try:
                kind, payload = recv_frame(worker.sock)
            except (EOFError, ProtocolError, OSError):
                drop_worker(worker, "died (connection lost)")
                return
            worker.last_seen = time.monotonic()
            if kind == "heartbeat":
                return
            if kind not in ("result", "error"):
                return
            entry = worker.inflight.pop(payload.get("tid"), None)
            if entry is None:  # reply for a task we already requeued
                return
            i, attempt, _deadline = entry
            if kind == "result":
                plan.record(i, payload["payload"])
            else:
                requeue_or_fail(i, attempt, payload.get("kind",
                                                        "exception"),
                                payload.get("message", "worker error"))

        no_worker_since: Optional[float] = None
        try:
            while pending or backoff or inflight_total():
                nowm = time.monotonic()
                if backoff:
                    ready = sorted(b for b in backoff if b[0] <= nowm)
                    backoff = [b for b in backoff if b[0] > nowm]
                    pending.extend((i, att) for _t, i, att in ready)

                if not self._workers:
                    # Fabric lost. Dial-in joiners may still save the
                    # run; otherwise fail loudly rather than spin.
                    if self._listener is None:
                        raise RemoteFabricError(
                            "all remote workers died with tasks "
                            "outstanding and no listener is open for "
                            "replacements")
                    if no_worker_since is None:
                        no_worker_since = nowm
                    elif nowm - no_worker_since > self.connect_timeout_s:
                        raise RemoteFabricError(
                            f"all remote workers died; none rejoined "
                            f"within {self.connect_timeout_s}s")
                else:
                    no_worker_since = None

                assign()

                timeout = self.poll_interval_s
                if backoff:
                    timeout = min(timeout, max(
                        0.0, min(b[0] for b in backoff) - nowm))
                if cfg.timeout_s:
                    deadlines = [d for w in self._workers.values()
                                 for (_i, _a, d) in w.inflight.values()
                                 if d is not None]
                    if deadlines:
                        timeout = min(timeout, max(
                            0.0, min(deadlines) - time.monotonic()))
                rlist = list(self._workers)
                if self._listener is not None:
                    rlist.append(self._listener)
                readable, _, _ = select.select(rlist, [], [], timeout)

                for sock in readable:
                    if sock is self._listener:
                        try:
                            worker = self._accept()
                        except RemoteFabricError:
                            worker = None  # reject bad joiner, carry on
                        if worker is not None:
                            plan.stats["workers_joined"] += 1
                        continue
                    worker = self._workers.get(sock)
                    if worker is not None:
                        handle_frame(worker)

                nowm = time.monotonic()
                if cfg.timeout_s:
                    for worker in list(self._workers.values()):
                        expired = [
                            (tid, entry)
                            for tid, entry in worker.inflight.items()
                            if entry[2] is not None and nowm >= entry[2]]
                        if not expired:
                            continue
                        # A hung remote task cannot be preempted: fail
                        # it, drop the worker, requeue its innocent
                        # in-flight tasks without attempt penalty.
                        for tid, (i, attempt, _dl) in expired:
                            requeue_or_fail(
                                i, attempt, "timeout",
                                f"exceeded per-task timeout of "
                                f"{cfg.timeout_s}s on worker {worker.id}")
                        drop_worker(
                            worker, "timed out",
                            skip_tids={tid for tid, _ in expired},
                            penalty=False)
                for worker in list(self._workers.values()):
                    if nowm - worker.last_seen > self.heartbeat_timeout_s:
                        drop_worker(
                            worker,
                            f"missed heartbeats for "
                            f"{self.heartbeat_timeout_s:g}s")
        except BaseException:
            # Run-fatal exit (SweepFailure, fabric loss, interrupt):
            # tear the fabric down so launched workers never outlive a
            # failed scheduler. Completed tasks were already recorded
            # (and journalled) through plan.record.
            self.close()
            raise
