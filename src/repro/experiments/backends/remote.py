"""Socket scheduler dispatching sweep tasks to remote worker daemons.

The fabric has three ways to acquire workers, combinable freely:

* ``workers=("host:port", ...)`` — dial worker daemons already
  listening (``cloudfog worker --listen HOST:PORT``);
* ``listen="host:port"`` — bind and accept dial-in workers
  (``cloudfog worker --connect HOST:PORT``), including ones that join
  mid-run;
* ``launch=N`` — spawn N workers through ``launcher`` (default: this
  interpreter running ``repro.cli worker --connect <addr>`` against an
  ephemeral loopback listener; SSH-compatible via a template like
  ``"ssh gpu1 cloudfog worker --connect {addr}"``).

Scheduling is a single-threaded ``select`` loop built for throughput:
each worker holds up to ``slots + prefetch`` tasks — its advertised
slot count actually executing, plus a primed queue that hides the
dispatch round-trip, so a worker never idles waiting for the
scheduler to notice a free slot. Results stream back as slots free
up; the scheduler merges in task order, never completion order.

Wire frames are CFW2 with per-channel compression negotiated at
hello time (zstd where both sides have it, zlib otherwise; legacy
CFW1 peers get uncompressed CFW1 frames for one release — see
:mod:`~repro.experiments.backends.protocol`). Task frames carry the
task's content-address digest, and when the scheduler's store already
holds the blob (possible only when cache reads are bypassed by an
attached obs context) the frame says so — the worker then answers
with a hash-only ``cached`` frame and the scheduler serves the blob
from its own store, so warm re-runs ship hashes instead of megabytes.

Liveness is two-tier and now two-directional: a dead worker process
closes its socket (immediate EOF detection), a frozen-but-connected
worker is declared dead when no frame — results *or* heartbeats —
arrives within ``heartbeat_timeout_s``, and the scheduler itself
pulses every worker (a background pump thread, so the pulse continues
between ``execute`` calls while the fabric idles) to arm the workers'
scheduler-silence deadlines. Dead workers' in-flight tasks requeue
through the ``worker-crash`` arm of the
:class:`~repro.experiments.resilience.TaskFailure` taxonomy, exactly
like a SIGKILLed pool worker. Per-task deadlines (the resilience
config's ``timeout_s``) map onto ``timeout``: the offending worker's
connection is dropped (a remote task cannot be preempted) and its
innocent in-flight tasks requeue without attempt penalty. Note the
deadline clock starts at dispatch, so with ``prefetch > 0`` it also
covers time spent queued on the worker — set ``prefetch=0`` when
running under tight per-task timeouts.

The content-addressed result cache is the fabric's shared artifact
store: workers push result blobs back inside their ``result`` frames
and the scheduler writes them through ``plan.record`` — the same
atomic :meth:`~repro.experiments.cache.ResultCache.put` path every
backend uses — so checkpoints are backend-agnostic and a run journal
written under one backend resumes under any other.

Determinism: workers compute with the same ``execute_task`` as inline
and pool execution, and the scheduler merges payloads in task order,
never completion or dispatch order — so a remote run's series, trace
and metrics digests are byte-identical to an inline run of the same
spec, regardless of worker count, slot count, pipelining depth,
compression codec, join order, crashes or requeues.

The fabric persists across :meth:`execute` calls (one worker set
serves a whole ``run_all``); :meth:`close` says bye to dialed daemons
and terminates launched ones.
"""

from __future__ import annotations

import os
import select
import shlex
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Optional

import repro
from repro import __version__
from repro.experiments.backends.base import ExecutionBackend, SweepPlan
from repro.experiments.backends.protocol import (
    WIRE_REVISION,
    Channel,
    ProtocolError,
    available_codecs,
    format_addr,
    negotiate_codec,
    parse_addr,
    recv_frame,
    send_frame,
)

#: Default pipelining depth: tasks queued on a worker beyond its
#: executing slots, hiding one dispatch round-trip per slot.
DEFAULT_PREFETCH = 2


class RemoteFabricError(RuntimeError):
    """The worker fabric cannot make progress (no workers reachable, or
    every worker died with tasks outstanding and none can rejoin)."""


class _Worker:
    """Scheduler-side state for one connected worker."""

    __slots__ = ("channel", "id", "pid", "slots", "wire", "inflight",
                 "last_seen")

    def __init__(self, channel: Channel, hello: dict):
        self.channel = channel
        self.id = str(hello.get("worker", "?"))
        self.pid = hello.get("pid")
        self.slots = max(1, int(hello.get("slots", 1)))
        self.wire = int(hello.get("wire", 1))
        #: tid -> (task index, attempt, deadline or None)
        self.inflight: dict[int, tuple[int, int, Optional[float]]] = {}
        self.last_seen = time.monotonic()

    @property
    def sock(self) -> socket.socket:
        return self.channel.sock


class RemoteBackend(ExecutionBackend):
    """Dispatch sweep tasks to worker daemons over the wire."""

    name = "remote"

    def __init__(self, workers=(), listen: Optional[str] = None,
                 launch: int = 0, launcher: Optional[str] = None,
                 slots: int = 1,
                 prefetch: int = DEFAULT_PREFETCH,
                 compress: Optional[str] = "auto",
                 connect_timeout_s: float = 30.0,
                 heartbeat_timeout_s: float = 15.0,
                 heartbeat_interval_s: float = 2.0,
                 poll_interval_s: float = 0.05):
        if not (workers or listen or launch):
            raise ValueError("remote backend needs workers=, listen= "
                             "or launch=")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if prefetch < 0:
            raise ValueError(f"prefetch must be >= 0, got {prefetch}")
        self.addresses = tuple(workers)
        self.listen = listen
        self.launch = int(launch)
        self.launcher = launcher
        self.slots = int(slots)
        self.prefetch = int(prefetch)
        self.compress = compress
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.poll_interval_s = poll_interval_s

        self._listener: Optional[socket.socket] = None
        self._workers: dict[socket.socket, _Worker] = {}
        self._procs: list[subprocess.Popen] = []
        self._tid = 0
        self._started = False
        self._pump_stop: Optional[threading.Event] = None
        self._pump_thread: Optional[threading.Thread] = None
        #: Wire bytes of connections already torn down; live channels
        #: are added on top by :meth:`wire_stats`.
        self._bytes_sent_closed = 0
        self._bytes_recv_closed = 0

    # ------------------------------------------------------------------
    # Fabric lifecycle
    # ------------------------------------------------------------------

    @property
    def bound_address(self) -> Optional[str]:
        """The listener's actual ``host:port`` (after :meth:`start`)."""
        if self._listener is None:
            return None
        return format_addr(self._listener.getsockname()[:2])

    def wire_stats(self) -> dict[str, int]:
        """Total fabric wire bytes, both directions, including closed
        connections — what the fabric benchmarks difference."""
        sent = self._bytes_sent_closed
        recv = self._bytes_recv_closed
        for worker in list(self._workers.values()):
            sent += worker.channel.bytes_out
            recv += worker.channel.bytes_in
        return {"sent": sent, "recv": recv}

    def start(self) -> None:
        """Stand up the fabric: bind, launch, dial, await hellos."""
        if self._started:
            return
        if self.listen or self.launch:
            host, port = parse_addr(self.listen or "127.0.0.1:0")
            srv = socket.socket(
                socket.AF_INET6 if ":" in host else socket.AF_INET,
                socket.SOCK_STREAM)
            srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            srv.bind((host, port))
            srv.listen(64)
            srv.setblocking(False)
            self._listener = srv
        for _ in range(self.launch):
            self._procs.append(self._spawn(self.bound_address))
        for addr in self.addresses:
            self._dial(addr)
        # Launched workers dial back in; an explicit listen address
        # must attract at least one worker before dispatch can start.
        want_dial_ins = self.launch or (1 if self.listen else 0)
        deadline = time.monotonic() + self.connect_timeout_s
        joined = 0
        while joined < want_dial_ins:
            self._reap_dead_launches()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RemoteFabricError(
                    f"only {joined}/{want_dial_ins} worker(s) joined "
                    f"within {self.connect_timeout_s}s")
            readable, _, _ = select.select([self._listener], [], [],
                                           min(0.2, remaining))
            if readable and self._accept() is not None:
                joined += 1
        self._start_pump()
        self._started = True

    def _start_pump(self) -> None:
        """Pulse every CFW2 worker so their scheduler-silence deadlines
        never trip while the fabric is healthy — including the idle
        stretches between ``execute`` calls, when no select loop runs."""
        if self._pump_thread is not None:
            return
        stop = threading.Event()

        def pump() -> None:
            while not stop.wait(self.heartbeat_interval_s):
                for worker in list(self._workers.values()):
                    if worker.wire >= WIRE_REVISION:
                        try:
                            worker.channel.send("heartbeat")
                        except OSError:
                            pass  # the select loop will see the EOF

        thread = threading.Thread(target=pump, daemon=True,
                                  name="fabric-heartbeat")
        thread.start()
        self._pump_stop, self._pump_thread = stop, thread

    def close(self) -> None:
        """Dismiss the fabric: bye to daemons, reap launched workers."""
        if self._pump_stop is not None:
            self._pump_stop.set()
            self._pump_thread.join(timeout=2.0)
            self._pump_stop = self._pump_thread = None
        for worker in list(self._workers.values()):
            try:
                worker.channel.send("bye")
            except OSError:
                pass
            self._retire_channel(worker.channel)
        self._workers.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs.clear()
        self._started = False

    def _retire_channel(self, channel: Channel) -> None:
        """Close a connection, folding its byte meters into the
        fabric totals."""
        self._bytes_sent_closed += channel.bytes_out
        self._bytes_recv_closed += channel.bytes_in
        channel.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _spawn(self, addr: str) -> subprocess.Popen:
        host, port = parse_addr(addr)
        if self.launcher:
            cmd = shlex.split(
                self.launcher.format(addr=addr, host=host, port=port))
        else:
            cmd = [sys.executable, "-m", "repro.cli", "worker",
                   "--connect", addr]
            if self.slots > 1:
                cmd += ["--slots", str(self.slots)]
        env = os.environ.copy()
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(cmd, env=env)

    def _reap_dead_launches(self) -> None:
        dead = [p for p in self._procs if p.poll() is not None]
        if dead:
            self._procs = [p for p in self._procs if p.poll() is None]
            raise RemoteFabricError(
                f"launched worker exited with code {dead[0].returncode} "
                f"before joining (cmd: {' '.join(map(str, dead[0].args))})")

    def _dial(self, addr: str) -> None:
        """Connect out to a listening worker daemon and register it."""
        try:
            sock = socket.create_connection(
                parse_addr(addr), timeout=self.connect_timeout_s)
        except OSError as exc:
            self.close()
            raise RemoteFabricError(
                f"cannot reach worker at {addr}: {exc}") from exc
        self._register(sock, where=addr)

    def _accept(self) -> Optional[_Worker]:
        try:
            sock, peer = self._listener.accept()
        except OSError:
            return None
        return self._register(sock, where=format_addr(peer[:2]))

    def _register(self, sock: socket.socket,
                  where: str) -> Optional[_Worker]:
        """Validate a new connection's hello and adopt the worker."""
        sock.settimeout(self.connect_timeout_s)
        try:
            kind, hello = recv_frame(sock)
        except (EOFError, ProtocolError, OSError) as exc:
            sock.close()
            raise RemoteFabricError(
                f"no hello from worker at {where}: {exc}") from exc
        if kind != "hello":
            sock.close()
            raise RemoteFabricError(
                f"worker at {where} opened with {kind!r}, expected hello")
        if hello.get("version") != __version__:
            # A version-skewed worker would compute payloads the cache
            # material says belong to a different code version.
            try:
                send_frame(sock, "bye")
            except OSError:
                pass
            sock.close()
            raise RemoteFabricError(
                f"worker {hello.get('worker')!r} at {where} runs version "
                f"{hello.get('version')!r}, scheduler runs {__version__!r}")
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        worker = _Worker(Channel(sock), hello)
        if worker.wire >= WIRE_REVISION:
            # CFW2 acknowledgement: settle the channel codec (both
            # directions) and promise heartbeats, arming the worker's
            # scheduler-silence deadline. Legacy CFW1 peers get no ack
            # and keep an uncompressed, unpulsed channel for one
            # release.
            codec = negotiate_codec(self.compress,
                                    hello.get("codecs", ()))
            try:
                worker.channel.send("hello", {
                    "wire": WIRE_REVISION,
                    "codec": codec,
                    "codecs": available_codecs(),
                    "heartbeat_s": self.heartbeat_interval_s,
                })
            except OSError as exc:
                self._retire_channel(worker.channel)
                raise RemoteFabricError(
                    f"worker at {where} dropped the connection during "
                    f"negotiation: {exc}") from exc
            worker.channel.codec = codec
        self._workers[sock] = worker
        return worker

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def execute(self, plan: SweepPlan) -> None:
        self.start()
        cfg = plan.resilience
        pending = deque((i, 1) for i in plan.todo)
        backoff: list[tuple[float, int, int]] = []
        #: Indices whose "scheduler has the blob" promise failed to
        #: redeem (entry torn/evicted between probe and cached frame):
        #: redispatched with the full-result path.
        distrust: set[int] = set()
        wire0 = self.wire_stats()

        plan.stats.setdefault("workers_joined", 0)
        plan.stats["workers_joined"] += len(self._workers)

        def requeue_or_fail(i, attempt, kind, message):
            delay = plan.dispose(i, attempt, kind, message)
            if delay is not None:
                backoff.append((time.monotonic() + delay, i, attempt + 1))

        def drop_worker(worker: _Worker, reason: str,
                        skip_tids=(), penalty: bool = True) -> None:
            """Forget a dead/expired worker and requeue its tasks."""
            self._workers.pop(worker.sock, None)
            self._retire_channel(worker.channel)
            plan.stats["workers_lost"] = (
                plan.stats.get("workers_lost", 0) + 1)
            for tid, (i, attempt, _dl) in worker.inflight.items():
                if tid in skip_tids:
                    continue
                if penalty:
                    requeue_or_fail(i, attempt, "worker-crash",
                                    f"worker {worker.id} {reason}")
                else:
                    pending.append((i, attempt))
            worker.inflight.clear()

        def assign() -> None:
            for worker in list(self._workers.values()):
                # Fill the executing slots plus the prefetch queue, so
                # a freed slot always finds its next task already on
                # the worker instead of one round-trip away.
                capacity = worker.slots + self.prefetch
                while pending and len(worker.inflight) < capacity:
                    i, attempt = pending.popleft()
                    self._tid += 1
                    tid = self._tid
                    deadline = (time.monotonic() + cfg.timeout_s
                                if cfg.timeout_s else None)
                    worker.inflight[tid] = (i, attempt, deadline)
                    digest = (plan.digests[i]
                              if plan.digests is not None else None)
                    have = (plan.known is not None and i in plan.known
                            and i not in distrust)
                    try:
                        worker.channel.send("task", {
                            "tid": tid, "index": i,
                            "task": plan.tasks[i],
                            "scale": plan.scale, "seed": plan.seed,
                            "capture": plan.capture,
                            "digest": digest, "have": have,
                        })
                    except OSError:
                        drop_worker(worker, "dropped the connection "
                                            "at dispatch")
                        break

        def inflight_total() -> int:
            return sum(len(w.inflight) for w in self._workers.values())

        def handle_frame(worker: _Worker) -> None:
            try:
                kind, payload = worker.channel.recv()
            except (EOFError, ProtocolError, OSError):
                drop_worker(worker, "died (connection lost)")
                return
            worker.last_seen = time.monotonic()
            if kind == "heartbeat":
                return
            if kind not in ("result", "error", "cached"):
                return
            entry = worker.inflight.pop(payload.get("tid"), None)
            if entry is None:  # reply for a task we already requeued
                return
            i, attempt, _deadline = entry
            if kind == "result":
                plan.record(i, payload["payload"])
            elif kind == "cached":
                # Hash-only confirmation: redeem the blob from our own
                # store. A broken promise (entry vanished since the
                # probe) redispatches the task penalty-free with the
                # full-result path forced.
                redeemed = (plan.lookup(i)
                            if plan.lookup is not None else None)
                if redeemed is not None:
                    plan.stats["cached_frames"] = (
                        plan.stats.get("cached_frames", 0) + 1)
                    plan.record(i, redeemed)
                else:
                    distrust.add(i)
                    pending.append((i, attempt))
            else:
                requeue_or_fail(i, attempt, payload.get("kind",
                                                        "exception"),
                                payload.get("message", "worker error"))

        no_worker_since: Optional[float] = None
        try:
            while pending or backoff or inflight_total():
                nowm = time.monotonic()
                if backoff:
                    ready = sorted(b for b in backoff if b[0] <= nowm)
                    backoff = [b for b in backoff if b[0] > nowm]
                    pending.extend((i, att) for _t, i, att in ready)

                if not self._workers:
                    # Fabric lost. Dial-in joiners may still save the
                    # run; otherwise fail loudly rather than spin.
                    if self._listener is None:
                        raise RemoteFabricError(
                            "all remote workers died with tasks "
                            "outstanding and no listener is open for "
                            "replacements")
                    if no_worker_since is None:
                        no_worker_since = nowm
                    elif nowm - no_worker_since > self.connect_timeout_s:
                        raise RemoteFabricError(
                            f"all remote workers died; none rejoined "
                            f"within {self.connect_timeout_s}s")
                else:
                    no_worker_since = None

                assign()

                timeout = self.poll_interval_s
                if backoff:
                    timeout = min(timeout, max(
                        0.0, min(b[0] for b in backoff) - nowm))
                if cfg.timeout_s:
                    deadlines = [d for w in self._workers.values()
                                 for (_i, _a, d) in w.inflight.values()
                                 if d is not None]
                    if deadlines:
                        timeout = min(timeout, max(
                            0.0, min(deadlines) - time.monotonic()))
                rlist = list(self._workers)
                if self._listener is not None:
                    rlist.append(self._listener)
                readable, _, _ = select.select(rlist, [], [], timeout)

                for sock in readable:
                    if sock is self._listener:
                        try:
                            worker = self._accept()
                        except RemoteFabricError:
                            worker = None  # reject bad joiner, carry on
                        if worker is not None:
                            plan.stats["workers_joined"] += 1
                        continue
                    worker = self._workers.get(sock)
                    if worker is not None:
                        handle_frame(worker)

                nowm = time.monotonic()
                if cfg.timeout_s:
                    for worker in list(self._workers.values()):
                        expired = [
                            (tid, entry)
                            for tid, entry in worker.inflight.items()
                            if entry[2] is not None and nowm >= entry[2]]
                        if not expired:
                            continue
                        # A hung remote task cannot be preempted: fail
                        # it, drop the worker, requeue its innocent
                        # in-flight tasks without attempt penalty.
                        for tid, (i, attempt, _dl) in expired:
                            requeue_or_fail(
                                i, attempt, "timeout",
                                f"exceeded per-task timeout of "
                                f"{cfg.timeout_s}s on worker {worker.id}")
                        drop_worker(
                            worker, "timed out",
                            skip_tids={tid for tid, _ in expired},
                            penalty=False)
                for worker in list(self._workers.values()):
                    if nowm - worker.last_seen > self.heartbeat_timeout_s:
                        drop_worker(
                            worker,
                            f"missed heartbeats for "
                            f"{self.heartbeat_timeout_s:g}s")
        except BaseException:
            # Run-fatal exit (SweepFailure, fabric loss, interrupt):
            # tear the fabric down so launched workers never outlive a
            # failed scheduler. Completed tasks were already recorded
            # (and journalled) through plan.record.
            self.close()
            raise
        finally:
            wire1 = self.wire_stats()
            plan.stats["wire_bytes_sent"] = (
                plan.stats.get("wire_bytes_sent", 0)
                + wire1["sent"] - wire0["sent"])
            plan.stats["wire_bytes_recv"] = (
                plan.stats.get("wire_bytes_recv", 0)
                + wire1["recv"] - wire0["recv"])
