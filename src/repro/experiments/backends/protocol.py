"""Wire protocol for the remote sweep fabric.

One frame = one message, length-prefixed over a stream socket::

    | 4-byte magic b"CFW1" | 4-byte big-endian payload length | pickle |

where the pickle is ``(kind, payload)`` — ``kind`` a short string,
``payload`` a dict. The conversation:

========== =========== ====================================================
kind       direction   payload
========== =========== ====================================================
hello      worker → s  ``worker`` id, ``pid``, ``version``, ``slots``
task       s → worker  ``tid``, ``index``, ``task`` (SweepTask), ``scale``,
                       ``seed``, ``capture``
result     worker → s  ``tid``, ``index``, ``payload`` = the
                       ``execute_task`` tuple — data, metrics snapshot,
                       trace events, elapsed (the result blob the
                       scheduler writes through the shared cache)
error      worker → s  ``tid``, ``index``, ``kind`` (taxonomy), ``message``
heartbeat  worker → s  (empty) — liveness while a long task runs
bye        either      polite close (a worker serving ``--listen`` goes
                       back to accepting; ``--once`` exits)
========== =========== ====================================================

Frames are pickled, so the fabric assumes *mutual trust*: anything that
can connect to the scheduler's listen port (or that a worker dials) can
execute code on the other side. Bind to loopback, a private network, or
tunnel over SSH — never a public interface.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional

MAGIC = b"CFW1"
_HEADER = struct.Struct(">4sI")

#: Refuse frames over this size — a corrupt header read as a length
#: must not trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """A malformed frame (bad magic, oversized length, torn pickle)."""


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {addr!r}")
    return (host or "127.0.0.1", int(port))


def format_addr(addr: tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"


def send_frame(sock: socket.socket, kind: str,
               payload: Optional[dict] = None) -> None:
    """Serialize and send one ``(kind, payload)`` frame."""
    blob = pickle.dumps((kind, payload or {}),
                        protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(MAGIC, len(blob)) + blob)


def recv_frame(sock: socket.socket) -> tuple[str, dict[str, Any]]:
    """Receive one frame; raises :class:`EOFError` on a clean close at
    a frame boundary, :class:`ProtocolError` on a malformed frame."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    blob = _recv_exact(sock, length)
    try:
        kind, payload = pickle.loads(blob)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    return kind, payload


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool = False) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if eof_ok and got == 0:
                raise EOFError("connection closed")
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)
