"""Wire protocol for the remote sweep fabric.

One frame = one message, length-prefixed over a stream socket. Two
frame revisions coexist on the same connection (the receiver switches
on the magic, so a peer may change revision mid-stream)::

    CFW1:  | 4-byte magic b"CFW1" | >I payload length | pickle |
    CFW2:  | 4-byte magic b"CFW2" | >B codec | >I body length | body |

where the CFW1 payload is ``pickle((kind, payload))`` — ``kind`` a
short string, ``payload`` a dict — and the CFW2 body is that same
pickle run through the frame's codec (``0`` = raw, ``1`` = zlib,
``2`` = zstd). Small frames ship raw even on a compressed channel
(compression below :data:`COMPRESS_MIN_BYTES` costs more than it
saves), so heartbeats stay a handful of bytes.

The conversation:

========== =========== ====================================================
kind       direction   payload
========== =========== ====================================================
hello      worker → s  ``worker`` id, ``pid``, ``version``, ``slots``,
                       ``wire`` (protocol revision), ``codecs`` the
                       worker can decode
hello      s → worker  the CFW2 acknowledgement: the negotiated
                       ``codec`` (both directions), the scheduler's
                       ``codecs``, ``wire``, and ``heartbeat_s`` — the
                       interval at which the scheduler promises to
                       pulse, arming the worker's scheduler-silence
                       deadline. Never sent to a CFW1 peer.
task       s → worker  ``tid``, ``index``, ``task`` (SweepTask), ``scale``,
                       ``seed``, ``capture``, ``digest`` (content
                       address, or None when uncached), ``have`` (the
                       scheduler's store already holds this digest's
                       blob — a hash-only ``cached`` reply suffices)
result     worker → s  ``tid``, ``index``, ``payload`` = the
                       ``execute_task`` tuple — data, metrics snapshot,
                       trace events, elapsed (the result blob the
                       scheduler writes through the shared cache)
cached     worker → s  ``tid``, ``index``, ``digest`` — the worker
                       confirms the task without shipping the blob;
                       the scheduler serves it from its own store
error      worker → s  ``tid``, ``index``, ``kind`` (taxonomy), ``message``
heartbeat  either      (empty) — worker → scheduler liveness while a
                       long task runs; scheduler → worker the promised
                       pulse behind the silence deadline
bye        either      polite close (a worker serving ``--listen`` goes
                       back to accepting; ``--once`` exits)
========== =========== ====================================================

Unknown kinds are ignored by both sides, which is what lets a CFW2
scheduler speak to a CFW1 worker for the one-release compatibility
window: negotiation is opt-in (no ``wire`` field in the hello → no
acknowledgement, no compressed frames, no scheduler heartbeats).

Frames are pickled, so the fabric assumes *mutual trust*: anything that
can connect to the scheduler's listen port (or that a worker dials) can
execute code on the other side. Bind to loopback, a private network, or
tunnel over SSH — never a public interface.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import zlib
from typing import Any, Optional

MAGIC = b"CFW1"
MAGIC2 = b"CFW2"
_HEADER = struct.Struct(">4sI")
_HEADER2 = struct.Struct(">4sBI")

#: Current protocol revision advertised in hellos.
WIRE_REVISION = 2

#: Refuse frames over this size — a corrupt header read as a length
#: must not trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 30

#: Frames smaller than this ship raw even on a compressed channel:
#: zlib on a 100-byte heartbeat costs CPU to *grow* the frame.
COMPRESS_MIN_BYTES = 512

try:  # pragma: no cover - exercised only where zstandard is installed
    import zstandard as _zstd
except ImportError:
    _zstd = None

#: codec name -> (frame codec id, compress, decompress). Order is
#: preference order for negotiation (best first).
_CODECS: dict[str, tuple] = {}
if _zstd is not None:  # pragma: no cover - optional dependency
    _CODECS["zstd"] = (2,
                       lambda b: _zstd.ZstdCompressor().compress(b),
                       lambda b: _zstd.ZstdDecompressor().decompress(b))
_CODECS["zlib"] = (1, lambda b: zlib.compress(b, 6), zlib.decompress)

_CODEC_BY_ID = {cid: (name, comp, decomp)
                for name, (cid, comp, decomp) in _CODECS.items()}


def available_codecs() -> tuple[str, ...]:
    """Codecs this interpreter can encode/decode, best first."""
    return tuple(_CODECS)


def negotiate_codec(preference: Optional[str],
                    peer_codecs) -> Optional[str]:
    """Pick the frame codec for a channel.

    ``preference`` is the local ``compress`` policy: ``"auto"`` takes
    the best codec both sides support, an explicit codec name requires
    exactly that codec, ``"none"``/``None`` disables compression.
    Returns the codec name, or ``None`` when the channel stays
    uncompressed.
    """
    if preference in (None, "none"):
        return None
    peers = tuple(peer_codecs or ())
    if preference == "auto":
        for name in _CODECS:
            if name in peers:
                return name
        return None
    if preference in _CODECS and preference in peers:
        return preference
    return None


class ProtocolError(RuntimeError):
    """A malformed frame (bad magic, oversized length, torn pickle)."""


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (host defaults to loopback).

    IPv6 literals use the bracketed URI form: ``"[::1]:9000"`` ->
    ``("::1", 9000)``; an unbracketed multi-colon host is rejected
    rather than silently mangled.
    """
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {addr!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"empty bracketed host in {addr!r}")
    elif ":" in host:
        raise ValueError(
            f"bare IPv6 literal in {addr!r}: bracket it, e.g. [::1]:9000")
    return (host or "127.0.0.1", int(port))


def format_addr(addr: tuple) -> str:
    """Inverse of :func:`parse_addr` (brackets IPv6 hosts)."""
    host, port = addr[0], addr[1]
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"


def _sendall_scatter(sock: socket.socket, header: bytes,
                     blob: bytes) -> None:
    """Write ``header + blob`` without concatenating them.

    ``socket.sendmsg`` takes a buffer list (one syscall, zero copies);
    short writes resume from the right offset via ``memoryview``
    slicing, and platforms without ``sendmsg`` fall back to two
    ``sendall`` calls — still copy-free.
    """
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # pragma: no cover - every POSIX has sendmsg
        sock.sendall(header)
        sock.sendall(blob)
        return
    buffers = [memoryview(header), memoryview(blob)]
    while buffers:
        sent = sendmsg(buffers)
        while buffers and sent >= len(buffers[0]):
            sent -= len(buffers.pop(0))
        if buffers and sent:
            buffers[0] = buffers[0][sent:]


def send_frame(sock: socket.socket, kind: str,
               payload: Optional[dict] = None,
               codec: Optional[str] = None) -> int:
    """Serialize and send one ``(kind, payload)`` frame.

    ``codec=None`` emits a legacy CFW1 frame; a codec name emits a
    CFW2 frame compressed with it (frames under
    :data:`COMPRESS_MIN_BYTES`, or that compression fails to shrink,
    ship raw inside the CFW2 envelope). Returns the frame's size in
    bytes — the wire-byte accounting the fabric benchmarks read.
    """
    blob = pickle.dumps((kind, payload or {}),
                        protocol=pickle.HIGHEST_PROTOCOL)
    if codec is None:
        header = _HEADER.pack(MAGIC, len(blob))
    else:
        codec_id = 0
        if len(blob) >= COMPRESS_MIN_BYTES:
            cid, compress, _decomp = _CODECS[codec]
            packed = compress(blob)
            if len(packed) < len(blob):
                blob, codec_id = packed, cid
        header = _HEADER2.pack(MAGIC2, codec_id, len(blob))
    _sendall_scatter(sock, header, blob)
    return len(header) + len(blob)


def recv_frame(sock: socket.socket) -> tuple[str, dict[str, Any]]:
    """Receive one frame (either revision); raises :class:`EOFError`
    on a clean close at a frame boundary, :class:`ProtocolError` on a
    malformed frame."""
    kind, payload, _n = recv_frame_sized(sock)
    return kind, payload


def recv_frame_sized(
        sock: socket.socket) -> tuple[str, dict[str, Any], int]:
    """:func:`recv_frame` plus the frame's size in bytes."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    magic = header[:4]
    if magic == MAGIC:
        _magic, length = _HEADER.unpack(header)
        codec_id, size = 0, _HEADER.size + length
    elif magic == MAGIC2:
        header += _recv_exact(sock, _HEADER2.size - _HEADER.size)
        _magic, codec_id, length = _HEADER2.unpack(header)
        size = _HEADER2.size + length
    else:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    blob = _recv_exact(sock, length)
    if codec_id:
        entry = _CODEC_BY_ID.get(codec_id)
        if entry is None:
            raise ProtocolError(
                f"frame compressed with unknown codec id {codec_id} "
                f"(decodable here: {', '.join(_CODECS) or 'none'})")
        try:
            blob = entry[2](blob)
        except Exception as exc:
            raise ProtocolError(
                f"undecompressable {entry[0]} frame: {exc}") from exc
        if len(blob) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame decompressed to {len(blob)} bytes, over limit")
    try:
        kind, payload = pickle.loads(blob)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    return kind, payload, size


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool = False) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if eof_ok and got == 0:
                raise EOFError("connection closed")
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class Channel:
    """One peer connection: socket + negotiated codec + byte meters.

    ``send`` is serialized by an internal lock so a worker's heartbeat
    thread, result callbacks and main loop (or the scheduler's idle
    heartbeat pump and select loop) can share the connection without
    interleaving frames. ``codec`` is the *transmit* codec — receiving
    is always magic-dispatched, so either side may upgrade the moment
    negotiation completes without racing frames already in flight.
    """

    __slots__ = ("sock", "codec", "bytes_in", "bytes_out", "_lock")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.codec: Optional[str] = None
        self.bytes_in = 0
        self.bytes_out = 0
        self._lock = threading.Lock()

    def send(self, kind: str, payload: Optional[dict] = None) -> int:
        with self._lock:
            n = send_frame(self.sock, kind, payload, codec=self.codec)
        self.bytes_out += n
        return n

    def recv(self) -> tuple[str, dict[str, Any]]:
        kind, payload, n = recv_frame_sized(self.sock)
        self.bytes_in += n
        return kind, payload

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
