"""Pluggable execution backends for the sweep engine.

The scheduler (:func:`repro.experiments.parallel.run_spec`) is
backend-agnostic; these classes decide where tasks actually run:

* :class:`InlineBackend` — serial, in-process (tier-1 default);
* :class:`PoolBackend` — resilient local process pool (``--jobs N``);
* :class:`RemoteBackend` — socket scheduler over ``cloudfog worker``
  daemons (``--backend remote``).

All three honour the same determinism contract (task-order merge of
pure task payloads) and the same ``exception`` / ``timeout`` /
``worker-crash`` failure taxonomy, so a spec's digests are
byte-identical whichever backend executed it. Select one through
:class:`repro.experiments.config.RunConfig`.
"""

from repro.experiments.backends.base import (
    ExecutionBackend,
    SweepPlan,
    execute_task,
)
from repro.experiments.backends.inline import InlineBackend
from repro.experiments.backends.pool import PoolBackend
from repro.experiments.backends.remote import RemoteBackend, RemoteFabricError

__all__ = [
    "ExecutionBackend",
    "SweepPlan",
    "execute_task",
    "InlineBackend",
    "PoolBackend",
    "RemoteBackend",
    "RemoteFabricError",
]
