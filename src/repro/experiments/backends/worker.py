"""Sweep worker daemon: executes pickled tasks for a remote scheduler.

Two connection modes, mirroring the scheduler's
(:class:`~repro.experiments.backends.remote.RemoteBackend`):

* ``run_worker(connect="HOST:PORT")`` — dial the scheduler (retrying
  briefly so workers may start before it listens), serve that one
  scheduler, exit when it closes the connection. This is what the
  scheduler's worker launcher spawns.
* ``run_worker(listen="HOST:PORT")`` — bind, print the bound address
  (``worker <id> listening on HOST:PORT``) and serve schedulers one
  connection at a time; with ``once=True`` exit after the first
  scheduler disconnects (CI smoke daemons clean themselves up).

A worker executes tasks strictly sequentially in its main thread with
:func:`~repro.experiments.backends.base.execute_task` — the same
function the inline and pool backends call, which is half of the
determinism argument (the other half is the scheduler's task-order
merge). A background thread sends heartbeat frames so the scheduler can
tell "busy with a long task" from "frozen": the send path is guarded by
a lock shared with result frames.

A task that raises is reported as an ``error`` frame (the scheduler
maps it onto the ``exception`` failure kind and retries elsewhere); a
task that kills the worker process drops the connection, which the
scheduler maps onto ``worker-crash`` and requeues — exactly the pool
backend's taxonomy.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Optional

from repro import __version__
from repro.experiments.backends.base import execute_task
from repro.experiments.backends.protocol import (
    ProtocolError,
    format_addr,
    parse_addr,
    recv_frame,
    send_frame,
)

#: Seconds between heartbeat frames while serving a scheduler.
DEFAULT_HEARTBEAT_S = 2.0

#: How long a dialing worker keeps retrying an unreachable scheduler.
DEFAULT_DIAL_RETRY_S = 15.0


def _log(message: str) -> None:
    print(f"[worker] {message}", file=sys.stderr, flush=True)


def serve_connection(sock: socket.socket, worker_id: str,
                     heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> str:
    """Serve one scheduler over ``sock`` until it disconnects.

    Returns a short reason string (``"bye"`` / ``"eof"``).
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    with send_lock:
        send_frame(sock, "hello", {
            "worker": worker_id,
            "pid": os.getpid(),
            "version": __version__,
            "slots": 1,
        })

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                with send_lock:
                    send_frame(sock, "heartbeat")
            except OSError:
                return

    thread = threading.Thread(target=beat, daemon=True,
                              name=f"heartbeat-{worker_id}")
    thread.start()
    try:
        while True:
            try:
                kind, payload = recv_frame(sock)
            except (EOFError, ProtocolError, OSError):
                return "eof"
            if kind == "bye":
                return "bye"
            if kind != "task":
                continue
            reply_kind, reply = _run_task(payload)
            try:
                with send_lock:
                    send_frame(sock, reply_kind, reply)
            except OSError:
                return "eof"
    finally:
        stop.set()


def _run_task(payload: dict) -> tuple[str, dict]:
    """Execute one task frame; package the result or the failure."""
    head = {"tid": payload["tid"], "index": payload["index"]}
    try:
        result = execute_task(payload["task"], payload["scale"],
                              payload["seed"], payload["capture"])
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return "error", {**head, "kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}"}
    return "result", {**head, "payload": result}


def _dial(addr: tuple[str, int], retry_s: float) -> socket.socket:
    deadline = time.monotonic() + retry_s
    while True:
        try:
            return socket.create_connection(addr, timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def run_worker(connect: Optional[str] = None,
               listen: Optional[str] = None,
               worker_id: Optional[str] = None,
               once: bool = False,
               heartbeat_s: float = DEFAULT_HEARTBEAT_S,
               dial_retry_s: float = DEFAULT_DIAL_RETRY_S) -> int:
    """Run a worker daemon; returns a process exit code.

    Exactly one of ``connect`` (dial the scheduler) and ``listen``
    (await schedulers) must be given.
    """
    if bool(connect) == bool(listen):
        raise ValueError("pass exactly one of connect= or listen=")
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"

    if connect:
        addr = parse_addr(connect)
        try:
            sock = _dial(addr, dial_retry_s)
        except OSError as exc:
            _log(f"{worker_id}: cannot reach scheduler at "
                 f"{format_addr(addr)}: {exc}")
            return 1
        with sock:
            sock.settimeout(None)
            reason = serve_connection(sock, worker_id, heartbeat_s)
        _log(f"{worker_id}: scheduler at {format_addr(addr)} "
             f"disconnected ({reason})")
        return 0

    host, port = parse_addr(listen)
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind((host, port))
    srv.listen(1)
    bound = srv.getsockname()[:2]
    # The parseable line launchers and tests discover the port from.
    print(f"worker {worker_id} listening on {format_addr(bound)}",
          flush=True)
    try:
        while True:
            sock, peer = srv.accept()
            with sock:
                sock.settimeout(None)
                reason = serve_connection(sock, worker_id, heartbeat_s)
            _log(f"{worker_id}: scheduler {peer[0]}:{peer[1]} "
                 f"disconnected ({reason})")
            if once:
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 130
    finally:
        srv.close()
