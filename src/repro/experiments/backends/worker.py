"""Sweep worker daemon: executes pickled tasks for a remote scheduler.

Two connection modes, mirroring the scheduler's
(:class:`~repro.experiments.backends.remote.RemoteBackend`):

* ``run_worker(connect="HOST:PORT")`` — dial the scheduler (retrying
  briefly so workers may start before it listens), serve that one
  scheduler, exit when it closes the connection. This is what the
  scheduler's worker launcher spawns. With ``reconnect=True`` the
  worker survives the scheduler instead: on EOF or silence it redials
  with capped exponential backoff plus jitter (the
  :class:`~repro.experiments.resilience.ResilienceConfig` backoff
  curve), resets the backoff after every established connection, and
  only exits on a clean ``bye``. Long-lived fleet workers use this to
  ride out scheduler restarts.
* ``run_worker(listen="HOST:PORT")`` — bind, print the bound address
  (``worker <id> listening on HOST:PORT``) and serve schedulers one
  connection at a time; with ``once=True`` exit after the first
  scheduler disconnects (CI smoke daemons clean themselves up).

**Slots.** With ``slots=1`` (the default) tasks run strictly
sequentially in the worker's main thread. With ``slots=N`` the worker
runs an in-process pool of N slot processes
(:class:`~repro.experiments.resilience.PoolManager`), advertises the
count in its hello so the scheduler keeps N tasks in flight, and
streams results back the moment each slot frees up. Either way every
task runs through
:func:`~repro.experiments.backends.base.execute_task` — the same
function the inline and pool backends call, which is half of the
determinism argument (the other half is the scheduler's task-order
merge). A slot process that dies (SIGKILL, OOM) is reported per
in-flight task as a ``worker-crash`` error frame and the pool is
rebuilt — the daemon itself survives, unlike the single-slot case
where a crashing task takes the whole worker (and its connection)
with it.

**Local result cache.** With ``cache_dir=`` the worker keeps a
:class:`~repro.experiments.cache.BlobCache` of full task payloads
keyed by the scheduler-computed task digest: a warm worker replays a
repeat task from disk instead of recomputing it, and when the task
frame says the scheduler's own store already holds the blob
(``have``), the worker answers with a hash-only ``cached`` frame —
warm re-runs ship hashes, not megabytes. Trace-capturing tasks bypass
the cache both ways (a cached payload cannot carry another run's
trace events).

**Liveness, both directions.** A background thread heartbeats
worker → scheduler so the scheduler can tell "busy with a long task"
from "frozen". Since CFW2 the scheduler pulses back: its hello
acknowledgement promises a heartbeat interval, which arms the
worker's *scheduler-silence deadline* — if no frame at all arrives
within ``scheduler_timeout_s`` the worker declares the scheduler dead,
abandons the connection and (under ``--listen``) returns to accepting
instead of hanging on a socket whose peer vanished without a FIN. The
deadline is only armed by the acknowledgement, so a legacy CFW1
scheduler that goes quiet while waiting for results is never
false-dropped.

A task that raises is reported as an ``error`` frame (the scheduler
maps it onto the ``exception`` failure kind and retries elsewhere); a
task that kills the worker process drops the connection, which the
scheduler maps onto ``worker-crash`` and requeues — exactly the pool
backend's taxonomy.
"""

from __future__ import annotations

import os
import random
import select
import signal
import socket
import sys
import threading
import time
from concurrent.futures import BrokenExecutor
from typing import Optional

from repro import __version__
from repro.experiments.backends.base import execute_task
from repro.experiments.backends.protocol import (
    WIRE_REVISION,
    Channel,
    ProtocolError,
    available_codecs,
    format_addr,
    negotiate_codec,
    parse_addr,
)
from repro.experiments.cache import BlobCache
from repro.experiments.resilience import PoolManager, ResilienceConfig

#: Seconds between heartbeat frames while serving a scheduler.
DEFAULT_HEARTBEAT_S = 2.0

#: How long a dialing worker keeps retrying an unreachable scheduler.
DEFAULT_DIAL_RETRY_S = 15.0

#: Scheduler-silence deadline: armed once the scheduler's hello
#: acknowledgement promises heartbeats, tripped when no frame of any
#: kind arrives for this long.
DEFAULT_SCHEDULER_TIMEOUT_S = 30.0

#: Reconnect backoff (``--reconnect``): first delay, doubling per
#: consecutive failure up to the cap.
DEFAULT_RECONNECT_BASE_S = 0.5
DEFAULT_RECONNECT_MAX_S = 30.0


def reconnect_delay_s(failures: int,
                      base_s: float = DEFAULT_RECONNECT_BASE_S,
                      cap_s: float = DEFAULT_RECONNECT_MAX_S,
                      u: Optional[float] = None) -> float:
    """Delay before reconnect attempt ``failures`` (1-based), jittered.

    The deterministic envelope is the sweep retry curve
    (:meth:`ResilienceConfig.backoff_s`) capped at ``cap_s``; equal
    jitter then draws uniformly from ``[envelope/2, envelope]`` so a
    fleet of workers orphaned by one scheduler crash does not redial in
    lockstep. ``u`` pins the uniform draw for tests.
    """
    if failures < 1:
        raise ValueError("failures must be >= 1")
    policy = ResilienceConfig(backoff_base_s=base_s, backoff_factor=2.0)
    try:
        envelope = min(policy.backoff_s(failures), cap_s)
    except OverflowError:
        envelope = cap_s
    if u is None:
        u = random.random()
    return envelope * (0.5 + 0.5 * u)


def _log(message: str) -> None:
    print(f"[worker] {message}", file=sys.stderr, flush=True)


def serve_connection(sock: socket.socket, worker_id: str,
                     heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                     slots: int = 1,
                     cache: Optional[BlobCache] = None,
                     compress: Optional[str] = "auto",
                     scheduler_timeout_s: float =
                     DEFAULT_SCHEDULER_TIMEOUT_S) -> str:
    """Serve one scheduler over ``sock`` until it disconnects.

    Returns a short reason string (``"bye"`` / ``"eof"`` /
    ``"silent"``).
    """
    slots = max(1, int(slots))
    channel = Channel(sock)
    stop = threading.Event()

    channel.send("hello", {
        "worker": worker_id,
        "pid": os.getpid(),
        "version": __version__,
        "slots": slots,
        "wire": WIRE_REVISION,
        "codecs": (available_codecs()
                   if compress not in (None, "none") else ()),
    })

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                channel.send("heartbeat")
            except OSError:
                return

    thread = threading.Thread(target=beat, daemon=True,
                              name=f"heartbeat-{worker_id}")
    thread.start()

    pool = PoolManager(slots) if slots > 1 else None
    inflight: dict = {}  # future -> task frame payload
    acked = False  # scheduler sent a CFW2 hello-ack (it will pulse)
    last_frame = time.monotonic()

    def reply(payload: dict) -> Optional[tuple[str, dict]]:
        """Resolve a task frame without executing, if possible."""
        head = {"tid": payload["tid"], "index": payload["index"]}
        digest = payload.get("digest")
        if not digest or payload.get("capture"):
            return None
        if payload.get("have"):
            # The scheduler's store already holds this digest's blob:
            # confirm by hash, ship nothing.
            return "cached", {**head, "digest": digest}
        if cache is not None:
            hit = cache.get(digest)
            if hit is not None:
                return "result", {**head, "payload": hit}
        return None

    def finish(payload: dict, result) -> tuple[str, dict]:
        """Package a computed payload, warming the local cache."""
        digest = payload.get("digest")
        if digest and cache is not None and not payload.get("capture"):
            cache.put(digest, result)
        return "result", {"tid": payload["tid"],
                          "index": payload["index"], "payload": result}

    def pump_pool() -> None:
        """Stream completed slot results back; absorb slot crashes."""
        for fut in [f for f in inflight if f.done()]:
            payload = inflight.pop(fut, None)
            if payload is None:
                continue
            head = {"tid": payload["tid"], "index": payload["index"]}
            try:
                result = fut.result()
            except BrokenExecutor:
                # One dead slot process breaks the whole pool: report
                # every in-flight task as a worker-crash (the scheduler
                # requeues them through the usual taxonomy) and stand
                # up a fresh pool. The daemon itself survives.
                doomed = [payload] + list(inflight.values())
                inflight.clear()
                pool.rebuild()
                for p in doomed:
                    channel.send("error", {
                        "tid": p["tid"], "index": p["index"],
                        "kind": "worker-crash",
                        "message": f"slot process died on worker "
                                   f"{worker_id} (pool rebuilt)"})
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                channel.send("error", {
                    **head, "kind": "exception",
                    "message": f"{type(exc).__name__}: {exc}"})
            else:
                channel.send(*finish(payload, result))

    try:
        while True:
            if pool is not None and inflight:
                pump_pool()
            timeout = 0.05 if inflight else (0.25 if acked else 1.0)
            try:
                readable, _, _ = select.select([sock], [], [], timeout)
            except OSError:
                return "eof"
            if readable:
                try:
                    kind, payload = channel.recv()
                except (EOFError, ProtocolError, OSError):
                    return "eof"
                last_frame = time.monotonic()
                if kind == "bye":
                    return "bye"
                if kind == "hello":
                    # CFW2 acknowledgement: adopt the negotiated
                    # transmit codec and arm the silence deadline.
                    channel.codec = negotiate_codec(
                        compress, (payload.get("codec"),))
                    acked = True
                    continue
                if kind != "task":
                    continue  # heartbeat / future frame kinds
                resolved = reply(payload)
                if resolved is not None:
                    channel.send(*resolved)
                elif pool is not None:
                    inflight[pool.submit(
                        execute_task, payload["task"], payload["scale"],
                        payload["seed"], payload.get("capture", False),
                    )] = payload
                else:
                    channel.send(*_run_task(payload, finish))
            if (acked and scheduler_timeout_s
                    and time.monotonic() - last_frame
                    > scheduler_timeout_s):
                return "silent"
    except OSError:
        return "eof"
    finally:
        stop.set()
        if pool is not None:
            pool.shutdown(terminate=True)


def _run_task(payload: dict, finish) -> tuple[str, dict]:
    """Execute one task frame; package the result or the failure."""
    try:
        result = execute_task(payload["task"], payload["scale"],
                              payload["seed"],
                              payload.get("capture", False))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return "error", {"tid": payload["tid"],
                         "index": payload["index"],
                         "kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}"}
    return finish(payload, result)


def _exit_on_sigterm(signum, frame):  # pragma: no cover - signal path
    raise SystemExit(128 + signum)


def _dial(addr: tuple[str, int], retry_s: float) -> socket.socket:
    deadline = time.monotonic() + retry_s
    while True:
        try:
            return socket.create_connection(addr, timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def run_worker(connect: Optional[str] = None,
               listen: Optional[str] = None,
               worker_id: Optional[str] = None,
               once: bool = False,
               heartbeat_s: float = DEFAULT_HEARTBEAT_S,
               dial_retry_s: float = DEFAULT_DIAL_RETRY_S,
               slots: int = 1,
               cache_dir: Optional[str] = None,
               compress: Optional[str] = "auto",
               scheduler_timeout_s: float =
               DEFAULT_SCHEDULER_TIMEOUT_S,
               reconnect: bool = False,
               reconnect_base_s: float = DEFAULT_RECONNECT_BASE_S,
               reconnect_max_s: float = DEFAULT_RECONNECT_MAX_S,
               sleep=time.sleep) -> int:
    """Run a worker daemon; returns a process exit code.

    Exactly one of ``connect`` (dial the scheduler) and ``listen``
    (await schedulers) must be given. ``slots`` sizes the in-worker
    slot pool (1 = sequential in the main thread); ``cache_dir``
    enables the local payload cache; ``compress`` is the wire codec
    policy (``auto`` / ``zlib`` / ``zstd`` / ``none``);
    ``scheduler_timeout_s`` is the scheduler-silence deadline (0
    disables it). With ``reconnect=True`` a ``connect`` worker redials
    after EOF/silence under :func:`reconnect_delay_s` backoff and only
    exits on a clean ``bye``; ``sleep`` is injectable for tests.
    """
    if bool(connect) == bool(listen):
        raise ValueError("pass exactly one of connect= or listen=")
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    if reconnect and not connect:
        raise ValueError("reconnect requires connect= mode")
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    cache = BlobCache(cache_dir) if cache_dir else None

    # Die *through* the cleanup path on SIGTERM: the scheduler tears
    # launched workers down with terminate(), and a multi-slot daemon
    # killed mid-serve would otherwise orphan its slot processes —
    # which keep inherited stdout/stderr pipes open long after the
    # sweep, wedging any pipeline the scheduler's process ran under.
    try:
        signal.signal(signal.SIGTERM, _exit_on_sigterm)
    except (ValueError, OSError):  # non-main thread or odd platform
        pass

    def serve(sock: socket.socket) -> str:
        sock.settimeout(None)
        return serve_connection(
            sock, worker_id, heartbeat_s, slots=slots, cache=cache,
            compress=compress, scheduler_timeout_s=scheduler_timeout_s)

    if connect:
        addr = parse_addr(connect)
        failures = 0
        while True:
            try:
                sock = _dial(addr, dial_retry_s)
            except OSError as exc:
                _log(f"{worker_id}: cannot reach scheduler at "
                     f"{format_addr(addr)}: {exc}")
                if not reconnect:
                    return 1
                failures += 1
                delay = reconnect_delay_s(
                    failures, reconnect_base_s, reconnect_max_s)
                _log(f"{worker_id}: redial #{failures} in {delay:.2f}s")
                sleep(delay)
                continue
            failures = 0  # an established connection resets the curve
            with sock:
                reason = serve(sock)
            _log(f"{worker_id}: scheduler at {format_addr(addr)} "
                 f"disconnected ({reason})")
            if not reconnect or reason == "bye":
                return 0
            failures += 1
            delay = reconnect_delay_s(
                failures, reconnect_base_s, reconnect_max_s)
            _log(f"{worker_id}: reconnecting in {delay:.2f}s")
            sleep(delay)

    host, port = parse_addr(listen)
    srv = socket.socket(
        socket.AF_INET6 if ":" in host else socket.AF_INET,
        socket.SOCK_STREAM)
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind((host, port))
    srv.listen(1)
    bound = srv.getsockname()[:2]
    # The parseable line launchers and tests discover the port from.
    print(f"worker {worker_id} listening on {format_addr(bound)}",
          flush=True)
    try:
        while True:
            sock, peer = srv.accept()
            with sock:
                reason = serve(sock)
            _log(f"{worker_id}: scheduler "
                 f"{format_addr(peer[:2])} disconnected ({reason})")
            if once:
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 130
    finally:
        srv.close()
