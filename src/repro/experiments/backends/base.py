"""Execution-backend contract for the sweep scheduler.

:func:`repro.experiments.parallel.run_spec` owns everything that must
be backend-agnostic — task decomposition, cache lookups, the crash-safe
journal, deterministic task-order merging — and hands the residual work
("run these task indices, call me back") to an
:class:`ExecutionBackend` as a :class:`SweepPlan`:

* :class:`~repro.experiments.backends.inline.InlineBackend` — serial,
  in-process (what tier-1 tests use);
* :class:`~repro.experiments.backends.pool.PoolBackend` — the
  process-pool watchdog event loop
  (:class:`~repro.experiments.resilience.PoolManager` + per-task
  deadlines + pool rebuild);
* :class:`~repro.experiments.backends.remote.RemoteBackend` — the
  socket scheduler dispatching pickled tasks to ``cloudfog worker``
  daemons.

The determinism contract does not belong to any backend: payloads are
pure functions of ``(task, scale, seed)`` and the scheduler merges in
task order, so inline, pool and remote runs of the same spec produce
byte-identical series/trace/metrics digests. A backend only decides
*where* ``execute_task`` runs and how its failures map onto the
``exception`` / ``timeout`` / ``worker-crash`` taxonomy via
``plan.dispose``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Optional

import repro.obs as obs_mod
from repro.experiments.api import SweepTask, now
from repro.experiments.resilience import ResilienceConfig
from repro.obs import Observability, TraceRecorder


def execute_task(task: SweepTask, scale: float, seed: int,
                 capture_trace: bool = False):
    """Run one task under a private observability context.

    Returns ``(data, metrics_snapshot, events, elapsed_s)`` where
    ``events`` is a tuple of ``(t, component, kind, data)`` tuples (empty
    unless ``capture_trace``). This is the function every backend ships
    to its workers — process-pool pickle, remote task frame, or a plain
    call inline: it takes only picklable values and resolves the runner
    by name from :data:`repro.experiments.specs.TASK_RUNNERS`.
    """
    from repro.experiments.specs import TASK_RUNNERS
    runner = TASK_RUNNERS.get(task.runner)
    if runner is None:
        raise KeyError(
            f"unknown task runner {task.runner!r} "
            f"(registered: {sorted(TASK_RUNNERS)})")
    task_obs = Observability(
        trace=TraceRecorder() if capture_trace else None)
    t0 = now()
    with obs_mod.use(task_obs):
        data = runner(scale, seed, task.params)
    elapsed = now() - t0
    events = (tuple((e.t, e.component, e.kind, e.data)
                    for e in task_obs.trace.events)
              if capture_trace else ())
    return data, task_obs.metrics.snapshot(), events, elapsed


@dataclass
class SweepPlan:
    """One sweep's remaining work, as handed to a backend.

    ``record(i, payload)`` accepts task ``i``'s successful payload (the
    scheduler stores, caches and journals it — for the remote backend
    this is the shared-artifact-store write-through). ``dispose(i,
    attempt, kind, message)`` accounts one failed attempt and returns
    the backoff delay before the next attempt, or ``None`` when the
    task is terminally dead (it raises
    :class:`~repro.experiments.resilience.SweepFailure` itself unless
    keep-going). ``stats`` is the run's harness-telemetry dict;
    backends may add their own counters (``pool_rebuilds``,
    ``workers_lost``, ...).
    """

    #: Full task list (indices below refer into it).
    tasks: list
    #: Indices still to execute (cache hits already removed).
    todo: list
    scale: float
    seed: int
    #: Capture per-task trace events for the parent obs context.
    capture: bool
    #: Retry/timeout/keep-going policy for this run.
    resilience: ResilienceConfig
    record: Callable[[int, Any], None]
    dispose: Callable[[int, int, str, str], Optional[float]]
    stats: dict
    #: Per-task content-address digests (None entries when the run has
    #: no cache). The remote backend ships them with task frames so
    #: workers can key their local payload caches identically.
    digests: Optional[list] = None
    #: Todo indices whose blob the scheduler's store already holds but
    #: could not serve directly (cache reads bypassed by an attached
    #: obs context): the remote backend marks their task frames
    #: ``have`` so workers answer with hash-only ``cached`` frames.
    known: Optional[set] = None
    #: Resolve task ``i``'s payload from the scheduler's store (the
    #: ``cached``-frame redemption path); None on a miss.
    lookup: Optional[Callable[[int], Optional[Any]]] = None


class ExecutionBackend(abc.ABC):
    """Where sweep tasks run. Stateless backends (inline, pool) build
    their machinery per :meth:`execute`; the remote backend keeps its
    worker fabric alive across calls until :meth:`close`."""

    #: Short name (matches the ``--backend`` CLI choice).
    name = "?"

    @abc.abstractmethod
    def execute(self, plan: SweepPlan) -> None:
        """Run every ``plan.todo`` task, reporting through
        ``plan.record`` / ``plan.dispose``. Returns when all tasks are
        recorded or terminally disposed; raises only for run-fatal
        conditions (``SweepFailure``, lost fabric, interrupt)."""

    def close(self) -> None:
        """Release any long-lived resources (no-op by default)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"
