"""Serial in-process execution — the tier-1 default.

Tasks run one at a time in the scheduler's own process with
retry/backoff but no preemptive timeout: an inline task cannot be
cancelled, only a worker process can (the pool and remote backends own
that part of the taxonomy).
"""

from __future__ import annotations

from repro.experiments.backends.base import (
    ExecutionBackend,
    SweepPlan,
    execute_task,
)


class InlineBackend(ExecutionBackend):
    """Run every task serially in the calling process."""

    name = "inline"

    def execute(self, plan: SweepPlan) -> None:
        cfg = plan.resilience
        for i in plan.todo:
            attempt = 1
            while True:
                try:
                    payload = execute_task(plan.tasks[i], plan.scale,
                                           plan.seed, plan.capture)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    delay = plan.dispose(i, attempt, "exception",
                                         f"{type(exc).__name__}: {exc}")
                    if delay is None:
                        break
                    cfg.sleep(delay)
                    attempt += 1
                else:
                    plan.record(i, payload)
                    break
