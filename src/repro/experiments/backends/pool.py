"""Process-pool execution: the watchdog event loop behind ``--jobs N``.

This is the PR-4 resilient pool loop, lifted out of ``parallel.py``
behind the :class:`~repro.experiments.backends.base.ExecutionBackend`
interface: per-task deadlines with in-flight capped at the worker
count, timeout cancellation via pool terminate, transparent rebuild
after ``BrokenProcessPool`` (salvaging futures that finished despite
the breakage and requeueing innocent in-flight tasks without attempt
penalty), a backoff queue for retries, and graceful SIGINT draining
(completed futures are recorded — and journalled by the scheduler —
before the interrupt propagates).

With one effective worker (or one remaining task) it degenerates to
the inline backend, which is also what ``backend="auto"`` with the
default ``jobs=1`` resolves to — so tier-1 tests never pay for a pool.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait

from repro.experiments.backends.base import (
    ExecutionBackend,
    SweepPlan,
    execute_task,
)
from repro.experiments.backends.inline import InlineBackend
from repro.experiments.config import resolve_jobs
from repro.experiments.resilience import PoolManager


class PoolBackend(ExecutionBackend):
    """Run tasks on a self-healing local process pool."""

    name = "pool"

    def __init__(self, jobs: int | None = None):
        #: Requested worker count (``0``/``None`` = all cores).
        self.jobs = jobs

    def execute(self, plan: SweepPlan) -> None:
        workers = min(resolve_jobs(self.jobs), max(1, len(plan.todo)))
        if workers <= 1 or len(plan.todo) <= 1:
            InlineBackend().execute(plan)
            return
        _run_pooled(plan, workers)


def _run_pooled(plan: SweepPlan, workers: int) -> None:
    """Pooled execution with watchdog timeouts, retry/backoff, pool
    rebuild after worker crashes, and graceful SIGINT draining."""
    tasks, scale, seed = plan.tasks, plan.scale, plan.seed
    capture, cfg, stats = plan.capture, plan.resilience, plan.stats
    record, dispose = plan.record, plan.dispose

    pending = deque((i, 1) for i in plan.todo)
    backoff: list[tuple[float, int, int]] = []  # (ready_at, index, attempt)
    inflight: dict = {}  # future -> (index, attempt, deadline)
    mgr = PoolManager(workers)

    interrupted: list[bool] = []
    prev_handler = None
    if threading.current_thread() is threading.main_thread():
        try:
            prev_handler = signal.signal(
                signal.SIGINT, lambda _s, _f: interrupted.append(True))
        except ValueError:  # pragma: no cover - non-main interpreter
            prev_handler = None

    def requeue_or_fail(i, attempt, kind, message):
        delay = dispose(i, attempt, kind, message)
        if delay is not None:
            backoff.append((time.monotonic() + delay, i, attempt + 1))

    def salvage_or(fut, fallback):
        """Collect a future that finished despite pool trouble, else
        apply ``fallback`` to its task."""
        i, attempt, _deadline = inflight.pop(fut)
        if fut.done() and not fut.cancelled():
            try:
                record(i, fut.result())
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException:
                pass
        fallback(i, attempt)

    try:
        while pending or backoff or inflight:
            if interrupted:
                raise KeyboardInterrupt
            nowm = time.monotonic()
            if backoff:
                ready = sorted(b for b in backoff if b[0] <= nowm)
                backoff = [b for b in backoff if b[0] > nowm]
                pending.extend((i, att) for _t, i, att in ready)
            while pending and len(inflight) < workers:
                i, attempt = pending.popleft()
                fut = mgr.submit(execute_task, tasks[i], scale, seed,
                                 capture)
                deadline = (time.monotonic() + cfg.timeout_s
                            if cfg.timeout_s else None)
                inflight[fut] = (i, attempt, deadline)
            if not inflight:
                wake = min(b[0] for b in backoff)
                cfg.sleep(max(0.0, wake - time.monotonic()))
                continue

            timeout = cfg.poll_interval_s
            deadlines = [d for (_i, _a, d) in inflight.values()
                         if d is not None]
            if deadlines:
                timeout = max(0.0, min(timeout,
                                       min(deadlines) - time.monotonic()))
            done, _ = wait(list(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            crashed = False
            for fut in done:
                i, attempt, _deadline = inflight.pop(fut)
                try:
                    payload = fut.result()
                except BrokenExecutor as exc:
                    crashed = True
                    requeue_or_fail(
                        i, attempt, "worker-crash",
                        f"worker process died "
                        f"({exc if str(exc) else 'BrokenProcessPool'})")
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    requeue_or_fail(i, attempt, "exception",
                                    f"{type(exc).__name__}: {exc}")
                else:
                    record(i, payload)

            if crashed:
                # The pool is broken: every in-flight future is dead
                # with it. Requeue them and stand up a fresh pool.
                for fut in list(inflight):
                    salvage_or(fut, lambda i, att: requeue_or_fail(
                        i, att, "worker-crash",
                        "worker process died (pool broke mid-task)"))
                mgr.rebuild()
                stats["pool_rebuilds"] = mgr.rebuilds

            if cfg.timeout_s and inflight:
                nowm = time.monotonic()
                expired = [fut for fut, (_i, _a, d) in inflight.items()
                           if d is not None and nowm >= d
                           and not fut.done()]
                if expired:
                    # A hung worker cannot be cancelled individually:
                    # fail the expired tasks, requeue the innocent
                    # in-flight ones (no attempt penalty) and rebuild.
                    for fut in expired:
                        i, attempt, _deadline = inflight.pop(fut)
                        requeue_or_fail(
                            i, attempt, "timeout",
                            f"exceeded per-task timeout of "
                            f"{cfg.timeout_s}s")
                    for fut in list(inflight):
                        salvage_or(fut,
                                   lambda i, att: pending.append((i, att)))
                    mgr.rebuild()
                    stats["pool_rebuilds"] = mgr.rebuilds

            if interrupted:
                # Graceful drain: completed futures above were already
                # recorded (and journalled); abandon the rest.
                raise KeyboardInterrupt
    except BaseException:
        mgr.shutdown(terminate=True)
        raise
    else:
        mgr.shutdown()
    finally:
        if prev_handler is not None:
            signal.signal(signal.SIGINT, prev_handler)
