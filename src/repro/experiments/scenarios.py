"""Experiment scenarios: the paper's two testbeds, with a scale knob.

The paper evaluates on two setups (§IV):

* **PeerSim simulation** — 10 000 players (10 % supernode-capable, 600
  promoted), 5 main datacenters, EdgeCloud +45 servers, communication
  latencies from a PlanetLab trace;
* **PlanetLab** — 750 nodes nationwide (300 supernode-capable), 2
  datacenter nodes (Princeton + UCLA), EdgeCloud +8 servers.

``scale`` shrinks all population counts proportionally so unit tests and
benchmarks run in seconds while preserving every *ratio* that drives the
results (players per supernode, slots per online player, servers per
metro). Full-scale runs use ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.network.latency import LatencyParams
from repro.network.planetlab import PLANETLAB_LATENCY_PARAMS
from repro.sim.rng import RngRegistry
from repro.workload.players import Population, build_population

#: Steady-state online fraction implied by the paper's play-time mixture:
#: E[daily play] / 24 h = (0.5·1 h + 0.3·3.5 h + 0.2·14.5 h) / 24 ≈ 0.19.
ONLINE_FRACTION = 0.19


@dataclass(frozen=True)
class Scenario:
    """A named, fully parameterized experimental setup."""

    name: str
    n_players: int
    n_datacenters: int
    n_supernodes: int
    n_edge_servers: int
    capable_fraction: float
    n_metros: int
    metro_spread_km: float
    zipf_exponent: float
    latency_params: Optional[LatencyParams]
    seed: int = 42

    @property
    def n_online(self) -> int:
        """Typical number of concurrently online players."""
        return max(1, int(round(ONLINE_FRACTION * self.n_players)))

    def with_(self, **changes) -> "Scenario":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)

    def build(self, seed: Optional[int] = None) -> Population:
        """Materialize the population for this scenario."""
        rngs = RngRegistry(self.seed if seed is None else seed)
        return build_population(
            rngs,
            n_players=self.n_players,
            n_datacenters=self.n_datacenters,
            n_supernodes=self.n_supernodes,
            capable_fraction=self.capable_fraction,
            n_metros=self.n_metros,
            latency_params=self.latency_params,
            n_edge_servers=self.n_edge_servers,
            metro_spread_km=self.metro_spread_km,
            zipf_exponent=self.zipf_exponent,
        )

    def online_sample(self, population: Population,
                      n: Optional[int] = None,
                      salt: str = "online") -> np.ndarray:
        """Sample a set of concurrently online player ids."""
        count = min(self.n_online if n is None else n, self.n_players)
        rng = population.rngs.stream(salt)
        return np.sort(rng.choice(
            self.n_players, size=count, replace=False))


def peersim_scenario(scale: float = 1.0, seed: int = 42) -> Scenario:
    """The paper's simulation testbed, optionally scaled down."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must lie in (0, 1]")
    return Scenario(
        name="peersim",
        n_players=max(50, int(round(10_000 * scale))),
        n_datacenters=5,
        n_supernodes=max(3, int(round(600 * scale))),
        n_edge_servers=max(2, int(round(45 * scale))),
        capable_fraction=0.10,
        n_metros=50,
        metro_spread_km=40.0,
        zipf_exponent=1.0,
        latency_params=None,  # consumer-population defaults
        seed=seed,
    )


def planetlab_scenario(scale: float = 1.0, seed: int = 42) -> Scenario:
    """The paper's PlanetLab testbed, optionally scaled down.

    Hosts sit at university sites: tight clusters (5 km spread),
    near-uniform site populations, low access latencies.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must lie in (0, 1]")
    return Scenario(
        name="planetlab",
        n_players=max(40, int(round(750 * scale))),
        n_datacenters=2,
        n_supernodes=max(2, int(round(300 * scale))),
        n_edge_servers=max(1, int(round(8 * scale))),
        capable_fraction=0.40,  # 300 of 750 nodes are capable
        n_metros=60,
        metro_spread_km=5.0,
        zipf_exponent=0.2,  # near-uniform site sizes
        latency_params=PLANETLAB_LATENCY_PARAMS,
        seed=seed,
    )
