"""Supernode cooperation (extension: the paper's §V future work).

"In our future work, we will study the cooperation among supernodes in
rendering and transmiting game videos to further reduce response
latency." This experiment implements the natural first design: supernodes
in one neighbourhood monitor their uplink demand, and an overloaded
supernode *offloads* players to an under-loaded neighbour (which also
holds the virtual world via the cloud's update fan-out, so it can render
for any player). Offloaded players pay a small extra downstream latency —
the cooperating supernode is a few km farther — in exchange for escaping
the hot node's queue.

Setup: a skewed initial placement (popular supernodes happen — e.g. the
first one listed by the cloud fills first). Without cooperation the hot
supernode saturates while its neighbours idle; with cooperation the
neighbourhood behaves like one pooled uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.player import PlayerEndpoint
from repro.core.supernode import SupernodeServer
from repro.metrics.series import FigureSeries
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.streaming.encoder import SegmentEncoder
from repro.streaming.video import SEGMENT_DURATION_S
from repro.workload.games import GAMES


@dataclass(frozen=True)
class CooperationConfig:
    """Microcosm parameters for the cooperation experiment."""

    n_supernodes: int = 4
    capacity_slots: int = 5
    duration_s: float = 40.0
    warmup_s: float = 8.0
    #: How often supernodes exchange load reports and rebalance.
    rebalance_interval_s: float = 1.0
    #: Offload when demand exceeds this fraction of the uplink...
    high_watermark: float = 0.9
    #: ...and only onto neighbours below this fraction.
    low_watermark: float = 0.7
    #: Extra one-way downstream latency after offloading (the
    #: cooperating supernode is farther from the player).
    offload_extra_latency_s: float = 0.004
    server_receive_mean_s: float = 0.045
    downstream_median_s: float = 0.006
    downstream_sigma: float = 0.5
    render_delay_s: float = 0.005


@dataclass
class _Placement:
    endpoint: PlayerEndpoint
    encoder: SegmentEncoder
    server: SupernodeServer
    downstream_s: float
    l_r: float


def simulate_cooperation(
    n_players: int,
    hot_fraction: float,
    use_cooperation: bool,
    seed: int = 0,
    config: CooperationConfig | None = None,
) -> dict[str, float]:
    """Run the cooperation microcosm.

    Parameters
    ----------
    n_players:
        Total players in the neighbourhood.
    hot_fraction:
        Fraction initially assigned to the first ("hot") supernode;
        the rest spread evenly over the neighbours.
    use_cooperation:
        Enable the load-report/offload protocol.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in [0, 1]")
    cfg = config or CooperationConfig()
    rngs = RngRegistry(seed)
    rng = rngs.stream("cooperation")
    env = Environment()

    supernodes = [
        SupernodeServer(env, host_id=i, capacity_slots=cfg.capacity_slots,
                        render_delay_s=cfg.render_delay_s)
        for i in range(cfg.n_supernodes)
    ]
    placements: dict[int, _Placement] = {}
    stats = {"offloads": 0}

    n_hot = int(round(hot_fraction * n_players))
    assignment = [0] * n_hot
    others = list(range(1, cfg.n_supernodes)) or [0]
    for k in range(n_players - n_hot):
        assignment.append(others[k % len(others)])

    for pid in range(n_players):
        sn = supernodes[assignment[pid]]
        game = GAMES[int(rng.integers(len(GAMES)))]
        downstream = float(rng.lognormal(
            np.log(cfg.downstream_median_s), cfg.downstream_sigma))
        l_r = float(max(0.005, rng.normal(
            cfg.server_receive_mean_s, cfg.server_receive_mean_s * 0.2)))
        encoder = SegmentEncoder(pid, game.latency_req_s,
                                 game.loss_tolerance)
        endpoint = PlayerEndpoint(
            env, pid, game, sn, feedback_delay_s=downstream,
            use_adaptation=False, stats_after_s=cfg.warmup_s)
        sn.attach_player(pid, encoder, endpoint.deliver, downstream)
        placements[pid] = _Placement(endpoint, encoder, sn, downstream, l_r)
        env.process(_segment_loop(env, cfg, placements, pid))

    def demand_bps(sn: SupernodeServer) -> float:
        return sum(enc.bitrate_bps for enc in sn.encoders.values())

    def rebalance_proc():
        while env.now < cfg.duration_s:
            yield env.timeout(cfg.rebalance_interval_s)
            for sn in supernodes:
                while demand_bps(sn) > cfg.high_watermark * sn.uplink_rate_bps:
                    # Coolest neighbour with headroom takes one player.
                    neighbours = sorted(
                        (n for n in supernodes if n is not sn),
                        key=lambda n: demand_bps(n) / n.uplink_rate_bps)
                    if not neighbours:
                        break
                    target = neighbours[0]
                    headroom = (cfg.low_watermark * target.uplink_rate_bps
                                - demand_bps(target))
                    movable = [p for p, pl in placements.items()
                               if pl.server is sn
                               and pl.encoder.bitrate_bps <= headroom]
                    if not movable:
                        break
                    pid = movable[0]
                    pl = placements[pid]
                    sn.detach_player(pid)
                    new_down = pl.downstream_s + cfg.offload_extra_latency_s
                    pl.server = target
                    pl.downstream_s = new_down
                    pl.endpoint.server = target
                    target.attach_player(pid, pl.encoder,
                                         pl.endpoint.deliver, new_down)
                    stats["offloads"] += 1

    if use_cooperation:
        env.process(rebalance_proc())
    env.run(until=cfg.duration_s + 2.0)

    endpoints = [p.endpoint for p in placements.values()]
    return {
        "continuity": float(np.mean(
            [e.stats.continuity for e in endpoints])),
        "satisfied": float(np.mean(
            [e.is_satisfied() for e in endpoints])),
        "latency_s": float(np.mean(
            [e.stats.mean_latency_s for e in endpoints
             if e.stats.latency_count > 0] or [0.0])),
        "offloads": float(stats["offloads"]),
    }


def _segment_loop(env, cfg, placements, player_id):
    rng = np.random.default_rng(player_id + 101)
    yield env.timeout(float(rng.uniform(0, SEGMENT_DURATION_S)))
    while env.now < cfg.duration_s:
        pl = placements[player_id]
        action_time = env.now

        def start_render(_ev, action_time=action_time):
            current = placements[player_id].server
            if player_id in current.encoders:
                current.render_and_send(player_id, action_time)

        ev = env.timeout(pl.l_r)
        ev.callbacks.append(start_render)
        yield env.timeout(SEGMENT_DURATION_S)


def cooperation_sweep(
    hot_fractions=(0.25, 0.4, 0.55, 0.7, 0.85),
    n_players: int = 16,
    seeds=(0, 1),
    config: CooperationConfig | None = None,
) -> list[FigureSeries]:
    """Satisfied players vs load skew, with and without cooperation."""
    solo = FigureSeries(label="no cooperation",
                        x_label="fraction on the hot supernode",
                        y_label="satisfied players")
    coop = FigureSeries(label="with cooperation",
                        x_label="fraction on the hot supernode",
                        y_label="satisfied players")
    for frac in hot_fractions:
        for series, flag in ((solo, False), (coop, True)):
            vals = [simulate_cooperation(
                n_players, frac, flag, seed=s, config=config)["satisfied"]
                for s in seeds]
            series.add(frac, float(np.mean(vals)))
    return [solo, coop]
