"""One-stop experiment runner (back-compat shims over the typed API).

The experiment catalogue now lives in typed
:class:`~repro.experiments.api.ExperimentSpec` entries
(:mod:`repro.experiments.specs`) executed by the parallel sweep engine
(:mod:`repro.experiments.parallel`). This module keeps the historical
surface alive:

* :data:`EXPERIMENTS` — **deprecated**: the old bare-callable registry,
  kept as thin shims; iterate :data:`repro.experiments.specs.SPECS` (or
  call :func:`repro.experiments.parallel.run_named`) instead to get
  typed results with metrics, digests and caching.
* :func:`run_experiment` / :func:`run_all` — same signatures and return
  types as before, now with ``jobs`` (process-parallel sweep points)
  and ``cache_dir`` (content-addressed result cache) pass-throughs.
"""

from __future__ import annotations

import difflib
from typing import Callable, Optional

import repro.obs as obs_mod
from repro.experiments.api import RunResult
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import run_spec
from repro.experiments.resilience import ResilienceConfig
from repro.experiments.specs import SPECS, get_spec
from repro.metrics.series import FigureSeries


def _legacy_entry(name: str) -> Callable[[float, int], list[FigureSeries]]:
    def _run(scale: float, seed: int) -> list[FigureSeries]:
        return run_spec(get_spec(name), scale, seed).series
    _run.__name__ = f"run_{name}"
    _run.__doc__ = (f"Deprecated shim for {name!r}; use "
                    f"repro.experiments.parallel.run_named instead.")
    return _run


#: **Deprecated** bare-callable registry, preserved for callers of the
#: pre-spec API. Prefer :data:`repro.experiments.specs.SPECS`.
EXPERIMENTS: dict[str, Callable[[float, int], list[FigureSeries]]] = {
    name: _legacy_entry(name) for name in SPECS
}


def resolve_experiments(name: str) -> list[str]:
    """Expand ``name`` into experiment keys.

    An exact key resolves to itself; a whole-figure prefix (``"fig8"``)
    resolves to its lettered panels (``fig8a``, ``fig8b``). Anything
    else — including ambiguous numeric prefixes like ``"fig1"``, which
    used to silently expand to fig10+fig11 — raises with suggestions.
    """
    if name in EXPERIMENTS:
        return [name]
    panels = sorted(
        k for k in EXPERIMENTS
        if len(k) == len(name) + 1 and k.startswith(name)
        and k[-1].isalpha()
    )
    if panels:
        return panels
    candidates = sorted(EXPERIMENTS)
    suggestions = difflib.get_close_matches(name, candidates, n=3,
                                            cutoff=0.4)
    suggestions.extend(k for k in candidates
                       if k.startswith(name) and k not in suggestions)
    hint = (f"; did you mean {', '.join(sorted(set(suggestions)))}?"
            if suggestions else "")
    raise ValueError(
        f"unknown experiment {name!r}{hint} (choose an exact key from "
        f"{candidates} or a whole-figure prefix like 'fig5')")


def _make_cache(cache_dir: Optional[str]) -> Optional[ResultCache]:
    return ResultCache(cache_dir) if cache_dir else None


def run_results(
    name: str, scale: float = 0.1, seed: int = 42,
    obs: Optional["obs_mod.Observability"] = None,
    *,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    resilience: Optional[ResilienceConfig] = None,
    resume: bool = False,
) -> dict[str, RunResult]:
    """Run ``name`` (exact key or whole-figure prefix) and return the
    full typed :class:`RunResult` per experiment key.

    This is the surface the CLI uses: unlike :func:`run_experiment` it
    preserves task accounting, digests and — in keep-going mode — the
    structured :class:`~repro.experiments.resilience.TaskFailure` list
    for partial results.
    """
    keys = resolve_experiments(name)
    cache = cache if cache is not None else _make_cache(cache_dir)
    results: dict[str, RunResult] = {}
    for key in keys:
        results[key] = run_spec(get_spec(key), scale, seed, jobs=jobs,
                                cache=cache, obs=obs,
                                resilience=resilience, resume=resume)
    if obs is not None:
        obs.finish()
    return results


def run_experiment(
    name: str, scale: float = 0.1, seed: int = 42,
    obs: Optional["obs_mod.Observability"] = None,
    *,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    resilience: Optional[ResilienceConfig] = None,
    resume: bool = False,
) -> list[FigureSeries]:
    """Regenerate one figure's data; ``name`` is a key of ``EXPERIMENTS``
    or a whole-figure prefix (``"fig8"`` runs fig8a + fig8b).

    With ``obs`` given, it is installed as the run's observability
    context: every task's events are folded into it in deterministic
    task order, its metrics registry collects the merged per-task
    snapshots, and any attached invariant checkers validate the event
    stream. With ``jobs > 1``, sweep tasks execute on a process pool;
    the result (series, digests, metrics) is byte-identical to
    ``jobs=1``. ``cache_dir`` enables the content-addressed result
    cache so warm re-runs skip completed sweep points. ``resilience``
    and ``resume`` pass through to
    :func:`repro.experiments.parallel.run_spec`.
    """
    results = run_results(name, scale, seed, obs, jobs=jobs,
                          cache_dir=cache_dir, cache=cache,
                          resilience=resilience, resume=resume)
    series: list[FigureSeries] = []
    for result in results.values():
        series.extend(result.series)
    return series


def run_all(
    scale: float = 0.1, seed: int = 42,
    *,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    resilience: Optional[ResilienceConfig] = None,
    resume: bool = False,
) -> dict[str, list[FigureSeries]]:
    """Regenerate every figure's data (optionally parallel and cached)."""
    cache = cache if cache is not None else _make_cache(cache_dir)
    return {
        name: run_experiment(name, scale, seed, jobs=jobs, cache=cache,
                             resilience=resilience, resume=resume)
        for name in EXPERIMENTS
    }
