"""One-stop experiment runner.

``run_experiment(name, scale)`` regenerates the data of any paper figure
and returns its series; ``run_all`` iterates over every figure. The CLI
(:mod:`repro.cli`) and the benchmarks are thin wrappers over this module.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import repro.obs as obs_mod
from repro.core.infrastructure import SessionConfig, SystemVariant
from repro.experiments import coverage as cov
from repro.experiments import bandwidth as bw
from repro.experiments import economics_exp as econ
from repro.experiments import qoe
from repro.experiments import satisfaction as sat
from repro.experiments.scenarios import (
    Scenario,
    peersim_scenario,
    planetlab_scenario,
)
from repro.metrics.series import FigureSeries


def _fig5a(scale: float, seed: int) -> list[FigureSeries]:
    scen = peersim_scenario(scale, seed)
    return cov.coverage_vs_datacenters(scen)


def _fig5b(scale: float, seed: int) -> list[FigureSeries]:
    scen = peersim_scenario(scale, seed)
    counts = [int(round(c * scale)) for c in (0, 100, 200, 300, 400, 500, 600)]
    return cov.coverage_vs_supernodes(scen, sn_counts=sorted(set(counts)))


def _fig6a(scale: float, seed: int) -> list[FigureSeries]:
    scen = planetlab_scenario(scale, seed)
    return cov.coverage_vs_datacenters(scen, dc_counts=(1, 2, 3, 4))


def _fig6b(scale: float, seed: int) -> list[FigureSeries]:
    scen = planetlab_scenario(scale, seed)
    counts = [int(round(c * scale)) for c in (0, 50, 100, 150, 200, 250, 300)]
    return cov.coverage_vs_supernodes(scen, sn_counts=sorted(set(counts)))


def _fig7a(scale: float, seed: int) -> list[FigureSeries]:
    scen = peersim_scenario(scale, seed)
    base = scen.n_online
    counts = [max(10, int(base * f)) for f in (0.25, 0.5, 0.75, 1.0)]
    return bw.bandwidth_vs_players(scen, counts)


def _fig7b(scale: float, seed: int) -> list[FigureSeries]:
    scen = planetlab_scenario(scale, seed)
    base = scen.n_online
    counts = [max(5, int(base * f)) for f in (0.25, 0.5, 0.75, 1.0)]
    return bw.bandwidth_vs_players(scen, counts)


def _session_config(scale: float) -> SessionConfig:
    # Shorter horizons at smaller scales keep benchmark runtimes sane
    # without touching the steady-state numbers (warmup is excluded).
    duration = 15.0 if scale < 0.5 else 30.0
    return SessionConfig(duration_s=duration)


def _fig8a(scale: float, seed: int) -> list[FigureSeries]:
    scen = peersim_scenario(scale, seed)
    return [qoe.latency_by_system(scen, config=_session_config(scale))]


def _fig8b(scale: float, seed: int) -> list[FigureSeries]:
    scen = planetlab_scenario(scale, seed)
    return [qoe.latency_by_system(scen, config=_session_config(scale))]


def _fig9a(scale: float, seed: int) -> list[FigureSeries]:
    scen = peersim_scenario(scale, seed)
    base = scen.n_online
    counts = [max(10, int(base * f)) for f in (0.5, 0.75, 1.0)]
    return qoe.continuity_vs_players(
        scen, counts, config=_session_config(scale))


def _fig9b(scale: float, seed: int) -> list[FigureSeries]:
    scen = planetlab_scenario(scale, seed)
    base = scen.n_online
    counts = [max(5, int(base * f)) for f in (0.5, 0.75, 1.0)]
    return qoe.continuity_vs_players(
        scen, counts, config=_session_config(scale))


def _fig10(scale: float, seed: int) -> list[FigureSeries]:
    seeds = tuple(range(seed, seed + max(1, int(3 * scale) or 1)))
    return sat.satisfaction_sweep(strategies=sat.FIG10_STRATEGIES,
                                  seeds=seeds)


def _fig11(scale: float, seed: int) -> list[FigureSeries]:
    seeds = tuple(range(seed, seed + max(1, int(3 * scale) or 1)))
    return sat.satisfaction_sweep(strategies=sat.FIG11_STRATEGIES,
                                  seeds=seeds)


def _economics(scale: float, seed: int) -> list[FigureSeries]:
    scen = peersim_scenario(scale, seed)
    participation, saved = econ.incentive_sweep(scen)
    frontier = econ.deployment_frontier(scen)
    return [participation, saved, frontier]


def _churn(scale: float, seed: int) -> list[FigureSeries]:
    from repro.experiments.churn import ChurnConfig, churn_sweep
    duration = 30.0 + 30.0 * min(1.0, scale * 5)
    return churn_sweep(seeds=(seed, seed + 1),
                       config=ChurnConfig(duration_s=duration))


def _cooperation(scale: float, seed: int) -> list[FigureSeries]:
    from repro.experiments.cooperation import (
        CooperationConfig,
        cooperation_sweep,
    )
    duration = 20.0 + 20.0 * min(1.0, scale * 5)
    return cooperation_sweep(seeds=(seed, seed + 1),
                             config=CooperationConfig(duration_s=duration))


def _gameworld(scale: float, seed: int) -> list[FigureSeries]:
    from repro.experiments import gameworld_exp as gw
    counts = [max(20, int(round(c * max(scale, 0.05) / 0.08)))
              for c in (50, 100, 200, 400)]
    return (gw.update_size_sweep(avatar_counts=sorted(set(counts)),
                                 seed=seed)
            + gw.partition_balance_sweep(seed=seed))


def _security(scale: float, seed: int) -> list[FigureSeries]:
    from repro.experiments.security import SecurityConfig, security_sweep
    n_sessions = max(500, int(3000 * scale / 0.08))
    return security_sweep(seeds=(seed, seed + 1),
                          config=SecurityConfig(n_sessions=n_sessions))


def _dynamic(scale: float, seed: int) -> list[FigureSeries]:
    from repro.experiments.dynamic import run_dynamic
    scen = peersim_scenario(max(scale, 0.05), seed)
    pop = scen.build()
    result = run_dynamic(pop, SystemVariant.CLOUDFOG_A, horizon_s=90.0,
                         config=_session_config(scale))
    return result.series()


EXPERIMENTS: dict[str, Callable[[float, int], list[FigureSeries]]] = {
    "fig5a": _fig5a,
    "fig5b": _fig5b,
    "fig6a": _fig6a,
    "fig6b": _fig6b,
    "fig7a": _fig7a,
    "fig7b": _fig7b,
    "fig8a": _fig8a,
    "fig8b": _fig8b,
    "fig9a": _fig9a,
    "fig9b": _fig9b,
    "fig10": _fig10,
    "fig11": _fig11,
    "economics": _economics,
    # Extensions beyond the paper's figures (DESIGN.md §5b).
    "churn": _churn,
    "cooperation": _cooperation,
    "gameworld": _gameworld,
    "security": _security,
    "dynamic": _dynamic,
}


def resolve_experiments(name: str) -> list[str]:
    """Expand ``name`` into experiment keys.

    An exact key resolves to itself; a prefix like ``"fig8"`` resolves to
    every key it prefixes (``fig8a``, ``fig8b``), so paper figures can be
    addressed as a whole.
    """
    if name in EXPERIMENTS:
        return [name]
    matches = sorted(k for k in EXPERIMENTS if k.startswith(name))
    if not matches:
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(EXPERIMENTS)}")
    return matches


def run_experiment(
    name: str, scale: float = 0.1, seed: int = 42,
    obs: Optional["obs_mod.Observability"] = None,
) -> list[FigureSeries]:
    """Regenerate one figure's data; ``name`` is a key of ``EXPERIMENTS``
    or an unambiguous figure prefix (``"fig8"`` runs fig8a + fig8b).

    With ``obs`` given, it is installed as the run's observability
    context: every session simulation spawned by the experiment traces
    into it, its metrics registry collects the run's counters, and any
    attached invariant checkers validate events live.
    """
    keys = resolve_experiments(name)
    with obs_mod.use(obs):
        series: list[FigureSeries] = []
        for key in keys:
            series.extend(EXPERIMENTS[key](scale, seed))
    if obs is not None:
        obs.finish()
    return series


def run_all(scale: float = 0.1, seed: int = 42
            ) -> dict[str, list[FigureSeries]]:
    """Regenerate every figure's data."""
    return {name: run_experiment(name, scale, seed) for name in EXPERIMENTS}
