"""One-stop experiment runner (back-compat shims over the typed API).

The experiment catalogue now lives in typed
:class:`~repro.experiments.api.ExperimentSpec` entries
(:mod:`repro.experiments.specs`) executed by the backend-agnostic sweep
scheduler (:mod:`repro.experiments.parallel`). This module keeps the
historical surface alive:

* :data:`EXPERIMENTS` — **deprecated**: the old bare-callable registry,
  kept as thin shims; iterate :data:`repro.experiments.specs.SPECS` (or
  call :func:`repro.experiments.parallel.run_named`) instead to get
  typed results with metrics, digests and caching.
* :func:`run_experiment` / :func:`run_all` — same signatures and return
  types as before. Execution options are one
  :class:`~repro.experiments.config.RunConfig` (``config=RunConfig(
  backend=..., jobs=..., cache=..., resilience=..., resume=...)``); the
  pre-RunConfig keyword sprawl (``jobs=``, ``cache_dir=``, ``cache=``,
  ``resilience=``, ``resume=``) still works for one release and emits a
  single :class:`DeprecationWarning` per call.
"""

from __future__ import annotations

import difflib
from typing import Callable, Optional

import repro.obs as obs_mod
from repro.experiments.api import RunResult
from repro.experiments.config import _UNSET, RunConfig, coerce_config
from repro.experiments.parallel import run_spec
from repro.experiments.specs import SPECS, get_spec
from repro.metrics.series import FigureSeries


def _legacy_entry(name: str) -> Callable[[float, int], list[FigureSeries]]:
    def _run(scale: float, seed: int) -> list[FigureSeries]:
        return run_spec(get_spec(name), scale, seed).series
    _run.__name__ = f"run_{name}"
    _run.__doc__ = (f"Deprecated shim for {name!r}; use "
                    f"repro.experiments.parallel.run_named instead.")
    return _run


#: **Deprecated** bare-callable registry, preserved for callers of the
#: pre-spec API. Prefer :data:`repro.experiments.specs.SPECS`.
EXPERIMENTS: dict[str, Callable[[float, int], list[FigureSeries]]] = {
    name: _legacy_entry(name) for name in SPECS
}


def resolve_experiments(name: str) -> list[str]:
    """Expand ``name`` into experiment keys.

    An exact key resolves to itself; a whole-figure prefix (``"fig8"``)
    resolves to its lettered panels (``fig8a``, ``fig8b``). Anything
    else — including ambiguous numeric prefixes like ``"fig1"``, which
    used to silently expand to fig10+fig11 — raises with suggestions.
    """
    if name in EXPERIMENTS:
        return [name]
    panels = sorted(
        k for k in EXPERIMENTS
        if len(k) == len(name) + 1 and k.startswith(name)
        and k[-1].isalpha()
    )
    if panels:
        return panels
    candidates = sorted(EXPERIMENTS)
    suggestions = difflib.get_close_matches(name, candidates, n=3,
                                            cutoff=0.4)
    suggestions.extend(k for k in candidates
                       if k.startswith(name) and k not in suggestions)
    hint = (f"; did you mean {', '.join(sorted(set(suggestions)))}?"
            if suggestions else "")
    raise ValueError(
        f"unknown experiment {name!r}{hint} (choose an exact key from "
        f"{candidates} or a whole-figure prefix like 'fig5')")


def run_results(
    name: str, scale: float = 0.1, seed: int = 42,
    obs: Optional["obs_mod.Observability"] = None,
    *,
    config: Optional[RunConfig] = None,
    jobs=_UNSET,
    cache_dir=_UNSET,
    cache=_UNSET,
    resilience=_UNSET,
    resume=_UNSET,
) -> dict[str, RunResult]:
    """Run ``name`` (exact key or whole-figure prefix) and return the
    full typed :class:`RunResult` per experiment key.

    This is the surface the CLI uses: unlike :func:`run_experiment` it
    preserves task accounting, digests and — in keep-going mode — the
    structured :class:`~repro.experiments.resilience.TaskFailure` list
    for partial results. All experiment keys share ``config``'s cache
    and backend (a remote fabric's workers serve every key).
    """
    config = coerce_config(config, jobs=jobs, cache_dir=cache_dir,
                           cache=cache, resilience=resilience,
                           resume=resume)
    keys = resolve_experiments(name)
    results: dict[str, RunResult] = {}
    for key in keys:
        results[key] = run_spec(get_spec(key), scale, seed,
                                config=config, obs=obs)
    if obs is not None:
        obs.finish()
    return results


def run_experiment(
    name: str, scale: float = 0.1, seed: int = 42,
    obs: Optional["obs_mod.Observability"] = None,
    *,
    config: Optional[RunConfig] = None,
    jobs=_UNSET,
    cache_dir=_UNSET,
    cache=_UNSET,
    resilience=_UNSET,
    resume=_UNSET,
) -> list[FigureSeries]:
    """Regenerate one figure's data; ``name`` is a key of ``EXPERIMENTS``
    or a whole-figure prefix (``"fig8"`` runs fig8a + fig8b).

    With ``obs`` given, it is installed as the run's observability
    context: every task's events are folded into it in deterministic
    task order, its metrics registry collects the merged per-task
    snapshots, and any attached invariant checkers validate the event
    stream. ``config`` picks the execution backend, parallelism, cache
    and resilience policy; the result (series, digests, metrics) is
    byte-identical whichever backend runs it. The legacy ``jobs=`` /
    ``cache_dir=`` / ``cache=`` / ``resilience=`` / ``resume=`` keywords
    still work and emit one :class:`DeprecationWarning`.
    """
    config = coerce_config(config, jobs=jobs, cache_dir=cache_dir,
                           cache=cache, resilience=resilience,
                           resume=resume)
    results = run_results(name, scale, seed, obs, config=config)
    series: list[FigureSeries] = []
    for result in results.values():
        series.extend(result.series)
    return series


def run_all(
    scale: float = 0.1, seed: int = 42,
    *,
    config: Optional[RunConfig] = None,
    jobs=_UNSET,
    cache_dir=_UNSET,
    cache=_UNSET,
    resilience=_UNSET,
    resume=_UNSET,
) -> dict[str, list[FigureSeries]]:
    """Regenerate every figure's data (optionally parallel and cached)."""
    config = coerce_config(config, jobs=jobs, cache_dir=cache_dir,
                           cache=cache, resilience=resilience,
                           resume=resume)
    return {
        name: run_experiment(name, scale, seed, config=config)
        for name in EXPERIMENTS
    }
