"""QoE experiments — Figures 8 (response latency) and 9 (continuity).

Both run the packet-level session simulation
(:func:`repro.core.infrastructure.simulate_sessions`) over the scenario's
online population:

* Figure 8 reports average response latency per player for each system;
* Figure 9 sweeps the number of concurrent players and reports average
  playback continuity per system.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.infrastructure import (
    SessionConfig,
    SessionResult,
    SystemVariant,
    simulate_sessions,
)
from repro.experiments.scenarios import Scenario
from repro.metrics.series import FigureSeries

ALL_SYSTEMS: tuple[SystemVariant, ...] = (
    SystemVariant.CLOUD,
    SystemVariant.EDGECLOUD,
    SystemVariant.CLOUDFOG_B,
    SystemVariant.CLOUDFOG_A,
)


def run_variant(
    scenario: Scenario,
    variant: SystemVariant,
    n_online: int | None = None,
    config: SessionConfig | None = None,
    seed: int | None = None,
) -> SessionResult:
    """Build the population and run one variant's session simulation."""
    pop = scenario.build(seed=seed)
    online = scenario.online_sample(pop, n=n_online)
    return simulate_sessions(
        pop, variant, online, config,
        edge_server_host_ids=pop.edge_server_host_ids)


def latency_point(
    scenario: Scenario,
    variant: SystemVariant,
    n_online: int | None = None,
    config: SessionConfig | None = None,
) -> float:
    """One Figure 8 sweep point: a variant's mean response latency (ms).

    Task-decomposition entry point: every variant rebuilds its
    population from the scenario seed, so variants are independent
    units for the parallel sweep engine.
    """
    result = run_variant(scenario, variant, n_online, config)
    return result.mean_latency_s * 1000.0


def continuity_point(
    scenario: Scenario,
    n_players: int,
    variant: SystemVariant,
    config: SessionConfig | None = None,
) -> float:
    """One Figure 9 sweep point: mean continuity at one (count, variant)."""
    result = run_variant(scenario, variant, int(n_players), config)
    return result.mean_continuity


def latency_by_system(
    scenario: Scenario,
    variants: Sequence[SystemVariant] = ALL_SYSTEMS,
    n_online: int | None = None,
    config: SessionConfig | None = None,
) -> FigureSeries:
    """Figure 8: average response latency per player, per system.

    The series' x values index the variants in order; labels carry the
    mapping.
    """
    series = FigureSeries(
        label=" | ".join(v.value for v in variants),
        x_label="system (index)",
        y_label="avg response latency (ms)",
    )
    for i, variant in enumerate(variants):
        series.add(i, latency_point(scenario, variant, n_online, config))
    return series


def continuity_vs_players(
    scenario: Scenario,
    player_counts: Sequence[int],
    variants: Sequence[SystemVariant] = ALL_SYSTEMS,
    config: SessionConfig | None = None,
) -> list[FigureSeries]:
    """Figure 9: average playback continuity vs concurrent players."""
    series = [
        FigureSeries(label=v.value, x_label="# players",
                     y_label="playback continuity")
        for v in variants
    ]
    for n in player_counts:
        for s, variant in zip(series, variants):
            s.add(n, continuity_point(scenario, int(n), variant, config))
    return series


def satisfied_by_system(
    scenario: Scenario,
    variants: Sequence[SystemVariant] = ALL_SYSTEMS,
    n_online: int | None = None,
    config: SessionConfig | None = None,
) -> FigureSeries:
    """Satisfied-player fraction per system (supporting metric)."""
    series = FigureSeries(
        label=" | ".join(v.value for v in variants),
        x_label="system (index)",
        y_label="satisfied players",
    )
    for i, variant in enumerate(variants):
        result = run_variant(scenario, variant, n_online, config)
        series.add(i, result.satisfied_fraction)
    return series
