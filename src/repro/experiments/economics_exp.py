"""Economics experiments — the §III-A incentive and cost model.

The paper promises to "evaluate the effectiveness of this incentive
mechanism in Section IV"; this driver produces the three economic views
the model supports:

* the supply curve: how many contributors run supernodes as the reward
  ``c_s`` rises (Eq. 1 + per-contributor thresholds);
* the provider's saved cost ``C_g`` at each reward level (Eqs. 2–5);
* the greedy deployment frontier: cumulative gain of deploying
  supernodes in descending Eq. 6 order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.economics.incentives import participation_curve
from repro.economics.provider import (
    ProviderModel,
    bandwidth_reduction_bps,
    deployment_gain,
)
from repro.experiments.scenarios import Scenario
from repro.metrics.series import FigureSeries
from repro.streaming.video import QUALITY_LADDER
from repro.workload.capacities import SLOT_BANDWIDTH_BPS

#: Average streaming rate R: mean initial bitrate over the five games.
MEAN_STREAM_RATE_BPS = float(
    np.mean([ql.bitrate_bps for ql in QUALITY_LADDER]))


def incentive_sweep(
    scenario: Scenario,
    rewards: Sequence[float] = tuple(np.linspace(0.0, 5.0, 11)),
    saving_per_mbps: float = 6.0,
    cost_per_machine: float = 3.0,
    expected_utilization: float = 0.8,
) -> tuple[FigureSeries, FigureSeries]:
    """Sweep the per-Mbps reward c_s; report supply and provider savings.

    Contributors decide with Eq. 1 against the utilization they *expect*;
    the provider pays for the bandwidth actually *used* to serve players
    (``u_j`` in Eq. 1 is utilization, so an idle supernode earns
    nothing). The resulting C_g curve rises steeply while supply is the
    binding constraint, peaks once supply covers demand, and declines
    linearly in c_s afterwards — the provider should pay just enough to
    attract the supply it needs.

    Returns
    -------
    (participation, saved_cost):
        Participation fraction and provider saved cost (per month,
        arbitrary money unit) vs reward level.
    """
    pop = scenario.build()
    capable = pop.capable_player_ids()
    caps_slots = np.array(
        [pop.players[int(p)].capacity_slots for p in capable], dtype=float)
    caps_mbps = caps_slots * SLOT_BANDWIDTH_BPS / 1e6
    rng = pop.rngs.stream("economics")
    costs = cost_per_machine * rng.uniform(0.5, 1.5, size=capable.size)
    thresholds = rng.uniform(0.0, 2.0, size=capable.size)
    util = np.full(capable.size, expected_utilization)

    participation = FigureSeries(
        label="participation", x_label="reward c_s ($/Mbps-month)",
        y_label="fraction contributing")
    saved = FigureSeries(
        label="provider saved cost", x_label="reward c_s ($/Mbps-month)",
        y_label="C_g ($/month)")

    fractions = participation_curve(
        np.asarray(rewards, dtype=float), caps_mbps, util, costs, thresholds)
    update_mbps = 8.0 * 2000 * 10 / 1e6  # Λ per supernode at tick rate
    demand_mbps = scenario.n_online * MEAN_STREAM_RATE_BPS / 1e6

    for c_s, frac in zip(rewards, fractions):
        participation.add(c_s, frac)
        mask = fractions_mask(
            float(c_s), caps_mbps, util, costs, thresholds)
        m = int(mask.sum())
        contributed_mbps = float(caps_mbps[mask].sum())
        # The provider only uses (and pays for) what demand requires.
        used_mbps = min(contributed_mbps, demand_mbps)
        n_supported = int(used_mbps * 1e6 // MEAN_STREAM_RATE_BPS)
        b_r = bandwidth_reduction_bps(
            n_supported, MEAN_STREAM_RATE_BPS, update_mbps * 1e6, m)
        c_g = saving_per_mbps * b_r / 1e6 - float(c_s) * used_mbps
        saved.add(c_s, c_g)
    return participation, saved


def fractions_mask(
    c_s: float,
    caps_mbps: np.ndarray,
    util: np.ndarray,
    costs: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Boolean contribution mask at one reward level."""
    from repro.economics.incentives import contribution_decisions
    return contribution_decisions(c_s, caps_mbps, util, costs, thresholds)


def deployment_frontier(
    scenario: Scenario,
    saving_per_mbps: float = 6.0,
    reward_per_mbps: float = 2.0,
) -> FigureSeries:
    """Cumulative provider gain of greedy Eq. 6 deployment.

    Candidates are the scenario's supernode-capable players; each
    candidate's marginal coverage ν is estimated as the number of
    datacenter-uncovered online players within the general 80 ms budget,
    up to capacity. Utilization in Eq. 6's reward term is the bandwidth
    actually used for those ν players (``ν × R / c_j``) — an idle slot
    earns its owner nothing (Eq. 1).
    """
    pop = scenario.build()
    online = scenario.online_sample(pop)
    online_hosts = pop.player_host_ids()[online]
    capable = pop.capable_player_ids()
    cand_hosts = np.array(
        [pop.players[int(p)].host_id for p in capable], dtype=int)
    cand_caps = np.array(
        [pop.players[int(p)].capacity_slots for p in capable], dtype=float)

    # ν: players within the general 80 ms budget of each candidate, capped
    # by its slot count, minus those already covered by datacenters.
    rtt_dc = pop.latency.rtt_matrix_s(
        online_hosts, pop.datacenter_ids).min(axis=1)
    uncovered = rtt_dc > 0.080
    rtt_cand = pop.latency.rtt_matrix_s(online_hosts, cand_hosts)
    reach = (rtt_cand <= 0.080) & uncovered[:, None]
    nu = np.minimum(reach.sum(axis=0), cand_caps)

    model = ProviderModel(
        saving_per_bps=saving_per_mbps / 1e6,
        reward_per_bps=reward_per_mbps / 1e6,
        streaming_rate_bps=MEAN_STREAM_RATE_BPS,
        update_rate_bps=8.0 * 2000 * 10,
    )
    cap_bps = cand_caps * SLOT_BANDWIDTH_BPS
    # u_j: the fraction of the candidate's uplink its ν players consume.
    used_util = np.minimum(1.0, nu * MEAN_STREAM_RATE_BPS
                           / np.maximum(cap_bps, 1.0))
    order = model.greedy_deployment(cap_bps, nu, used_util)

    series = FigureSeries(
        label="greedy deployment", x_label="# supernodes deployed",
        y_label="cumulative gain ($/month)")
    total = 0.0
    series.add(0, 0.0)
    for rank, j in enumerate(order, start=1):
        total += deployment_gain(
            model.saving_per_bps, model.reward_per_bps, float(nu[j]),
            model.streaming_rate_bps, model.update_rate_bps,
            float(cap_bps[j]), float(used_util[j]))
        series.add(rank, total)
    return series
