"""Typed experiment API: specs, sweep tasks and run results.

This is the contract between the experiment catalogue
(:mod:`repro.experiments.specs`) and the execution engine
(:mod:`repro.experiments.parallel`):

* an :class:`ExperimentSpec` names one experiment and knows how to
  *decompose* it into independent :class:`SweepTask` units (one per
  sweep point × system variant × seed, wherever the underlying sweep's
  points are RNG-independent) and how to *merge* the per-task payloads
  back into the figure's :class:`~repro.metrics.series.FigureSeries`;
* a :class:`SweepTask` is a pure value object — experiment key, ordered
  task key, runner name and JSON-able parameters — so it crosses
  process boundaries and hashes into a stable cache key;
* a :class:`RunResult` carries everything one run produced: the series,
  the merged metrics snapshot, a content digest of the series and
  timing/cache accounting.

Determinism contract: ``decompose`` must return tasks in the exact
order the legacy serial sweep visited them, task payloads must be pure
functions of ``(task, scale, seed)``, and ``merge`` must consume
payloads keyed by task — never by completion order — so a parallel run
is byte-identical to a serial one.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.metrics.series import FigureSeries

#: A task key: a tuple of scalars; unique within one experiment's
#: decomposition, and ordered the way the serial sweep iterates.
TaskKey = tuple

#: JSON-able per-task payload (defined per experiment; see specs).
TaskData = Any


@dataclass(frozen=True)
class SweepTask:
    """One independently executable unit of an experiment sweep."""

    #: Experiment key this task belongs to (e.g. ``"fig5a"``).
    experiment: str
    #: Ordered identity of the task within the experiment.
    key: TaskKey
    #: Name of the task runner in the specs registry (picklable handle).
    runner: str
    #: JSON-able keyword parameters for the runner.
    params: dict[str, Any] = field(default_factory=dict)

    def cache_material(self, scale: float, seed: int,
                       version: str) -> dict[str, Any]:
        """The content that addresses this task's cached result."""
        return {
            "experiment": self.experiment,
            "key": list(self.key),
            "runner": self.runner,
            "params": self.params,
            "scale": scale,
            "seed": seed,
            "version": version,
        }


@dataclass(frozen=True)
class TaskResult:
    """What executing one :class:`SweepTask` produced."""

    task: SweepTask
    #: The runner's JSON-able payload.
    data: TaskData
    #: Per-task metrics registry snapshot (merged into the parent).
    metrics: dict[str, dict] = field(default_factory=dict)
    #: Trace events captured in the task, as ``(t, component, kind,
    #: data)`` tuples — only populated when the parent run traces.
    events: tuple = ()
    #: Wall-clock seconds the task took (0.0 on a cache hit).
    elapsed_s: float = 0.0
    #: Whether the payload came from the result cache.
    cached: bool = False


@dataclass(frozen=True)
class ExperimentSpec:
    """A typed, self-describing experiment registration.

    Replaces the bare ``Callable[[float, int], list[FigureSeries]]``
    registry entries: the spec still runs end-to-end through
    :func:`repro.experiments.parallel.run_spec`, but also exposes its
    sweep structure so the engine can execute points concurrently and
    cache them individually.
    """

    #: Registry key (``"fig5a"``, ``"economics"``, ...).
    name: str
    #: One-line human description (shown by ``cloudfog --list``).
    description: str
    #: Free-form facets (``"paper"``, ``"extension"``, ``"peersim"``...).
    tags: tuple[str, ...]
    #: ``(scale, seed) -> [SweepTask, ...]`` in serial sweep order.
    decompose: Callable[[float, int], list[SweepTask]]
    #: ``(scale, seed, {task_key: data}) -> [FigureSeries, ...]``.
    merge: Callable[[float, int, dict[TaskKey, TaskData]],
                    list[FigureSeries]]


@dataclass(frozen=True)
class RunResult:
    """Everything one experiment run produced."""

    #: Experiment key.
    name: str
    #: The figure's series, identical for any worker count.
    series: list[FigureSeries]
    #: Merged per-task metrics snapshot (task order).
    metrics: dict[str, dict]
    #: SHA-256 over the canonical JSON of ``series`` — the result
    #: fingerprint (equal serial vs parallel, cold vs warm cache).
    digest: str
    #: Wall-clock seconds for the whole run.
    elapsed_s: float
    #: Task accounting.
    tasks_total: int = 0
    tasks_cached: int = 0
    #: Resilience accounting: tasks that exhausted their retry budget
    #: (non-empty only in keep-going mode — otherwise the run raised),
    #: attempts beyond the first across all tasks, and tasks satisfied
    #: from a previous (interrupted) run's journal on ``resume``.
    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_resumed: int = 0
    #: Structured per-task failure taxonomy
    #: (:class:`repro.experiments.resilience.TaskFailure` values).
    failures: tuple = ()

    @property
    def ok(self) -> bool:
        """Whether every task produced a payload."""
        return self.tasks_failed == 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able summary (series use the stable schema)."""
        return {
            "name": self.name,
            "series": [s.to_dict() for s in self.series],
            "digest": self.digest,
            "elapsed_s": self.elapsed_s,
            "tasks_total": self.tasks_total,
            "tasks_cached": self.tasks_cached,
            "tasks_failed": self.tasks_failed,
            "tasks_retried": self.tasks_retried,
            "tasks_resumed": self.tasks_resumed,
            "failures": [f.to_dict() for f in self.failures],
        }


def series_digest(series: Sequence[FigureSeries]) -> str:
    """SHA-256 fingerprint of a list of series (canonical JSON)."""
    h = hashlib.sha256()
    for s in series:
        h.update(json.dumps(s.to_dict(), sort_keys=True,
                            separators=(",", ":")).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def now() -> float:
    """Monotonic wall-clock (test seam)."""
    return time.perf_counter()
