"""Receiver-side playback buffer and QoE accounting.

The paper's two receiver-visible metrics both live here:

* **playback continuity** — "the proportion of packets arrived within the
  required response latency over all packets in a game video" (§IV);
* **satisfied player** — a player that receives ≥95 % of its game packets
  within the game's response latency (§IV).

The buffer also supplies the measurements the receiver-driven rate
adaptation consumes: the buffered-video size ``s(t_k)`` and segment count
``r`` of Eqs. 7–8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.network.packet import VideoSegment

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: Fraction of packets that must arrive within the latency requirement for
#: a player to count as satisfied (paper §IV).
SATISFACTION_THRESHOLD = 0.95


@dataclass(slots=True)
class PlaybackStats:
    """Per-player packet-level QoE counters."""

    packets_expected: int = 0
    packets_on_time: int = 0
    packets_late: int = 0
    packets_dropped: int = 0
    segments_received: int = 0
    bytes_received: float = 0.0
    latency_sum_s: float = 0.0
    latency_count: int = 0

    @property
    def continuity(self) -> float:
        """Fraction of all packets that arrived within their deadline."""
        if self.packets_expected == 0:
            return 1.0
        return self.packets_on_time / self.packets_expected

    @property
    def mean_latency_s(self) -> float:
        """Mean per-segment response latency over received segments."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum_s / self.latency_count

    @property
    def loss_fraction(self) -> float:
        """Fraction of expected packets dropped (never delivered)."""
        if self.packets_expected == 0:
            return 0.0
        return self.packets_dropped / self.packets_expected

    @property
    def on_time_fraction_of_received(self) -> float:
        """Fraction of *delivered* packets that met their deadline."""
        received = self.packets_expected - self.packets_dropped
        if received <= 0:
            return 0.0
        return self.packets_on_time / received

    def is_satisfied(
        self,
        threshold: float = SATISFACTION_THRESHOLD,
        loss_tolerance: float | None = None,
    ) -> bool:
        """Paper's satisfied-player predicate.

        "QoE is determined by packet loss rate and response delay" (§IV):
        a player is satisfied when its packet loss stays within its
        game's tolerance *and* ≥95 % of the packets it receives arrive
        within the game's response latency. With ``loss_tolerance=None``
        dropped packets count against the 95 % directly (the strict
        reading, used when the game is unknown).
        """
        if loss_tolerance is None:
            return self.continuity >= threshold
        if self.loss_fraction > loss_tolerance + 1e-12:
            return False
        return self.on_time_fraction_of_received >= threshold


@dataclass(slots=True)
class _BufferedSegment:
    segment: VideoSegment
    arrived_at_s: float


@dataclass
class PlaybackBuffer:
    """A player's receive buffer, drained continuously during playback.

    The buffer holds seconds of video; playback consumes it in real time
    (playback rate equals wall-clock rate once started). ``r`` — the
    number of buffered segments, Eq. 8 — is buffered video time divided by
    the segment duration.

    Parameters
    ----------
    segment_duration_s:
        τ of Eq. 8.
    """

    segment_duration_s: float
    stats: PlaybackStats = field(default_factory=PlaybackStats)
    obs: "Optional[Observability]" = None
    component: str = "playback"
    _buffered_video_s: float = 0.0
    _last_drain_s: float = 0.0
    _playing: bool = False
    stall_time_s: float = 0.0
    stall_count: int = 0

    def __post_init__(self) -> None:
        # Response-latency distribution, exported through the run's
        # metrics registry when observability is attached.
        self._hist_latency = (
            self.obs.metrics.histogram("playback.response_latency_s")
            if self.obs is not None else None)

    def on_segment_arrival(self, segment: VideoSegment, now_s: float) -> None:
        """Account an arriving segment and add its video to the buffer.

        On-time/late/dropped packet counters update against the segment's
        deadline; dropped packets (removed by the sender) count against
        continuity exactly like lost packets.
        """
        self._drain(now_s)
        total = segment.total_packets
        arrived = segment.remaining_packets
        on_time = arrived if now_s <= segment.deadline_s + 1e-12 else 0
        late = arrived - on_time
        latency_s = max(0.0, now_s - segment.action_time_s)
        st = self.stats
        st.packets_expected += total
        st.packets_on_time += on_time
        st.packets_late += late
        st.packets_dropped += segment.dropped_packets
        st.segments_received += 1
        st.bytes_received += segment.remaining_bytes
        st.latency_sum_s += latency_s
        st.latency_count += 1

        # Only the arrived fraction of the segment is playable video.
        playable = segment.duration_s * (arrived / total) if total else 0.0
        self._buffered_video_s += playable
        if not self._playing and self._buffered_video_s > 0:
            self._playing = True
            self._last_drain_s = now_s
        if self.obs is not None:
            self._hist_latency.observe(latency_s)
            self.obs.emit(
                now_s, self.component, "playback.arrival",
                buffered_s=self._buffered_video_s, on_time=bool(on_time),
                packets=arrived, latency_s=latency_s)

    def on_segment_lost(self, segment: VideoSegment,
                        now_s: Optional[float] = None) -> None:
        """Account a segment that will never arrive (whole segment lost)."""
        self.stats.packets_expected += segment.total_packets
        self.stats.packets_dropped += segment.total_packets
        if self.obs is not None:
            self.obs.emit(
                now_s if now_s is not None else self._last_drain_s,
                self.component, "playback.lost",
                packets=segment.total_packets)

    def _drain(self, now_s: float) -> None:
        """Advance playback to ``now_s``, consuming buffered video."""
        if not self._playing:
            self._last_drain_s = now_s
            return
        elapsed = now_s - self._last_drain_s
        if elapsed <= 0:
            return
        if elapsed > self._buffered_video_s:
            stall = elapsed - self._buffered_video_s
            if self._buffered_video_s > 0 or stall > 0:
                self.stall_time_s += stall
                if self._buffered_video_s > 0:
                    self.stall_count += 1
                if self.obs is not None:
                    self.obs.emit(now_s, self.component, "playback.stall",
                                  stall_s=stall)
            self._buffered_video_s = 0.0
        else:
            self._buffered_video_s -= elapsed
        self._last_drain_s = now_s

    def buffered_video_s(self, now_s: float) -> float:
        """s(t_k): seconds of video currently buffered (Eq. 7)."""
        self._drain(now_s)
        return self._buffered_video_s

    def buffered_segments(self, now_s: float) -> float:
        """r: buffered video measured in segments (Eq. 8)."""
        return self.buffered_video_s(now_s) / self.segment_duration_s
