"""The video quality ladder — paper Figure 2, verbatim.

Each quality level couples a resolution, an encoding bitrate, the response
latency a segment at that level must meet, and a latency tolerance degree
(the ``ρ`` used to scale the rate-adaptation thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Frame rate of game videos (OnLive streams at 30 fps; paper §IV).
FRAME_RATE_FPS = 30

#: Duration of one encoded segment in seconds. One segment carries a small
#: group of frames; 0.1 s (3 frames at 30 fps) keeps per-action video units
#: small enough to meet 30–110 ms deadlines.
SEGMENT_DURATION_S = 0.1


@dataclass(frozen=True, slots=True)
class QualityLevel:
    """One row of paper Figure 2."""

    level: int
    resolution: tuple[int, int]
    bitrate_bps: float
    latency_req_s: float
    latency_tolerance: float  # ρ ∈ [0, 1]; higher = more tolerant

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if not 0.0 <= self.latency_tolerance <= 1.0:
            raise ValueError("latency tolerance must be in [0, 1]")

    def segment_bytes(self, duration_s: float = SEGMENT_DURATION_S) -> int:
        """Encoded size of one segment at this level."""
        return max(1, int(round(self.bitrate_bps * duration_s / 8.0)))


#: Paper Figure 2: quality level -> (resolution, bitrate, latency req, ρ).
QUALITY_LADDER: tuple[QualityLevel, ...] = (
    QualityLevel(1, (288, 216), 300_000.0, 0.030, 0.6),
    QualityLevel(2, (384, 216), 500_000.0, 0.050, 0.7),
    QualityLevel(3, (640, 480), 800_000.0, 0.070, 0.8),
    QualityLevel(4, (720, 486), 1_200_000.0, 0.090, 0.9),
    QualityLevel(5, (1280, 720), 1_800_000.0, 0.110, 1.0),
)

MIN_LEVEL = QUALITY_LADDER[0].level
MAX_LEVEL = QUALITY_LADDER[-1].level


def get_level(level: int) -> QualityLevel:
    """The :class:`QualityLevel` for ladder level ``level`` (1-based)."""
    if not MIN_LEVEL <= level <= MAX_LEVEL:
        raise ValueError(f"quality level must be in [{MIN_LEVEL}, {MAX_LEVEL}]")
    ql = QUALITY_LADDER[level - 1]
    assert ql.level == level
    return ql


def highest_level_for_latency(latency_req_s: float) -> QualityLevel:
    """Highest ladder level whose latency requirement fits ``latency_req_s``.

    Paper §III-B: "if a game video has a latency requirement of 90 ms, the
    supernode should use 1200 kbps encoding bitrate" — i.e. pick the
    highest quality whose latency requirement does not exceed the game's.
    Falls back to the lowest level for very strict requirements.
    """
    best = QUALITY_LADDER[0]
    for ql in QUALITY_LADDER:
        if ql.latency_req_s <= latency_req_s + 1e-12:
            best = ql
    return best


def level_for_bitrate(bitrate_bps: float) -> QualityLevel:
    """Highest ladder level whose bitrate does not exceed ``bitrate_bps``."""
    best = QUALITY_LADDER[0]
    for ql in QUALITY_LADDER:
        if ql.bitrate_bps <= bitrate_bps + 1e-9:
            best = ql
    return best


def max_adjust_up_factor() -> float:
    """β of Eq. 10: max relative bitrate step between adjacent levels."""
    steps = [
        (QUALITY_LADDER[i + 1].bitrate_bps - QUALITY_LADDER[i].bitrate_bps)
        / QUALITY_LADDER[i].bitrate_bps
        for i in range(len(QUALITY_LADDER) - 1)
    ]
    return max(steps)
