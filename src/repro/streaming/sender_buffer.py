"""FIFO sender buffer — the baseline the deadline-driven scheduler replaces.

Each supernode has a single queuing buffer for outgoing video segments
(paper §III-C, citing Kanakia et al.). The baseline drains it in arrival
order with no dropping; segments simply go out as fast as the uplink
serializes them, however late that makes them.
"""

from __future__ import annotations

from typing import Optional

from repro.network.packet import VideoSegment


class FifoSenderBuffer:
    """Arrival-order sender queue with no deadline awareness.

    The buffer only *orders* segments; actual serialization timing is the
    uplink's job. This split lets the deadline scheduler subclass swap the
    queue discipline without touching transmission mechanics.
    """

    def __init__(self) -> None:
        self._queue: list[VideoSegment] = []
        self.enqueued = 0
        self.dequeued = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> float:
        """Bytes awaiting transmission."""
        return float(sum(seg.remaining_bytes for seg in self._queue))

    def enqueue(self, segment: VideoSegment, now_s: float) -> None:
        """Add ``segment`` to the tail of the queue."""
        segment.enqueued_at_s = now_s
        self._queue.append(segment)
        self.enqueued += 1

    def dequeue(self, now_s: Optional[float] = None) -> Optional[VideoSegment]:
        """Remove and return the next segment to send (None if empty).

        ``now_s`` is accepted for interface compatibility with the
        deadline-driven buffer; the FIFO baseline sends everything in
        order, however late.
        """
        if not self._queue:
            return None
        self.dequeued += 1
        return self._queue.pop(0)

    def peek(self) -> Optional[VideoSegment]:
        """Next segment to send without removing it."""
        return self._queue[0] if self._queue else None

    def iter_pending(self):
        """Iterate queued segments in send order (mutation-unsafe)."""
        return iter(self._queue)

    def preceding_bytes(self, segment: VideoSegment) -> float:
        """np_i: bytes of segments ahead of ``segment`` in the queue."""
        total = 0.0
        for seg in self._queue:
            if seg is segment:
                return total
            total += seg.remaining_bytes
        raise ValueError("segment is not in the buffer")
