"""FIFO sender buffer — the baseline the deadline-driven scheduler replaces.

Each supernode has a single queuing buffer for outgoing video segments
(paper §III-C, citing Kanakia et al.). The baseline drains it in arrival
order with no dropping; segments simply go out as fast as the uplink
serializes them, however late that makes them.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.network.packet import VideoSegment
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class FifoSenderBuffer:
    """Arrival-order sender queue with no deadline awareness.

    The buffer only *orders* segments; actual serialization timing is the
    uplink's job. This split lets the deadline scheduler subclass swap the
    queue discipline without touching transmission mechanics.
    """

    def __init__(self, obs: "Observability | None" = None,
                 component: str = "fifo") -> None:
        self._queue: deque[VideoSegment] = deque()
        self._obs = obs
        self.component = component
        registry = obs.metrics if obs is not None else MetricsRegistry()
        self._c_enqueued = registry.counter("sender.segments_enqueued")
        self._c_dequeued = registry.counter("sender.segments_dequeued")
        self._g_queue_len = registry.gauge("sender.queue_len")
        # Packet-conservation ledger (audited by the invariant checkers).
        self._p_in = 0
        self._p_out = 0
        self._p_drop = 0
        self._p_pend = 0
        self._last_now = 0.0

    @property
    def enqueued(self) -> int:
        """Segments accepted into the queue (metrics-registry backed)."""
        return self._c_enqueued.value

    @property
    def dequeued(self) -> int:
        """Segments handed to the sender (metrics-registry backed)."""
        return self._c_dequeued.value

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> float:
        """Bytes awaiting transmission."""
        return float(sum(seg.remaining_bytes for seg in self._queue))

    def enqueue(self, segment: VideoSegment, now_s: float) -> None:
        """Add ``segment`` to the tail of the queue."""
        segment.enqueued_at_s = now_s
        self._last_now = now_s
        self._queue.append(segment)
        self._c_enqueued.inc()
        packets = segment.remaining_packets
        self._p_in += packets
        self._p_pend += packets
        self._g_queue_len.set(len(self._queue))
        if self._obs is not None:
            self._obs.emit(
                now_s, self.component, "buffer.enqueue",
                disc="fifo", player=segment.player_id,
                deadline=segment.deadline_s, packets=packets,
                qlen=len(self._queue),
                p_in=self._p_in, p_out=self._p_out, p_drop=self._p_drop,
                p_pend=self._p_pend)

    def enqueue_batch(self, segments, now_s: float) -> int:
        """Add many segments at once — one ledger update, one event.

        Queue state after the call is identical to calling
        :meth:`enqueue` once per segment in order; only the bookkeeping
        is amortised, so a per-tick fan-out to thousands of players
        costs one trace event instead of thousands. Returns the number
        of segments accepted.
        """
        self._last_now = now_s
        n = 0
        packets = 0
        for segment in segments:
            segment.enqueued_at_s = now_s
            self._queue.append(segment)
            packets += segment.remaining_packets
            n += 1
        if n == 0:
            return 0
        self._c_enqueued.inc(n)
        self._p_in += packets
        self._p_pend += packets
        self._g_queue_len.set(len(self._queue))
        if self._obs is not None:
            self._obs.emit(
                now_s, self.component, "buffer.enqueue_batch",
                disc="fifo", segments=n, packets=packets,
                qlen=len(self._queue),
                p_in=self._p_in, p_out=self._p_out, p_drop=self._p_drop,
                p_pend=self._p_pend)
        return n

    def dequeue(self, now_s: Optional[float] = None, *,
                expire: Optional[bool] = None) -> Optional[VideoSegment]:
        """Remove and return the next segment to send (None if empty).

        ``now_s`` and ``expire`` are accepted for interface compatibility
        with the deadline-driven buffer; the FIFO baseline sends
        everything in order, however late.
        """
        if not self._queue:
            return None
        if now_s is not None:
            self._last_now = now_s
        segment = self._queue.popleft()
        self._c_dequeued.inc()
        packets = segment.remaining_packets
        self._p_pend -= packets
        self._p_out += packets
        self._g_queue_len.set(len(self._queue))
        if self._obs is not None:
            self._obs.emit(
                self._last_now, self.component, "buffer.dequeue",
                disc="fifo", player=segment.player_id,
                deadline=segment.deadline_s, packets=packets,
                qlen=len(self._queue),
                p_in=self._p_in, p_out=self._p_out, p_drop=self._p_drop,
                p_pend=self._p_pend)
        return segment

    def flush(self, now_s: float) -> int:
        """Drop every queued segment (the serving host crashed).

        Pending packets move to the dropped column in one step, and a
        single ``buffer.flush`` event carries the updated conservation
        ledger. Returns the number of segments lost.
        """
        self._last_now = now_s
        lost = 0
        dropped_packets = 0
        while self._queue:
            segment = self._queue.popleft()
            dropped_packets += segment.drop_all()
            lost += 1
        self._p_pend -= dropped_packets
        self._p_drop += dropped_packets
        self._g_queue_len.set(0)
        if self._obs is not None and lost:
            self._obs.emit(
                now_s, self.component, "buffer.flush",
                disc="fifo", segments=lost, packets=dropped_packets,
                qlen=0, p_in=self._p_in, p_out=self._p_out,
                p_drop=self._p_drop, p_pend=self._p_pend)
        return lost

    def peek(self) -> Optional[VideoSegment]:
        """Next segment to send without removing it."""
        return self._queue[0] if self._queue else None

    def iter_pending(self):
        """Iterate queued segments in send order (mutation-unsafe)."""
        return iter(self._queue)

    def preceding_bytes(self, segment: VideoSegment) -> float:
        """np_i: bytes of segments ahead of ``segment`` in the queue."""
        total = 0.0
        for seg in self._queue:
            if seg is segment:
                return total
            total += seg.remaining_bytes
        raise ValueError("segment is not in the buffer")
