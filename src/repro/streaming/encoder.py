"""Segment encoder: turns rendered game video into network segments.

A supernode (or datacenter, in the baselines) runs one encoder per served
player. The encoder produces one :class:`~repro.network.packet.VideoSegment`
per ``SEGMENT_DURATION_S`` of video at the player's current quality level.
The level can be changed at any segment boundary — that is the knob the
receiver-driven rate adaptation turns.
"""

from __future__ import annotations

from typing import Optional

from repro.network.packet import VideoSegment
from repro.streaming.video import (
    MAX_LEVEL,
    MIN_LEVEL,
    SEGMENT_DURATION_S,
    QualityLevel,
    get_level,
    highest_level_for_latency,
)


class SegmentEncoder:
    """Per-player video encoder with an adjustable quality level.

    Parameters
    ----------
    player_id:
        Destination player.
    game_latency_req_s:
        The player's game's response latency requirement ``L̃_r``.
    game_loss_tolerance:
        The game's packet loss tolerance ``L̃_t``.
    initial_level:
        Starting ladder level; defaults to the highest level whose latency
        requirement fits the game (paper §III-B).
    """

    def __init__(
        self,
        player_id: int,
        game_latency_req_s: float,
        game_loss_tolerance: float,
        initial_level: Optional[int] = None,
    ):
        self.player_id = player_id
        self.game_latency_req_s = game_latency_req_s
        self.game_loss_tolerance = game_loss_tolerance
        if initial_level is None:
            self._level = highest_level_for_latency(game_latency_req_s).level
        else:
            self._level = get_level(initial_level).level
        #: Highest level this game may ever use (never exceed the game's
        #: latency requirement by encoding slower-than-deadline video).
        self.max_level = highest_level_for_latency(game_latency_req_s).level
        self.segments_encoded = 0
        self.bytes_encoded = 0

    @property
    def level(self) -> int:
        """Current quality level (1..5)."""
        return self._level

    @property
    def quality(self) -> QualityLevel:
        """Current :class:`QualityLevel`."""
        return get_level(self._level)

    @property
    def bitrate_bps(self) -> float:
        """Current encoding bitrate ``b_q`` in bits per second."""
        return self.quality.bitrate_bps

    def adjust_up(self) -> bool:
        """Raise quality one level; returns False at the ceiling."""
        ceiling = min(MAX_LEVEL, self.max_level)
        if self._level >= ceiling:
            return False
        self._level += 1
        return True

    def adjust_down(self) -> bool:
        """Lower quality one level; returns False at the floor."""
        if self._level <= MIN_LEVEL:
            return False
        self._level -= 1
        return True

    def set_level(self, level: int) -> None:
        """Jump directly to ``level`` (clamped to the game's ceiling)."""
        level = min(get_level(level).level, self.max_level)
        self._level = level

    def encode_segment(
        self,
        action_time_s: float,
        now_s: float,
        duration_s: float = SEGMENT_DURATION_S,
        state_ready_s: Optional[float] = None,
    ) -> VideoSegment:
        """Encode one segment of game video at the current level.

        Parameters
        ----------
        action_time_s:
            ``t_m`` of the player action the video responds to.
        now_s:
            Current simulation time (stamped as creation time).
        duration_s:
            Playback duration covered.
        state_ready_s:
            When the serving site received the game-state update
            (anchors the segment's delivery deadline).
        """
        ql = self.quality
        seg = VideoSegment(
            player_id=self.player_id,
            quality_level=ql.level,
            size_bytes=ql.segment_bytes(duration_s),
            duration_s=duration_s,
            action_time_s=action_time_s,
            latency_req_s=self.game_latency_req_s,
            loss_tolerance=self.game_loss_tolerance,
            state_ready_s=state_ready_s,
            created_at_s=now_s,
        )
        self.segments_encoded += 1
        self.bytes_encoded += seg.size_bytes
        return seg
