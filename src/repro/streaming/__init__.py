"""Video streaming substrate.

Implements everything between "the supernode has rendered a frame" and
"the player's screen shows it": the quality ladder of paper Figure 2, the
encoder that chops 30 fps game video into fixed-duration segments, the
receiver-side playback buffer with continuity accounting, and the plain
FIFO sender buffer that the deadline-driven scheduler (in
:mod:`repro.core.scheduling`) replaces.
"""

from repro.streaming.video import (
    QUALITY_LADDER,
    QualityLevel,
    highest_level_for_latency,
    level_for_bitrate,
)
from repro.streaming.encoder import SegmentEncoder
from repro.streaming.playback import PlaybackBuffer, PlaybackStats
from repro.streaming.sender_buffer import FifoSenderBuffer

__all__ = [
    "FifoSenderBuffer",
    "PlaybackBuffer",
    "PlaybackStats",
    "QUALITY_LADDER",
    "QualityLevel",
    "SegmentEncoder",
    "highest_level_for_latency",
    "level_for_bitrate",
]
