"""The literal Eq. 7/8 buffered-size estimator.

The paper's receiver estimates its buffered video *indirectly*:

    s(t_k) = s(t_{k-1}) + (t_k − t_{k-1}) · (d(t_k) − b_p(t_k))   (Eq. 7)
    r      = s(t_k) / τ                                            (Eq. 8)

with ``d`` the measured downloading rate and ``b_p`` the playback rate.
The reproduction's :class:`~repro.streaming.playback.PlaybackBuffer`
tracks the buffer directly (ground truth); this estimator implements the
paper's incremental form on top of a
:class:`~repro.network.link.DownlinkMeter`, and the test suite checks
the two agree — i.e. that Eq. 7 is a faithful estimate of the state it
approximates.
"""

from __future__ import annotations

from repro.streaming.video import SEGMENT_DURATION_S


class Eq7Estimator:
    """Incremental buffered-video estimator (paper Eqs. 7-8).

    Parameters
    ----------
    playback_rate_bps:
        ``b_p`` — the bit rate at which buffered video drains during
        playback (the current encoding bitrate: one second of buffered
        video holds one second of encoded bits).
    segment_duration_s:
        τ of Eq. 8.
    """

    def __init__(
        self,
        playback_rate_bps: float,
        segment_duration_s: float = SEGMENT_DURATION_S,
    ):
        if playback_rate_bps <= 0:
            raise ValueError("playback rate must be positive")
        if segment_duration_s <= 0:
            raise ValueError("segment duration must be positive")
        self.playback_rate_bps = playback_rate_bps
        self.segment_duration_s = segment_duration_s
        #: s(t) in *bits* of buffered encoded video.
        self._buffered_bits = 0.0
        self._last_update_s: float | None = None
        self._playing = False

    @property
    def buffered_video_s(self) -> float:
        """Estimated seconds of buffered video."""
        return self._buffered_bits / self.playback_rate_bps

    @property
    def buffered_segments(self) -> float:
        """r of Eq. 8."""
        return self.buffered_video_s / self.segment_duration_s

    def set_playback_rate(self, playback_rate_bps: float) -> None:
        """Track an encoder level change (τ stays; b_p moves)."""
        if playback_rate_bps <= 0:
            raise ValueError("playback rate must be positive")
        # Convert buffered bits across the rate change so buffered
        # *seconds* are preserved (the video already buffered plays at
        # its own encoded rate; this is the standard approximation).
        seconds = self.buffered_video_s
        self.playback_rate_bps = playback_rate_bps
        self._buffered_bits = seconds * playback_rate_bps

    def update(self, now_s: float, download_rate_bps: float) -> float:
        """Apply Eq. 7 for the interval since the last update.

        Parameters
        ----------
        now_s:
            t_k.
        download_rate_bps:
            d(t_k) — e.g. from a
            :class:`~repro.network.link.DownlinkMeter`.

        Returns the new r estimate (Eq. 8).
        """
        if download_rate_bps < 0:
            raise ValueError("download rate cannot be negative")
        if self._last_update_s is None:
            self._last_update_s = now_s
            if download_rate_bps > 0:
                self._playing = True
            return self.buffered_segments
        dt = now_s - self._last_update_s
        if dt < 0:
            raise ValueError("time went backwards")
        drain = self.playback_rate_bps if self._playing else 0.0
        self._buffered_bits = max(
            0.0, self._buffered_bits + dt * (download_rate_bps - drain))
        if not self._playing and self._buffered_bits > 0:
            self._playing = True
        self._last_update_s = now_s
        return self.buffered_segments
