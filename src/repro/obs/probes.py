"""Kernel probes: wire an :class:`~repro.sim.engine.Environment` into obs.

The sim kernel exposes two hook lists — ``on_schedule`` and ``on_step`` —
that are empty by default, and an unprobed environment runs the
uninstrumented ``schedule``/``step`` (zero overhead — the instrumented
versions are swapped in by ``enable_probe_hooks`` at attach time).
These helpers register hooks that feed an
:class:`~repro.obs.Observability`: event counters always, and per-event
trace records when ``trace_kernel`` is requested (that is verbose — a
session run schedules hundreds of thousands of events — so it is off by
default and meant for kernel-level determinism tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.sim.engine import Environment


def attach_kernel_probes(env: "Environment", obs: "Observability") -> None:
    """Attach scheduling/step probes for ``env`` to ``obs``.

    Registers metrics counters ``sim.events_scheduled`` and
    ``sim.events_processed``; with ``obs.trace_kernel`` set (and a trace
    recorder present) every kernel event is also recorded as a
    ``sim.schedule`` / ``sim.step`` trace event carrying the event's
    class name.
    """
    scheduled = obs.metrics.counter("sim.events_scheduled")
    processed = obs.metrics.counter("sim.events_processed")
    trace = obs.trace if obs.trace_kernel else None

    if trace is None:
        def on_schedule(now_s, at_s, event):
            scheduled.inc()

        def on_step(now_s, event):
            processed.inc()
    else:
        def on_schedule(now_s, at_s, event):
            scheduled.inc()
            obs.emit(now_s, "kernel", "sim.schedule",
                     at=at_s, event=type(event).__name__)

        def on_step(now_s, event):
            processed.inc()
            obs.emit(now_s, "kernel", "sim.step",
                     event=type(event).__name__)

    env.on_schedule.append(on_schedule)
    env.on_step.append(on_step)
    env.enable_probe_hooks()
