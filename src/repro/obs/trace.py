"""Structured trace recording with reproducibility digests.

A :class:`TraceRecorder` collects :class:`TraceEvent`\\ s — (sim time,
component, kind, payload) — in emission order. The canonical JSONL
serialization is deterministic (sorted payload keys, ``repr``-exact float
formatting via :func:`json.dumps`), so the SHA-256 of the serialized
stream is a *run fingerprint*: two runs of the simulator with the same
seed must produce byte-identical digests, and any PR that silently changes
scheduling order, drop accounting or clock behaviour changes the digest.

Payloads must stay JSON-serializable and must not contain process-global
identifiers (``id()``, global sequence counters shared across runs):
those would break the same-seed ⇒ same-digest property the regression
tests rely on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, TextIO


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured telemetry event."""

    #: Simulation time the event was emitted at.
    t: float
    #: Emitting component, e.g. ``"server:12"`` or ``"player:7"``.
    component: str
    #: Event kind, e.g. ``"buffer.enqueue"`` or ``"playback.stall"``.
    kind: str
    #: Structured payload (JSON-serializable scalars).
    data: dict[str, Any]

    def to_json(self) -> str:
        """Canonical one-line JSON form (digest input)."""
        return json.dumps(
            {"t": self.t, "component": self.component, "kind": self.kind,
             "data": self.data},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        obj = json.loads(line)
        return cls(t=obj["t"], component=obj["component"],
                   kind=obj["kind"], data=obj.get("data", {}))


class TraceRecorder:
    """Collects trace events and fingerprints the stream.

    Parameters
    ----------
    sink:
        Optional callable invoked with every event as it is emitted
        (live invariant checking hooks in here via
        :class:`~repro.obs.Observability`, not via the recorder).
    max_events:
        Safety valve: raise once this many events have been recorded
        (``None`` = unbounded). Protects long experiment sweeps from
        accidentally tracing themselves out of memory.
    """

    def __init__(self, sink: Optional[Callable[[TraceEvent], None]] = None,
                 max_events: Optional[int] = None):
        self.events: list[TraceEvent] = []
        self._sink = sink
        self._max_events = max_events

    def emit(self, t: float, component: str, kind: str, **data: Any) -> None:
        """Record one event."""
        if (self._max_events is not None
                and len(self.events) >= self._max_events):
            raise RuntimeError(
                f"trace exceeded max_events={self._max_events}; "
                "narrow the probes or raise the limit")
        event = TraceEvent(t, component, kind, data)
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- serialization ------------------------------------------------------
    def iter_jsonl(self) -> Iterator[str]:
        """Canonical JSONL lines, in emission order."""
        for event in self.events:
            yield event.to_json()

    def write_jsonl(self, fp: TextIO) -> int:
        """Write the trace as JSONL; returns the number of lines."""
        n = 0
        for line in self.iter_jsonl():
            fp.write(line)
            fp.write("\n")
            n += 1
        return n

    def save(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fp:
            return self.write_jsonl(fp)

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical JSONL stream."""
        h = hashlib.sha256()
        for line in self.iter_jsonl():
            h.update(line.encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()


def load_jsonl(lines: Iterable[str]) -> list[TraceEvent]:
    """Parse JSONL lines back into events (blank lines skipped)."""
    return [TraceEvent.from_json(line) for line in lines if line.strip()]


def load_trace(path: str) -> list[TraceEvent]:
    """Read a JSONL trace file written by :meth:`TraceRecorder.save`."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_jsonl(fp)
