"""Runtime invariant checkers over trace streams.

Each checker consumes :class:`~repro.obs.trace.TraceEvent`\\ s — either
*live* (attached to an :class:`~repro.obs.Observability`, where a
violation raises at the exact simulation step that caused it) or
*offline* over a recorded/loaded trace via :func:`run_checkers` (the
pytest-fixture mode). The checked invariants:

``PacketConservationChecker``
    For every sender buffer, at every buffer event:
    ``packets_in == packets_out + packets_dropped + packets_pending``
    and the pending count is never negative — no packet is ever created
    or destroyed outside the enqueue/dequeue/drop bookkeeping.
``EdfOrderChecker``
    A deadline-driven buffer always dequeues the minimum-deadline entry
    currently queued (EDF is never violated, even under interleaved
    enqueues).
``PlaybackNonNegativeChecker``
    The receiver playback buffer level never goes negative and stalls
    never have negative duration.
``QualityLadderChecker``
    Every encoder level change lands inside the quality ladder.
``ClockMonotonicityChecker``
    Trace timestamps never run backwards within a run, and nothing is
    scheduled into the past.

A ``session.start`` event resets all per-run state, so one recorder can
span several back-to-back sessions (e.g. the four system variants of a
Figure 8 run) without cross-run false positives.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence

from repro.obs.trace import TraceEvent

_EPS = 1e-9

#: Ladder bounds mirrored from ``repro.streaming.video`` (kept literal so
#: the obs package stays import-cycle-free; the unit tests assert the two
#: stay in sync).
LADDER_MIN_LEVEL = 1
LADDER_MAX_LEVEL = 5


class InvariantViolation(AssertionError):
    """An invariant checker caught an inconsistency in the trace."""

    def __init__(self, checker: str, event: Optional[TraceEvent],
                 message: str):
        self.checker = checker
        self.event = event
        where = (f" at t={event.t} [{event.component}] {event.kind}"
                 if event is not None else "")
        super().__init__(f"{checker}: {message}{where}")


class InvariantChecker:
    """Base class: routes events, resets on ``session.start``."""

    name = "invariant"

    def on_event(self, event: TraceEvent) -> None:
        if event.kind == "session.start":
            self.reset()
            return
        self.check(event)

    def check(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state (new session started)."""

    def finish(self) -> None:
        """End-of-trace hook (nothing pending by default)."""

    def fail(self, event: Optional[TraceEvent], message: str) -> None:
        raise InvariantViolation(self.name, event, message)


class PacketConservationChecker(InvariantChecker):
    """enqueued packets == dequeued + dropped + still pending, always."""

    name = "packet-conservation"

    def check(self, event: TraceEvent) -> None:
        if not event.kind.startswith("buffer."):
            return
        d = event.data
        if "p_in" not in d:
            return
        p_in, p_out = d["p_in"], d["p_out"]
        p_drop, p_pend = d["p_drop"], d["p_pend"]
        if p_pend < 0:
            self.fail(event, f"negative pending packet count {p_pend}")
        if p_in != p_out + p_drop + p_pend:
            self.fail(event, (
                f"packet conservation broken: in={p_in} != "
                f"out={p_out} + dropped={p_drop} + pending={p_pend}"))


class EdfOrderChecker(InvariantChecker):
    """Deadline buffers always dequeue the earliest queued deadline."""

    name = "edf-order"

    def __init__(self) -> None:
        self._heaps: dict[str, list[float]] = {}

    def reset(self) -> None:
        self._heaps.clear()

    def check(self, event: TraceEvent) -> None:
        if event.data.get("disc") != "edf":
            return
        if event.kind == "buffer.flush":
            # A crash flush empties the queue wholesale; deadlines that
            # died in the flush must not constrain post-recovery
            # dequeues.
            self._heaps.pop(event.component, None)
            return
        heap = self._heaps.setdefault(event.component, [])
        if event.kind == "buffer.enqueue":
            heapq.heappush(heap, event.data["deadline"])
        elif event.kind == "buffer.dequeue":
            if not heap:
                self.fail(event, "dequeue from an empty (per-trace) queue")
            earliest = heapq.heappop(heap)
            if event.data["deadline"] > earliest + _EPS:
                self.fail(event, (
                    f"EDF order violated: dequeued deadline "
                    f"{event.data['deadline']} but {earliest} was queued"))


class PlaybackNonNegativeChecker(InvariantChecker):
    """Playback buffer level and stall durations never go negative."""

    name = "playback-nonnegative"

    def check(self, event: TraceEvent) -> None:
        if event.kind == "playback.arrival":
            buffered = event.data["buffered_s"]
            if buffered < -_EPS:
                self.fail(event, f"negative playback buffer {buffered}")
        elif event.kind == "playback.stall":
            stall = event.data["stall_s"]
            if stall < -_EPS:
                self.fail(event, f"negative stall duration {stall}")


class QualityLadderChecker(InvariantChecker):
    """Encoder levels always stay inside the quality ladder."""

    name = "quality-ladder"

    def __init__(self, min_level: int = LADDER_MIN_LEVEL,
                 max_level: int = LADDER_MAX_LEVEL):
        self.min_level = min_level
        self.max_level = max_level

    def check(self, event: TraceEvent) -> None:
        if event.kind != "encoder.level":
            return
        level = event.data["level"]
        if not self.min_level <= level <= self.max_level:
            self.fail(event, (
                f"encoder level {level} outside ladder "
                f"[{self.min_level}, {self.max_level}]"))


class ClockMonotonicityChecker(InvariantChecker):
    """Sim time never runs backwards; nothing is scheduled in the past."""

    name = "clock-monotonicity"

    def __init__(self) -> None:
        self._last_t: Optional[float] = None

    def reset(self) -> None:
        self._last_t = None

    def check(self, event: TraceEvent) -> None:
        if self._last_t is not None and event.t < self._last_t - _EPS:
            self.fail(event, (
                f"clock ran backwards: {event.t} after {self._last_t}"))
        self._last_t = event.t
        if event.kind == "sim.schedule":
            at = event.data["at"]
            if at < event.t - _EPS:
                self.fail(event, f"event scheduled in the past (at={at})")


def default_checkers() -> list[InvariantChecker]:
    """One instance of every checker, ready to attach."""
    return [
        PacketConservationChecker(),
        EdfOrderChecker(),
        PlaybackNonNegativeChecker(),
        QualityLadderChecker(),
        ClockMonotonicityChecker(),
    ]


def run_checkers(
    events: Iterable[TraceEvent],
    checkers: Optional[Sequence[InvariantChecker]] = None,
) -> list[InvariantChecker]:
    """Replay ``events`` through ``checkers`` (default: all of them).

    Raises :class:`InvariantViolation` on the first broken invariant;
    returns the checkers (with their final state) when the trace is clean.
    """
    active = list(checkers) if checkers is not None else default_checkers()
    for event in events:
        for checker in active:
            checker.on_event(event)
    for checker in active:
        checker.finish()
    return active
