"""Telemetry and invariant checking for the CloudFog reproduction.

The :class:`Observability` facade bundles the three legs of the
subsystem:

* a :class:`~repro.obs.trace.TraceRecorder` — structured JSONL events
  with sim-time, component and event kind, fingerprintable via a SHA-256
  digest (same seed ⇒ byte-identical digest);
* a :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms that components register instead of ad-hoc attribute
  counters, aggregated per run;
* live invariant checkers
  (:mod:`repro.obs.invariants`) that validate every emitted event as the
  simulation runs, so a broken invariant raises at the offending step.

Components take an optional ``obs`` argument and emit through
:meth:`Observability.emit`; with no observability attached they fall back
to private metric instruments and skip tracing entirely (a single ``is
None`` check on the hot paths). Experiment drivers install a context via
:func:`use` so deeply nested construction (sessions build servers build
buffers) picks the run's observability up without threading it through
every signature:

    obs = Observability(trace=TraceRecorder(), checkers=default_checkers())
    run_experiment("fig8a", scale=0.05, seed=1, obs=obs)
    obs.trace.digest()      # the run fingerprint
    obs.metrics.snapshot()  # per-run metric export
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, Optional, Sequence

from repro.obs.invariants import (
    ClockMonotonicityChecker,
    EdfOrderChecker,
    InvariantChecker,
    InvariantViolation,
    PacketConservationChecker,
    PlaybackNonNegativeChecker,
    QualityLadderChecker,
    default_checkers,
    run_checkers,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probes import attach_kernel_probes
from repro.obs.trace import TraceEvent, TraceRecorder, load_jsonl, load_trace


class Observability:
    """One run's telemetry context: trace + metrics + live checkers.

    Parameters
    ----------
    trace:
        Recorder for structured events (``None`` = metrics/checkers only).
    metrics:
        Shared registry; a fresh one is created when not given.
    checkers:
        Invariant checkers run on every emitted event, live.
    trace_kernel:
        Also trace raw kernel schedule/step events when kernel probes are
        attached (verbose; off by default).
    """

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        checkers: Sequence[InvariantChecker] = (),
        trace_kernel: bool = False,
    ):
        self.trace = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.checkers = list(checkers)
        self.trace_kernel = trace_kernel

    def emit(self, t: float, component: str, kind: str, **data: Any) -> None:
        """Record one event and run it through the live checkers."""
        if self.trace is not None:
            self.trace.emit(t, component, kind, **data)
            if self.checkers:
                event = self.trace.events[-1]
                for checker in self.checkers:
                    checker.on_event(event)
        elif self.checkers:
            event = TraceEvent(t, component, kind, data)
            for checker in self.checkers:
                checker.on_event(event)

    def finish(self) -> None:
        """Run end-of-trace checks on every attached checker."""
        for checker in self.checkers:
            checker.finish()

    def digest(self) -> Optional[str]:
        """The trace digest, or ``None`` when not tracing."""
        return self.trace.digest() if self.trace is not None else None


#: The process-wide current observability context (see :func:`use`).
_CURRENT: Optional[Observability] = None


def current() -> Optional[Observability]:
    """The observability context installed by :func:`use`, if any."""
    return _CURRENT


@contextmanager
def use(obs: Optional[Observability]):
    """Install ``obs`` as the context for nested component construction."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = obs
    try:
        yield obs
    finally:
        _CURRENT = previous


__all__ = [
    "ClockMonotonicityChecker",
    "Counter",
    "EdfOrderChecker",
    "Gauge",
    "Histogram",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRegistry",
    "Observability",
    "PacketConservationChecker",
    "PlaybackNonNegativeChecker",
    "QualityLadderChecker",
    "TraceEvent",
    "TraceRecorder",
    "attach_kernel_probes",
    "current",
    "default_checkers",
    "load_jsonl",
    "load_trace",
    "run_checkers",
    "use",
]
