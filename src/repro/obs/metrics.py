"""Metrics instruments and the per-run registry.

Three instrument kinds, in the Prometheus mold but sized for a simulator:

``Counter``
    Monotonically increasing total (segments enqueued, packets dropped).
``Gauge``
    A sampled level (sender queue length, buffered video seconds).
``Histogram``
    Distribution over fixed bucket bounds (response latency per segment).

Components create their instruments through a :class:`MetricsRegistry`.
Several instances may register the *same* name (one sender buffer per
supernode, say); :meth:`MetricsRegistry.snapshot` aggregates duplicates —
counters sum, gauges keep the last written value, histograms merge — so a
run exports one number series per metric regardless of how many servers
the session spun up. Each instance still holds its own instrument object,
which is what keeps the legacy per-object counters
(``DeadlineSenderBuffer.packets_dropped`` & co.) readable per buffer.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

#: Default histogram bucket upper bounds (seconds-flavoured; callers with
#: other units pass their own bounds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1.0, 2.5)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A sampled level that can move both ways."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bound bucketed distribution with sum/count/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        # One bucket per bound plus the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class MetricsRegistry:
    """Factory and collector for a run's instruments.

    The registry does not enforce name uniqueness: every component
    registers its own instrument objects, and aggregation across
    same-named instruments happens at snapshot time.
    """

    def __init__(self) -> None:
        self._instruments: list[Counter | Gauge | Histogram] = []

    def counter(self, name: str) -> Counter:
        c = Counter(name)
        self._instruments.append(c)
        return c

    def gauge(self, name: str) -> Gauge:
        g = Gauge(name)
        self._instruments.append(g)
        return g

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        h = Histogram(name, bounds)
        self._instruments.append(h)
        return h

    def inc(self, name: str, amount: int | float = 1) -> None:
        """Bump the counter ``name`` by ``amount`` in one call.

        Registers a fresh instrument each time; snapshot-time
        aggregation sums same-named counters, so callers that only
        ever increment (the sweep harness's ``harness.*`` counters)
        need not hold instrument objects.
        """
        self.counter(name).inc(amount)

    def absorb_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` produced elsewhere into this registry.

        The parallel sweep engine runs every task under its own private
        registry (in a worker process or inline) and merges the per-task
        snapshots into the parent in deterministic task order; because
        this registers ordinary instruments, the usual snapshot-time
        aggregation applies — counters sum, the last absorbed gauge
        wins, histograms merge bucket-wise.
        """
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                h = self.histogram(name, bounds=tuple(entry["bounds"]))
                h.bucket_counts = [int(n) for n in entry["buckets"]]
                h.count = int(entry["count"])
                h.sum = float(entry["sum"])
                h.min = (float(entry["min"]) if entry["min"] is not None
                         else float("inf"))
                h.max = (float(entry["max"]) if entry["max"] is not None
                         else float("-inf"))
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> Iterable[Counter | Gauge | Histogram]:
        return iter(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """Aggregate every instrument into ``{name: {kind, ...}}``.

        Counters with the same name sum; gauges keep the last-registered
        instrument's value; histograms merge bucket-wise.
        """
        out: dict[str, dict] = {}
        merged_hists: dict[str, Histogram] = {}
        for inst in self._instruments:
            if isinstance(inst, Counter):
                slot = out.setdefault(
                    inst.name, {"kind": "counter", "value": 0})
                slot["value"] += inst.value
            elif isinstance(inst, Gauge):
                out[inst.name] = {"kind": "gauge", "value": inst.value}
            else:
                acc = merged_hists.get(inst.name)
                if acc is None:
                    acc = Histogram(inst.name, inst.bounds)
                    merged_hists[inst.name] = acc
                acc.merge(inst)
        for name, h in merged_hists.items():
            out[name] = {
                "kind": "histogram",
                "count": h.count,
                "sum": h.sum,
                "mean": h.mean,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "bounds": list(h.bounds),
                "buckets": list(h.bucket_counts),
            }
        return out


def null_registry() -> MetricsRegistry:
    """A fresh private registry for components run without observability."""
    return MetricsRegistry()
