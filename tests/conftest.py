"""Shared fixtures for the CloudFog reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenarios import peersim_scenario, planetlab_scenario
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rngs() -> RngRegistry:
    """A deterministic RNG registry."""
    return RngRegistry(12345)


@pytest.fixture
def rng(rngs) -> np.random.Generator:
    """One generic random stream."""
    return rngs.stream("test")


@pytest.fixture(scope="session")
def small_population():
    """A small but structurally complete population (cached per session).

    Uses the PeerSim scenario at 3 % scale: 300 players, 5 datacenters,
    18 supernodes, 2 edge servers.
    """
    return peersim_scenario(scale=0.03, seed=7).build()


@pytest.fixture(scope="session")
def small_scenario():
    """The scenario matching ``small_population``."""
    return peersim_scenario(scale=0.03, seed=7)


@pytest.fixture(scope="session")
def small_planetlab():
    """A small PlanetLab-flavoured population."""
    return planetlab_scenario(scale=0.1, seed=7).build()
