"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.core.infrastructure import (
    SessionConfig,
    SystemVariant,
    simulate_sessions,
)
from repro.experiments.scenarios import planetlab_scenario


class TestPlanetLabEndToEnd:
    """The paper's second testbed, end to end through the DES."""

    @pytest.fixture(scope="class")
    def results(self):
        scen = planetlab_scenario(scale=0.6, seed=17)
        pop = scen.build()
        online = scen.online_sample(pop)
        cfg = SessionConfig(duration_s=10.0, warmup_s=2.0)
        return {
            v: simulate_sessions(
                pop, v, online, cfg,
                edge_server_host_ids=pop.edge_server_host_ids)
            for v in (SystemVariant.CLOUD, SystemVariant.EDGECLOUD,
                      SystemVariant.CLOUDFOG_B, SystemVariant.CLOUDFOG_A)
        }

    def test_fog_latency_advantage(self, results):
        assert (results[SystemVariant.CLOUDFOG_A].mean_latency_s
                < results[SystemVariant.CLOUD].mean_latency_s)

    def test_fog_continuity_advantage(self, results):
        assert (results[SystemVariant.CLOUDFOG_B].mean_continuity
                > results[SystemVariant.CLOUD].mean_continuity)

    def test_bandwidth_ordering(self, results):
        assert (results[SystemVariant.CLOUD].cloud_egress_bps
                > results[SystemVariant.CLOUDFOG_B].cloud_egress_bps)

    def test_university_networks_deliver_high_continuity(self, results):
        """PlanetLab access is good: fog continuity approaches 1."""
        assert results[SystemVariant.CLOUDFOG_A].mean_continuity > 0.8


class TestTrustAssignmentIntegration:
    """Evicted supernodes must vanish from assignment."""

    def test_eviction_removes_candidates(self, rng):
        from repro.core.assignment import SupernodeAssignment
        from repro.core.trust import TrustRegistry
        from repro.network.latency import LatencyModel, LatencyParams

        positions = np.array(
            [[3000.0, 0.0]] + [[float(i), 0.0] for i in range(1, 4)]
            + [[1.0, 1.0]])
        lat = LatencyModel(
            positions, rng,
            LatencyParams(jitter_scale_s=0.0, poor_fraction=0.0),
            metro_ids=np.array([-1, 0, 0, 0, 0]))
        trust = TrustRegistry()
        for sid in (1, 2, 3):
            trust.register(sid)
        service = SupernodeAssignment(
            lat, np.array([1, 2, 3]), np.full(3, 5), np.array([0]),
            trust=trust)

        first = service.assign(4, 0.110)
        assert first.uses_supernode
        chosen = first.supernode_host_id
        # Players report the serving supernode until eviction.
        for _ in range(50):
            trust.report(chosen, tampered=True)
        assert not trust.is_active(chosen)
        second = service.assign(4, 0.110)
        assert second.uses_supernode
        assert second.supernode_host_id != chosen

    def test_all_evicted_falls_back_to_cloud(self, rng):
        from repro.core.assignment import SupernodeAssignment
        from repro.core.trust import TrustRegistry
        from repro.network.latency import LatencyModel, LatencyParams

        positions = np.array([[100.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        lat = LatencyModel(
            positions, rng,
            LatencyParams(jitter_scale_s=0.0, poor_fraction=0.0))
        trust = TrustRegistry()
        trust.register(1)
        for _ in range(50):
            trust.report(1, tampered=True)
        service = SupernodeAssignment(
            lat, np.array([1]), np.array([5]), np.array([0]), trust=trust)
        res = service.assign(2, 0.110)
        assert not res.uses_supernode


class TestScaleInvariance:
    """Key shapes must survive a change of scale (no magic-number
    dependence on one population size)."""

    @pytest.mark.parametrize("scale", [0.03, 0.08])
    def test_fog_beats_cloud_at_any_scale(self, scale):
        from repro.experiments.scenarios import peersim_scenario
        scen = peersim_scenario(scale=scale, seed=23)
        pop = scen.build()
        online = scen.online_sample(pop)
        cfg = SessionConfig(duration_s=8.0, warmup_s=2.0)
        cloud = simulate_sessions(pop, SystemVariant.CLOUD, online, cfg)
        fog = simulate_sessions(pop, SystemVariant.CLOUDFOG_B, online, cfg)
        assert fog.mean_continuity > cloud.mean_continuity
        assert fog.cloud_egress_bps < cloud.cloud_egress_bps
