"""End-to-end determinism: same seed ⇒ byte-identical trace digest.

Runs a whole paper figure (fig8 = fig8a + fig8b, every system variant)
under full observability — trace, metrics and all five invariant
checkers live — twice with the same seed and once with a different one.
This is the regression net for "any PR that silently changes scheduling
order, drop accounting or clock behaviour changes the digest".
"""

import pytest

from repro.experiments.config import RunConfig
from repro.experiments.runner import resolve_experiments, run_experiment
from repro.obs import (
    Observability,
    TraceRecorder,
    default_checkers,
    run_checkers,
)

SCALE = 0.02


def traced_run(figure: str, seed: int) -> Observability:
    obs = Observability(trace=TraceRecorder(), checkers=default_checkers())
    run_experiment(figure, scale=SCALE, seed=seed, obs=obs)
    return obs


@pytest.fixture(scope="module")
def fig8_runs():
    """fig8 traced three times: seed 5 twice, seed 6 once."""
    return (traced_run("fig8", 5), traced_run("fig8", 5),
            traced_run("fig8", 6))


class TestExperimentDeterminism:
    def test_fig8_prefix_resolves_to_both_panels(self):
        assert resolve_experiments("fig8") == ["fig8a", "fig8b"]

    def test_same_seed_identical_digest(self, fig8_runs):
        a, b, _ = fig8_runs
        assert a.digest() == b.digest()
        assert len(a.trace) == len(b.trace)

    def test_different_seed_different_digest(self, fig8_runs):
        a, _, c = fig8_runs
        assert a.digest() != c.digest()

    def test_live_checkers_saw_a_real_run(self, fig8_runs):
        # The live checkers passed (traced_run would have raised); make
        # sure they actually had material to chew on.
        a, _, _ = fig8_runs
        kinds = {e.kind for e in a.trace}
        assert "session.start" in kinds
        assert "buffer.enqueue" in kinds
        assert "buffer.dequeue" in kinds
        assert "playback.arrival" in kinds

    def test_offline_replay_passes_too(self, fig8_runs):
        # The pytest-fixture mode: replay the recorded trace through
        # fresh checkers, as a post-mortem on a saved JSONL would.
        a, _, _ = fig8_runs
        run_checkers(a.trace)

    def test_metrics_snapshot_reproducible(self, fig8_runs):
        a, b, _ = fig8_runs
        assert a.metrics.snapshot() == b.metrics.snapshot()

    def test_core_counters_populated(self, fig8_runs):
        a, _, _ = fig8_runs
        snap = a.metrics.snapshot()
        assert snap["sender.segments_enqueued"]["value"] > 0
        assert snap["server.segments_sent"]["value"] > 0
        assert snap["playback.response_latency_s"]["count"] > 0


class TestParallelExecutionDeterminism:
    """jobs=4 must be indistinguishable from jobs=1 — series, trace
    digest and merged metrics alike (PR acceptance criterion)."""

    @pytest.fixture(scope="class")
    def parity_runs(self):
        def run(jobs):
            obs = Observability(trace=TraceRecorder(),
                                checkers=default_checkers())
            series = run_experiment("fig8", scale=SCALE, seed=5, obs=obs,
                                    config=RunConfig(jobs=jobs))
            return series, obs

        return run(1), run(4)

    def test_series_byte_identical(self, parity_runs):
        (serial, _), (parallel, _) = parity_runs
        assert ([s.to_dict() for s in serial]
                == [s.to_dict() for s in parallel])

    def test_trace_digest_identical(self, parity_runs):
        (_, obs1), (_, obs4) = parity_runs
        assert obs1.digest() == obs4.digest()
        assert len(obs1.trace) == len(obs4.trace) > 0

    def test_metrics_snapshot_identical(self, parity_runs):
        (_, obs1), (_, obs4) = parity_runs
        assert obs1.metrics.snapshot() == obs4.metrics.snapshot()


class TestChaosParallelDeterminism:
    """The chaos figure (seeded fault injection + failover) must keep
    the jobs=1/jobs=4 parity guarantee: faults fire, players migrate,
    and the merged result is still byte-identical."""

    @pytest.fixture(scope="class")
    def chaos_parity_runs(self):
        def run(jobs):
            obs = Observability(trace=TraceRecorder(),
                                checkers=default_checkers())
            series = run_experiment("chaos", scale=SCALE, seed=5,
                                    obs=obs, config=RunConfig(jobs=jobs))
            return series, obs

        return run(1), run(4)

    def test_series_byte_identical(self, chaos_parity_runs):
        (serial, _), (parallel, _) = chaos_parity_runs
        assert ([s.to_dict() for s in serial]
                == [s.to_dict() for s in parallel])

    def test_trace_digest_identical(self, chaos_parity_runs):
        (_, obs1), (_, obs4) = chaos_parity_runs
        assert obs1.digest() == obs4.digest()
        assert len(obs1.trace) == len(obs4.trace) > 0

    def test_metrics_snapshot_identical(self, chaos_parity_runs):
        (_, obs1), (_, obs4) = chaos_parity_runs
        assert obs1.metrics.snapshot() == obs4.metrics.snapshot()

    def test_faults_actually_fired(self, chaos_parity_runs):
        (_, obs1), _ = chaos_parity_runs
        kinds = {e.kind for e in obs1.trace}
        assert "fault.inject" in kinds
        assert "failover.recover" in kinds


class TestObservabilityIsOptIn:
    def test_unobserved_run_matches_observed_series(self):
        plain = run_experiment("fig8a", scale=SCALE, seed=5)
        obs = Observability(trace=TraceRecorder(),
                            checkers=default_checkers())
        traced = run_experiment("fig8a", scale=SCALE, seed=5, obs=obs)
        # Telemetry must be a pure observer: attaching it cannot change
        # the simulated results.
        assert [s.as_dict() for s in plain] == [s.as_dict() for s in traced]
