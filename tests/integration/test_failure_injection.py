"""Failure-injection tests: the system must degrade, not crash."""

import numpy as np
import pytest

from repro.core.infrastructure import (
    SessionConfig,
    SystemVariant,
    simulate_sessions,
)
from repro.core.server import StreamingServer
from repro.sim.engine import Environment
from repro.streaming.encoder import SegmentEncoder


class TestMidSessionDetach:
    def test_player_leaves_mid_transmission(self, env):
        """Detaching while segments are queued must not crash the
        sender loop, and queued segments for the leaver are discarded."""
        server = StreamingServer(env, 0, 1e6)  # slow: queue builds
        delivered = []
        enc1 = SegmentEncoder(1, 0.110, 0.2)
        enc2 = SegmentEncoder(2, 0.110, 0.2)
        server.attach_player(1, enc1, lambda s, t: delivered.append(1),
                             0.01)
        server.attach_player(2, enc2, lambda s, t: delivered.append(2),
                             0.01)

        def scenario(env):
            for _ in range(5):
                server.render_and_send(1, env.now)
                server.render_and_send(2, env.now)
                yield env.timeout(0.01)
            server.detach_player(1)
            yield env.timeout(5.0)

        env.process(scenario(env))
        env.run(until=10.0)
        assert 2 in delivered
        # Player 1 may have received early segments but none after detach.
        assert delivered.count(1) <= 5

    def test_render_after_detach_is_noop(self, env):
        server = StreamingServer(env, 0, 1e6)
        enc = SegmentEncoder(1, 0.110, 0.2)
        server.attach_player(1, enc, lambda s, t: None, 0.01)
        server.detach_player(1)
        server.render_and_send(1, 0.0)
        env.run(until=1.0)
        assert server.segments_sent == 0


class TestDegenerateConfigurations:
    def test_zero_supernodes_system_still_works(self):
        from repro.experiments.scenarios import peersim_scenario
        scen = peersim_scenario(scale=0.02, seed=5).with_(n_supernodes=0)
        pop = scen.build()
        online = scen.online_sample(pop)
        res = simulate_sessions(
            pop, SystemVariant.CLOUDFOG_B, online,
            SessionConfig(duration_s=4.0, warmup_s=1.0))
        assert res.fraction_served_by("cloud") == 1.0
        assert res.n_players == online.size

    def test_single_online_player(self):
        from repro.experiments.scenarios import peersim_scenario
        scen = peersim_scenario(scale=0.02, seed=5)
        pop = scen.build()
        res = simulate_sessions(
            pop, SystemVariant.CLOUDFOG_A, np.array([0]),
            SessionConfig(duration_s=4.0, warmup_s=1.0))
        assert res.n_players == 1

    def test_empty_online_set(self):
        from repro.experiments.scenarios import peersim_scenario
        scen = peersim_scenario(scale=0.02, seed=5)
        pop = scen.build()
        res = simulate_sessions(
            pop, SystemVariant.CLOUD, np.array([], dtype=int),
            SessionConfig(duration_s=2.0))
        assert res.n_players == 0
        assert res.mean_continuity == 1.0

    def test_edgecloud_without_edge_servers(self):
        """EdgeCloud with no deployed edge servers degrades to Cloud."""
        from repro.experiments.scenarios import peersim_scenario
        scen = peersim_scenario(scale=0.02, seed=5).with_(
            n_edge_servers=0)
        pop = scen.build()
        online = scen.online_sample(pop)
        res = simulate_sessions(
            pop, SystemVariant.EDGECLOUD, online,
            SessionConfig(duration_s=4.0, warmup_s=1.0),
            edge_server_host_ids=pop.edge_server_host_ids)
        assert res.fraction_served_by("edge") == 0.0
        assert res.fraction_served_by("cloud") == 1.0


class TestProcessCrashIsolation:
    def test_one_crashing_process_fails_loudly(self, env):
        """Uncaught process errors surface instead of corrupting state."""
        def bad(env):
            yield env.timeout(1.0)
            raise RuntimeError("injected")

        def good(env):
            yield env.timeout(5.0)
            return "ok"

        env.process(bad(env))
        g = env.process(good(env))
        with pytest.raises(RuntimeError, match="injected"):
            env.run()
        # The kernel stopped at the failure; the good process is intact
        # and resumable.
        env.run()
        assert g.value == "ok"
