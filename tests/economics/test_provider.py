"""Unit tests for provider economics (Eqs. 2-6)."""

import numpy as np
import pytest

from repro.economics.provider import (
    EC2_PRICE_PER_GB,
    ProviderModel,
    bandwidth_reduction_bps,
    deployment_gain,
    provider_saved_cost,
    supernode_contribution_bps,
)


class TestEq2BandwidthReduction:
    def test_formula(self):
        """B_r = n*R - Λ*m."""
        assert bandwidth_reduction_bps(100, 1e6, 1e4, 10) == pytest.approx(
            100 * 1e6 - 1e4 * 10)

    def test_no_supernodes_no_reduction(self):
        assert bandwidth_reduction_bps(0, 1e6, 1e4, 0) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_reduction_bps(-1, 1e6, 1e4, 0)

    def test_update_overhead_can_dominate(self):
        """Too many supernodes for too few players loses bandwidth."""
        assert bandwidth_reduction_bps(1, 1e6, 1e6, 5) < 0


class TestEq4Eq5Constraints:
    def test_contribution_sum(self):
        b_s = supernode_contribution_bps(
            np.array([1e6, 2e6]), np.array([0.5, 1.0]))
        assert b_s == pytest.approx(2.5e6)

    def test_eq5_utilization_cap(self):
        with pytest.raises(ValueError):
            supernode_contribution_bps(np.array([1e6]), np.array([1.2]))

    def test_eq4_support_constraint_enforced(self):
        """Contribution must cover supported players' streaming demand."""
        with pytest.raises(ValueError):
            provider_saved_cost(
                saving_per_bps=1.0, reward_per_bps=0.1,
                n_supported=100, streaming_rate_bps=1e6,
                update_rate_bps=1e4,
                capacity_bps=np.array([1e6]), utilization=np.array([1.0]))

    def test_eq4_can_be_waived(self):
        cost = provider_saved_cost(
            1.0, 0.1, 100, 1e6, 1e4,
            np.array([1e6]), np.array([1.0]), enforce_support=False)
        assert isinstance(cost, float)


class TestEq3SavedCost:
    def test_formula(self):
        """C_g = c_c*(n*R - Λ*m) - c_s*B_s."""
        caps = np.array([50e6, 70e6])
        util = np.array([1.0, 1.0])
        c_g = provider_saved_cost(
            saving_per_bps=2.0, reward_per_bps=0.5,
            n_supported=100, streaming_rate_bps=1e6, update_rate_bps=1e4,
            capacity_bps=caps, utilization=util)
        b_r = 100 * 1e6 - 1e4 * 2
        b_s = 120e6
        assert c_g == pytest.approx(2.0 * b_r - 0.5 * b_s)

    def test_fewer_supernodes_higher_saving(self):
        """Paper: for fixed n, saved cost grows as m shrinks."""
        demand_bps = 100 * 1e6

        def cost_with_m(m):
            caps = np.full(m, demand_bps / m)
            return provider_saved_cost(
                2.0, 0.5, 100, 1e6, 1e4, caps, np.ones(m))

        assert cost_with_m(5) > cost_with_m(50)


class TestEq6DeploymentGain:
    def test_formula(self):
        """G_s = c_c*(ν*R - Λ) - c_s*c_j*u_j."""
        g = deployment_gain(2.0, 0.5, 10, 1e6, 1e4, 20e6, 0.8)
        assert g == pytest.approx(2.0 * (10 * 1e6 - 1e4) - 0.5 * 20e6 * 0.8)

    def test_worthless_supernode_negative(self):
        g = deployment_gain(1.0, 1.0, 0, 1e6, 1e4, 20e6, 1.0)
        assert g < 0

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            deployment_gain(1.0, 1.0, 5, 1e6, 1e4, 1e6, 1.5)


class TestProviderModel:
    def make_model(self):
        return ProviderModel(
            saving_per_bps=2.0, reward_per_bps=0.5,
            streaming_rate_bps=1e6, update_rate_bps=1e4)

    def test_greedy_deploys_positive_gains_only(self):
        model = self.make_model()
        caps = np.array([1e6, 1e6, 1e9])  # last one too expensive
        nu = np.array([10.0, 5.0, 1.0])
        deployed = model.greedy_deployment(caps, nu, utilization=1.0)
        assert 2 not in deployed
        assert set(deployed) == {0, 1}

    def test_greedy_descending_gain_order(self):
        model = self.make_model()
        caps = np.array([1e6, 1e6])
        nu = np.array([5.0, 10.0])
        deployed = model.greedy_deployment(caps, nu, 1.0)
        assert deployed.tolist() == [1, 0]

    def test_nothing_deployable(self):
        model = self.make_model()
        deployed = model.greedy_deployment(
            np.array([1e9]), np.array([0.0]), 1.0)
        assert deployed.size == 0

    def test_monthly_bill_matches_paper_example(self):
        """Paper §I: 27 TB per 12 h ≈ $130k/month at $0.085/GB."""
        model = self.make_model()
        tb_per_12h = 27e12
        avg_bps = 8.0 * tb_per_12h / (12 * 3600)
        bill = model.monthly_bandwidth_bill_usd(avg_bps)
        assert bill == pytest.approx(137_700, rel=0.08)

    def test_ec2_price_constant(self):
        assert EC2_PRICE_PER_GB == 0.085
