"""Unit tests for the supernode incentive model (Eq. 1)."""

import numpy as np
import pytest

from repro.economics.incentives import (
    IncentiveParams,
    contribution_decisions,
    participation_curve,
    supernode_profit,
)


class TestIncentiveParams:
    def test_defaults_provider_viable(self):
        p = IncentiveParams()
        assert p.saving_per_mbps > p.reward_per_mbps

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            IncentiveParams(reward_per_mbps=-1.0)


class TestSupernodeProfit:
    def test_eq1_scalar(self):
        """P_s = c_s * c_j * u_j - cost_j."""
        profit = supernode_profit(2.0, 10.0, 0.8, 5.0)
        assert profit == pytest.approx(2.0 * 10.0 * 0.8 - 5.0)

    def test_vectorized(self):
        profit = supernode_profit(
            1.0, np.array([10.0, 20.0]), np.array([1.0, 0.5]),
            np.array([3.0, 3.0]))
        assert np.allclose(profit, [7.0, 7.0])

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            supernode_profit(1.0, 10.0, 1.5, 0.0)
        with pytest.raises(ValueError):
            supernode_profit(1.0, 10.0, -0.1, 0.0)

    def test_zero_utilization_pure_cost(self):
        assert supernode_profit(5.0, 100.0, 0.0, 7.0) == -7.0


class TestContributionDecisions:
    def test_threshold_gates(self):
        caps = np.array([10.0, 10.0])
        util = np.array([1.0, 1.0])
        cost = np.array([5.0, 5.0])
        thresholds = np.array([1.0, 100.0])
        mask = contribution_decisions(2.0, caps, util, cost, thresholds)
        # profit = 15 for both; only the first threshold is beaten.
        assert mask.tolist() == [True, False]

    def test_zero_reward_nobody_contributes(self):
        n = 50
        rng = np.random.default_rng(0)
        mask = contribution_decisions(
            0.0, rng.uniform(1, 10, n), np.ones(n),
            rng.uniform(1, 5, n), np.zeros(n))
        assert not mask.any()


class TestParticipationCurve:
    def test_monotone_in_reward(self):
        rng = np.random.default_rng(1)
        n = 500
        caps = rng.uniform(5, 50, n)
        util = np.full(n, 0.8)
        cost = rng.uniform(1, 10, n)
        thresholds = rng.uniform(0, 5, n)
        rewards = np.linspace(0, 3, 10)
        frac = participation_curve(rewards, caps, util, cost, thresholds)
        assert np.all(np.diff(frac) >= 0)
        assert frac[0] == 0.0

    def test_saturates_at_one(self):
        n = 100
        curve = participation_curve(
            np.array([1000.0]), np.full(n, 10.0), np.ones(n),
            np.ones(n), np.ones(n))
        assert curve[0] == 1.0

    def test_empty_population(self):
        curve = participation_curve(
            np.array([1.0]), np.empty(0), np.empty(0),
            np.empty(0), np.empty(0))
        assert curve[0] == 0.0
