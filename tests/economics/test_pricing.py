"""Tests for reward pricing (clearing and optimal rewards)."""

import numpy as np
import pytest

from repro.economics.pricing import SupplyMarket, clearing_reward, optimal_reward


def make_market(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return SupplyMarket(
        capacity_mbps=rng.uniform(5, 40, n),
        expected_utilization=np.full(n, 0.8),
        cost=rng.uniform(1, 5, n),
        thresholds=rng.uniform(0, 2, n),
    )


class TestSupplyMarket:
    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            SupplyMarket(np.ones(3), np.ones(2), np.ones(3), np.ones(3))

    def test_supply_monotone_in_reward(self):
        market = make_market()
        supplies = [market.supply_mbps(r) for r in (0.0, 0.5, 1.0, 5.0)]
        assert supplies == sorted(supplies)

    def test_zero_reward_zero_supply(self):
        market = make_market()
        assert market.supply_mbps(0.0) == 0.0

    def test_max_supply(self):
        market = make_market()
        assert market.supply_mbps(1000.0) == pytest.approx(
            market.max_supply_mbps)


class TestClearingReward:
    def test_supply_covers_demand_at_clearing(self):
        market = make_market()
        demand = 0.5 * market.max_supply_mbps
        c_star = clearing_reward(market, demand)
        assert market.supply_mbps(c_star) >= demand
        # And just below, it does not (minimality).
        assert market.supply_mbps(c_star - 0.01) < demand + 1e-6 or \
            c_star < 0.02

    def test_zero_demand_free(self):
        assert clearing_reward(make_market(), 0.0) == 0.0

    def test_impossible_demand_raises(self):
        market = make_market()
        with pytest.raises(ValueError, match="max supply"):
            clearing_reward(market, market.max_supply_mbps * 2)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            clearing_reward(make_market(), -1.0)

    def test_higher_demand_higher_reward(self):
        market = make_market()
        lo = clearing_reward(market, 0.2 * market.max_supply_mbps)
        hi = clearing_reward(market, 0.9 * market.max_supply_mbps)
        assert hi >= lo


class TestOptimalReward:
    def test_optimal_near_clearing(self):
        """C_g declines linearly past the clearing point, so the optimum
        sits at (or just above) it."""
        market = make_market()
        demand = 0.5 * market.max_supply_mbps
        c_clear = clearing_reward(market, demand)
        c_opt, c_g = optimal_reward(market, demand, saving_per_mbps=6.0)
        assert c_g > 0
        assert c_opt <= c_clear + 0.5

    def test_no_profitable_reward(self):
        """When rewards cost more than savings, the provider abstains."""
        market = make_market()
        c_opt, c_g = optimal_reward(
            market, 10.0, saving_per_mbps=1e-9)
        assert c_g == 0.0

    def test_overhead_reduces_savings(self):
        market = make_market()
        demand = 0.5 * market.max_supply_mbps
        _, cg_clean = optimal_reward(market, demand, 6.0)
        _, cg_overhead = optimal_reward(
            market, demand, 6.0, update_overhead_mbps=demand * 0.2)
        assert cg_overhead < cg_clean
