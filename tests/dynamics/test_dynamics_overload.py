"""Overload-graceful supernodes under a 10x regional surge.

The acceptance scenario from the dynamics issue: a flash crowd pushes
roughly ten times one region's population onto it. Graceful supernodes
must refuse admissions past the watermark, shed sessions down the
quality ladder deterministically, and end the run with a better
satisfied fraction than the do-nothing strategy — all without breaking
a single kernel invariant.
"""

import pytest

import repro.obs as obs_mod
from repro.core.cohort import ScaleSpec
from repro.dynamics import (
    DynamicsBuilder,
    DynamicsKernel,
    DynamicsSpec,
    run_dynamics,
)
from repro.obs import Observability

N_PLAYERS = 2000
N_REGIONS = 4
N_TICKS = 80


def surge_spec(strategy="graceful", mode="cohort", seed=7):
    base = ScaleSpec(n_players=N_PLAYERS, n_regions=N_REGIONS,
                     n_ticks=N_TICKS, seed=seed, mode=mode,
                     faults="none")
    horizon = N_TICKS * base.params.tick_s
    # ~10 x region-0's share of the population arrives over 30 % of the
    # run and barely drains: a sustained overload, not a blip.
    plan = (DynamicsBuilder(seed=seed)
            .flash_crowd(at_s=0.1 * horizon, duration_s=0.3 * horizon,
                         region=0,
                         arrivals_per_s=(10.0 * N_PLAYERS / N_REGIONS)
                         / (0.3 * horizon),
                         mean_session_s=10.0 * horizon)
            .build())
    return DynamicsSpec(base=base, plan=plan, initial_fraction=0.3,
                        strategy=strategy)


@pytest.fixture(scope="module")
def graceful():
    return run_dynamics(surge_spec("graceful"))


@pytest.fixture(scope="module")
def unmanaged():
    return run_dynamics(surge_spec("none"))


class TestSurgeResponse:
    def test_overload_machinery_engages(self, graceful):
        assert graceful.refused > 0
        assert graceful.shed > 0
        assert graceful.overload_episodes > 0
        assert graceful.invariants == []

    def test_none_strategy_admits_everyone(self, unmanaged):
        assert unmanaged.refused == 0
        assert unmanaged.shed == 0
        assert unmanaged.evicted == 0
        # Episodes are observability, not policy: still tracked.
        assert unmanaged.overload_episodes > 0
        assert unmanaged.invariants == []

    def test_graceful_beats_none_on_satisfaction(self, graceful,
                                                 unmanaged):
        assert (graceful.satisfied_active_fraction
                > unmanaged.satisfied_active_fraction)

    def test_shed_set_is_seed_deterministic(self):
        def shed_events():
            k = DynamicsKernel(surge_spec("graceful"))
            k.run_dynamics()
            return list(k.shed_events)

        first, second = shed_events(), shed_events()
        assert first and first == second

    def test_surge_parity_across_modes(self):
        a = run_dynamics(surge_spec("graceful", mode="cohort"))
        b = run_dynamics(surge_spec("graceful", mode="per-player"))
        assert a.scale.digest == b.scale.digest
        assert (a.refused, a.shed, a.evicted) == (
            b.refused, b.shed, b.evicted)


class TestOverloadMetrics:
    def test_overload_counters_and_histogram_emitted(self):
        obs = Observability()
        with obs_mod.use(obs):
            report = run_dynamics(surge_spec("graceful"), obs=obs)
        snap = obs.metrics.snapshot()
        assert snap["overload.refused"]["value"] == report.refused
        assert snap["overload.shed"]["value"] == report.shed
        hist = snap["overload.recovery_time_s"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == report.overload_episodes
        assert report.overload_mean_recovery_s is not None

    def test_migration_times_reach_failover_histogram(self):
        base = ScaleSpec(n_players=600, n_regions=3, n_ticks=40,
                         seed=4, faults="none")
        horizon = base.n_ticks * base.params.tick_s
        plan = (DynamicsBuilder(seed=4)
                .mobility(rate_per_s=1.0, from_region=0, to_region=1,
                          start_s=0.2 * horizon,
                          duration_s=0.5 * horizon)
                .build())
        obs = Observability()
        with obs_mod.use(obs):
            report = run_dynamics(
                DynamicsSpec(base=base, plan=plan,
                             initial_fraction=0.8), obs=obs)
        assert report.moves > 0
        snap = obs.metrics.snapshot()
        hist = snap["failover.recovery_time_s"]
        assert hist["count"] == report.moves
        assert report.migration_mean_s == pytest.approx(hist["mean"])
