"""The dynamics plan DSL: values, serialization, presets, compilation."""

import numpy as np
import pytest

from repro.dynamics import (
    DYNAMICS_KINDS,
    DYNAMICS_PRESETS,
    ChurnSource,
    DiurnalLoad,
    DynamicsBuilder,
    DynamicsPlan,
    FlashCrowd,
    Mobility,
    SupernodeDepartures,
    compile_plan,
    preset_dynamics,
)


class TestSources:
    def test_validation_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ChurnSource(join_rate_per_s=-1.0, mean_session_s=10.0)
        with pytest.raises(ValueError):
            ChurnSource(join_rate_per_s=1.0, mean_session_s=0.0)
        with pytest.raises(ValueError):
            FlashCrowd(at_s=0.0, duration_s=0.0, region=0,
                       arrivals_per_s=5.0)
        with pytest.raises(ValueError):
            FlashCrowd(at_s=0.0, duration_s=1.0, region=0,
                       arrivals_per_s=5.0, shape="sawtooth")
        with pytest.raises(ValueError):
            DiurnalLoad(amplitude=1.5)
        with pytest.raises(ValueError):
            Mobility(rate_per_s=1.0, from_region=2, to_region=2)
        with pytest.raises(ValueError):
            SupernodeDepartures(rate_per_minute=-0.1)

    def test_kind_registry_is_complete(self):
        assert set(DYNAMICS_KINDS) == {
            "churn", "flash-crowd", "diurnal", "mobility", "departures"}

    def test_diurnal_multiplier_matches_sessions_curve(self):
        from repro.workload.sessions import diurnal_multiplier

        d = DiurnalLoad(day_length_s=100.0)
        for t in (0.0, 25.0, 50.0, 99.0):
            assert d.multiplier(t) == pytest.approx(
                float(diurnal_multiplier(t / 100.0 * 86_400.0)))
        assert d.peak_multiplier == 1.0 + d.amplitude


class TestPlan:
    def test_plan_rejects_non_sources(self):
        with pytest.raises(TypeError):
            DynamicsPlan(sources=("not a source",))

    def test_sources_are_start_ordered(self):
        late = FlashCrowd(at_s=9.0, duration_s=1.0, region=0,
                          arrivals_per_s=1.0)
        early = ChurnSource(join_rate_per_s=1.0, mean_session_s=5.0,
                            start_s=1.0)
        plan = DynamicsPlan(sources=(late, early))
        assert plan.sources == (early, late)

    def test_roundtrip_through_dict(self):
        plan = (DynamicsBuilder(seed=7)
                .churn(join_rate_per_s=3.0, mean_session_s=12.0)
                .flash_crowd(at_s=4.0, duration_s=2.0, region=1,
                             arrivals_per_s=50.0, shape="spike")
                .diurnal(day_length_s=60.0)
                .mobility(rate_per_s=0.5, from_region=0, to_region=1)
                .departures(rate_per_minute=2.0)
                .build())
        again = DynamicsPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.to_dict() == plan.to_dict()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            DynamicsPlan.from_dict(
                {"seed": 0, "sources": [{"kind": "meteor-strike"}]})

    def test_empty_plan_helpers(self):
        plan = DynamicsPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.rate_multiplier(3.0) == 1.0
        assert plan.peak_rate_multiplier() == 1.0
        assert plan.departure_rate_per_minute() == 0.0

    def test_random_plans_are_reproducible(self):
        a = DynamicsPlan.random(seed=11, horizon_s=30.0, n_sources=5)
        b = DynamicsPlan.random(seed=11, horizon_s=30.0, n_sources=5)
        assert a == b
        assert a != DynamicsPlan.random(seed=12, horizon_s=30.0,
                                        n_sources=5)


class TestPresets:
    @pytest.mark.parametrize("name", DYNAMICS_PRESETS)
    def test_every_preset_builds(self, name):
        plan = preset_dynamics(name, horizon_s=10.0, n_players=1000,
                               n_regions=4, intensity=1, seed=3)
        assert plan.is_empty == (name == "none")

    def test_intensity_zero_is_the_empty_plan(self):
        plan = preset_dynamics("flash-crowd", horizon_s=10.0,
                               n_players=1000, intensity=0)
        assert plan.is_empty

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            preset_dynamics("black-friday", horizon_s=10.0,
                            n_players=1000)


class TestCompile:
    def test_empty_plan_compiles_to_nothing(self):
        out = compile_plan(DynamicsPlan(), n_ticks=20, tick_s=0.5,
                           n_regions=3)
        assert out.is_empty
        assert out.total_joins() == 0
        assert not out.moves
        assert not np.any(out.leave_prob)

    def test_compilation_is_a_pure_function(self):
        plan = preset_dynamics("launch-day", horizon_s=10.0,
                               n_players=2000, n_regions=4, seed=9)
        a = compile_plan(plan, n_ticks=20, tick_s=0.5, n_regions=4)
        b = compile_plan(plan, n_ticks=20, tick_s=0.5, n_regions=4)
        assert np.array_equal(a.home_joins, b.home_joins)
        assert np.array_equal(a.region_joins, b.region_joins)
        assert np.array_equal(a.leave_prob, b.leave_prob)
        assert a.moves == b.moves

    def test_flash_crowd_targets_its_region(self):
        plan = (DynamicsBuilder(seed=2)
                .flash_crowd(at_s=2.0, duration_s=4.0, region=1,
                             arrivals_per_s=100.0)
                .build())
        out = compile_plan(plan, n_ticks=20, tick_s=0.5, n_regions=3)
        assert out.region_joins[:, 1].sum() > 0
        assert out.region_joins[:, 0].sum() == 0
        assert out.region_joins[:, 2].sum() == 0
        # Surge sessions drain only from the surge region.
        assert np.any(out.leave_prob[:, 1] > 0)
        assert not np.any(out.leave_prob[:, 0] > 0)

    def test_mobility_region_bounds_checked(self):
        plan = (DynamicsBuilder(seed=2)
                .mobility(rate_per_s=1.0, from_region=0, to_region=7)
                .build())
        with pytest.raises(ValueError):
            compile_plan(plan, n_ticks=10, tick_s=0.5, n_regions=3)

    def test_diurnal_modulates_join_totals(self):
        def joins(sources):
            plan = DynamicsPlan(sources=sources, seed=5)
            return compile_plan(plan, n_ticks=40, tick_s=0.5,
                                n_regions=2).total_joins

        churn = ChurnSource(join_rate_per_s=50.0, mean_session_s=30.0)
        flat = joins((churn,))
        # Peak hour mapped onto the start of the horizon: more joins
        # early, and a different total than the flat plan.
        peaked = joins((churn, DiurnalLoad(peak_hour=0.0,
                                           day_length_s=20.0)))
        assert peaked != flat
