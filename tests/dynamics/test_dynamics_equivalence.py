"""Determinism pins for the dynamics kernel (PR 10).

Three contracts, in increasing strength:

* the zero-plan run is byte-identical to the static kernel — pinned to
  a golden digest captured on the seed ``run_scale`` before
  ``repro.dynamics`` existed, and cross-checked against a live
  ``run_scale`` call;
* cohort and per-player modes agree under full population dynamics;
* the same seed reproduces the same run — including the exact set of
  (tick, player) shed decisions, not just the aggregate counts.

If an intentional change moves the golden, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.core.cohort import ScaleSpec, run_scale
    print(run_scale(ScaleSpec(n_players=250, n_regions=3, n_ticks=40,
                              seed=2, faults="none")).digest)
    EOF
"""

import pytest

from repro.core.cohort import ScaleSpec, run_scale
from repro.dynamics import (
    DynamicsKernel,
    DynamicsPlan,
    DynamicsSpec,
    preset_dynamics,
    run_dynamics,
)

#: run_scale(ScaleSpec(n_players=250, n_regions=3, n_ticks=40, seed=2,
#: faults="none")) on the seed kernel, before the dynamics layer.
GOLDEN_ZERO_PLAN = (
    "71d110b700d511692133e950b9f0b14eb81612779c269082e2561c82ed4a5608")

BASE = dict(n_players=250, n_regions=3, n_ticks=40, seed=2,
            faults="none")


def _spec(mode="cohort", faults="none", preset="none", intensity=1,
          initial_fraction=1.0, strategy="graceful", seed=2):
    base = ScaleSpec(mode=mode, **{**BASE, "faults": faults,
                                   "seed": seed})
    plan = preset_dynamics(preset,
                           horizon_s=base.n_ticks * base.params.tick_s,
                           n_players=base.n_players,
                           n_regions=base.n_regions,
                           intensity=intensity, seed=seed)
    return DynamicsSpec(base=base, plan=plan,
                        initial_fraction=initial_fraction,
                        strategy=strategy)


class TestZeroPlanEquivalence:
    def test_empty_plan_matches_golden_digest(self):
        report = run_dynamics(_spec())
        assert report.scale.digest == GOLDEN_ZERO_PLAN
        assert report.invariants == []
        assert report.joins == 0 and report.leaves == 0
        assert report.initial_active == BASE["n_players"]

    def test_empty_plan_matches_live_static_kernel(self):
        """Armed-but-empty dynamics never perturbs the base kernel,
        whatever the fault preset underneath."""
        for faults in ("none", "mixed"):
            base = ScaleSpec(mode="cohort", **{**BASE, "faults": faults})
            static = run_scale(base)
            dyn = run_dynamics(DynamicsSpec(base=base,
                                            plan=DynamicsPlan(),
                                            strategy="none"))
            assert dyn.scale.digest == static.digest, faults

    def test_strategy_choice_is_invisible_without_overload(self):
        """graceful vs none only diverges past the watermarks; the
        empty plan never crosses them."""
        a = run_dynamics(_spec(strategy="graceful"))
        b = run_dynamics(_spec(strategy="none"))
        assert a.scale.digest == b.scale.digest == GOLDEN_ZERO_PLAN


class TestModeParity:
    @pytest.mark.parametrize("preset,faults", [
        ("churn", "none"),
        ("churn", "mixed"),
        ("launch-day", "none"),
    ])
    def test_cohort_equals_per_player(self, preset, faults):
        cohort = run_dynamics(_spec("cohort", faults, preset,
                                    initial_fraction=0.6))
        per_player = run_dynamics(_spec("per-player", faults, preset,
                                        initial_fraction=0.6))
        assert cohort.scale.digest == per_player.scale.digest
        assert cohort.invariants == [] and per_player.invariants == []
        assert (cohort.joins, cohort.leaves, cohort.refused,
                cohort.shed, cohort.evicted, cohort.moves) == (
            per_player.joins, per_player.leaves, per_player.refused,
            per_player.shed, per_player.evicted, per_player.moves)

    def test_mobility_migrates_in_both_modes(self):
        cohort = run_dynamics(_spec("cohort", preset="launch-day",
                                    initial_fraction=0.6))
        assert cohort.moves > 0
        assert cohort.migration_mean_s is not None


class TestSeedDeterminism:
    def test_same_seed_same_shed_set(self):
        """Determinism of the overload ladder down to the identity of
        every shed session, not just the totals."""

        def run():
            k = DynamicsKernel(_spec("cohort", preset="flash-crowd",
                                     intensity=2,
                                     initial_fraction=0.5))
            report = k.run_dynamics()
            return report, list(k.shed_events)

        (r1, shed1), (r2, shed2) = run(), run()
        assert r1.scale.digest == r2.scale.digest
        assert shed1 == shed2
        d1, d2 = r1.to_dict(), r2.to_dict()
        d1["scale"].pop("wall_s"), d2["scale"].pop("wall_s")
        assert d1 == d2

    def test_different_seed_differs(self):
        a = run_dynamics(_spec("cohort", preset="churn",
                               initial_fraction=0.6, seed=2))
        b = run_dynamics(_spec("cohort", preset="churn",
                               initial_fraction=0.6, seed=3))
        assert a.scale.digest != b.scale.digest
