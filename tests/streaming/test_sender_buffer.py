"""Unit tests for the FIFO sender buffer baseline."""

import pytest

from repro.network.packet import PACKET_PAYLOAD_BYTES, VideoSegment
from repro.streaming.sender_buffer import FifoSenderBuffer


def seg(player=0, n_packets=5, deadline_req=0.1, action=0.0):
    return VideoSegment(
        player_id=player,
        quality_level=1,
        size_bytes=PACKET_PAYLOAD_BYTES * n_packets,
        duration_s=0.1,
        action_time_s=action,
        latency_req_s=deadline_req,
        loss_tolerance=0.2,
    )


class TestFifo:
    def test_empty_dequeue_none(self):
        assert FifoSenderBuffer().dequeue() is None

    def test_arrival_order(self):
        buf = FifoSenderBuffer()
        segments = [seg(player=i) for i in range(3)]
        for s in segments:
            buf.enqueue(s, now_s=0.0)
        assert [buf.dequeue().player_id for _ in range(3)] == [0, 1, 2]

    def test_enqueue_stamps_time(self):
        buf = FifoSenderBuffer()
        s = seg()
        buf.enqueue(s, now_s=2.5)
        assert s.enqueued_at_s == 2.5

    def test_counters(self):
        buf = FifoSenderBuffer()
        buf.enqueue(seg(), 0.0)
        buf.enqueue(seg(), 0.0)
        buf.dequeue()
        assert buf.enqueued == 2
        assert buf.dequeued == 1
        assert len(buf) == 1

    def test_peek_nondestructive(self):
        buf = FifoSenderBuffer()
        s = seg(player=9)
        buf.enqueue(s, 0.0)
        assert buf.peek() is s
        assert len(buf) == 1

    def test_peek_empty(self):
        assert FifoSenderBuffer().peek() is None

    def test_backlog_bytes(self):
        buf = FifoSenderBuffer()
        buf.enqueue(seg(n_packets=2), 0.0)
        buf.enqueue(seg(n_packets=3), 0.0)
        assert buf.backlog_bytes == PACKET_PAYLOAD_BYTES * 5

    def test_preceding_bytes(self):
        buf = FifoSenderBuffer()
        first = seg(n_packets=4)
        second = seg(n_packets=2)
        buf.enqueue(first, 0.0)
        buf.enqueue(second, 0.0)
        assert buf.preceding_bytes(first) == 0.0
        assert buf.preceding_bytes(second) == PACKET_PAYLOAD_BYTES * 4

    def test_preceding_bytes_missing_segment(self):
        buf = FifoSenderBuffer()
        buf.enqueue(seg(), 0.0)
        with pytest.raises(ValueError):
            buf.preceding_bytes(seg())

    def test_iter_pending_order(self):
        buf = FifoSenderBuffer()
        segments = [seg(player=i) for i in range(4)]
        for s in segments:
            buf.enqueue(s, 0.0)
        assert [s.player_id for s in buf.iter_pending()] == [0, 1, 2, 3]

    def test_now_arg_ignored(self):
        """FIFO sends everything however late (interface parity)."""
        buf = FifoSenderBuffer()
        s = seg(deadline_req=0.01, action=0.0)
        buf.enqueue(s, 0.0)
        out = buf.dequeue(now_s=100.0)
        assert out is s
        assert out.remaining_packets == out.total_packets
