"""Unit tests for the per-player segment encoder."""

import pytest

from repro.streaming.encoder import SegmentEncoder
from repro.streaming.video import SEGMENT_DURATION_S, get_level


def make_encoder(latency_req_s=0.090, loss_tolerance=0.2, initial=None):
    return SegmentEncoder(
        player_id=7,
        game_latency_req_s=latency_req_s,
        game_loss_tolerance=loss_tolerance,
        initial_level=initial,
    )


class TestInitialLevel:
    def test_defaults_to_highest_feasible(self):
        assert make_encoder(0.090).level == 4

    def test_strict_game_starts_low(self):
        assert make_encoder(0.030).level == 1

    def test_explicit_initial(self):
        assert make_encoder(0.110, initial=2).level == 2

    def test_max_level_cap(self):
        enc = make_encoder(0.070)
        assert enc.max_level == 3


class TestAdjustments:
    def test_up_down(self):
        enc = make_encoder(0.110, initial=3)
        assert enc.adjust_up()
        assert enc.level == 4
        assert enc.adjust_down()
        assert enc.level == 3

    def test_up_capped_at_game_ceiling(self):
        """§III-B: never encode above the game's latency requirement."""
        enc = make_encoder(0.070)  # ceiling = 3
        assert enc.level == 3
        assert not enc.adjust_up()
        assert enc.level == 3

    def test_down_floored_at_level_1(self):
        enc = make_encoder(0.030)
        assert enc.level == 1
        assert not enc.adjust_down()
        assert enc.level == 1

    def test_set_level_clamped(self):
        enc = make_encoder(0.070)
        enc.set_level(5)
        assert enc.level == 3

    def test_set_level_invalid(self):
        with pytest.raises(ValueError):
            make_encoder().set_level(0)

    def test_bitrate_tracks_level(self):
        enc = make_encoder(0.110, initial=2)
        assert enc.bitrate_bps == get_level(2).bitrate_bps
        enc.adjust_up()
        assert enc.bitrate_bps == get_level(3).bitrate_bps


class TestEncoding:
    def test_segment_fields(self):
        enc = make_encoder(0.090, loss_tolerance=0.25)
        seg = enc.encode_segment(
            action_time_s=1.0, now_s=1.06, state_ready_s=1.05)
        assert seg.player_id == 7
        assert seg.quality_level == 4
        assert seg.action_time_s == 1.0
        assert seg.state_ready_s == 1.05
        assert seg.created_at_s == 1.06
        assert seg.latency_req_s == pytest.approx(0.090)
        assert seg.loss_tolerance == pytest.approx(0.25)
        assert seg.duration_s == SEGMENT_DURATION_S

    def test_segment_size_matches_level(self):
        enc = make_encoder(0.090)
        seg = enc.encode_segment(0.0, 0.0)
        assert seg.size_bytes == get_level(4).segment_bytes()

    def test_counters(self):
        enc = make_encoder()
        for k in range(3):
            enc.encode_segment(k * 0.1, k * 0.1)
        assert enc.segments_encoded == 3
        assert enc.bytes_encoded == 3 * get_level(4).segment_bytes()

    def test_level_change_between_segments(self):
        enc = make_encoder(0.110)
        big = enc.encode_segment(0.0, 0.0)
        enc.adjust_down()
        small = enc.encode_segment(0.1, 0.1)
        assert small.size_bytes < big.size_bytes
