"""Unit tests for the playback buffer and QoE accounting."""

import pytest

from repro.network.packet import PACKET_PAYLOAD_BYTES, VideoSegment
from repro.streaming.playback import PlaybackBuffer, PlaybackStats


def make_segment(action_time_s=0.0, latency_req_s=0.1, n_packets=10,
                 loss_tolerance=0.5, duration_s=0.1):
    return VideoSegment(
        player_id=0,
        quality_level=3,
        size_bytes=PACKET_PAYLOAD_BYTES * n_packets,
        duration_s=duration_s,
        action_time_s=action_time_s,
        latency_req_s=latency_req_s,
        loss_tolerance=loss_tolerance,
    )


def make_buffer():
    return PlaybackBuffer(segment_duration_s=0.1)


class TestArrivalAccounting:
    def test_on_time_arrival(self):
        buf = make_buffer()
        buf.on_segment_arrival(make_segment(0.0, 0.1), now_s=0.05)
        st = buf.stats
        assert st.packets_expected == 10
        assert st.packets_on_time == 10
        assert st.packets_late == 0
        assert st.continuity == 1.0

    def test_late_arrival(self):
        buf = make_buffer()
        buf.on_segment_arrival(make_segment(0.0, 0.1), now_s=0.2)
        st = buf.stats
        assert st.packets_on_time == 0
        assert st.packets_late == 10
        assert st.continuity == 0.0

    def test_deadline_uses_state_ready_anchor(self):
        buf = make_buffer()
        seg = make_segment(0.0, 0.1)
        seg.state_ready_s = 0.15
        buf.on_segment_arrival(seg, now_s=0.2)  # 0.2 <= 0.15 + 0.1
        assert buf.stats.packets_on_time == 10

    def test_partially_dropped_segment(self):
        buf = make_buffer()
        seg = make_segment(0.0, 0.1)
        seg.drop(3)
        buf.on_segment_arrival(seg, now_s=0.05)
        st = buf.stats
        assert st.packets_expected == 10
        assert st.packets_on_time == 7
        assert st.packets_dropped == 3
        assert st.continuity == pytest.approx(0.7)

    def test_lost_segment(self):
        buf = make_buffer()
        buf.on_segment_lost(make_segment())
        st = buf.stats
        assert st.packets_expected == 10
        assert st.packets_dropped == 10
        assert st.continuity == 0.0

    def test_latency_tracking(self):
        buf = make_buffer()
        buf.on_segment_arrival(make_segment(1.0, 0.2), now_s=1.08)
        buf.on_segment_arrival(make_segment(1.1, 0.2), now_s=1.22)
        assert buf.stats.mean_latency_s == pytest.approx((0.08 + 0.12) / 2)

    def test_empty_stats(self):
        st = PlaybackStats()
        assert st.continuity == 1.0
        assert st.mean_latency_s == 0.0


class TestSatisfaction:
    def test_satisfied_default(self):
        buf = make_buffer()
        for k in range(20):
            buf.on_segment_arrival(make_segment(k * 0.1, 0.1), k * 0.1 + 0.05)
        assert buf.stats.is_satisfied()

    def test_unsatisfied_when_late(self):
        buf = make_buffer()
        for k in range(20):
            late = 0.2 if k < 5 else 0.05
            buf.on_segment_arrival(make_segment(k * 0.1, 0.1),
                                   k * 0.1 + late)
        assert not buf.stats.is_satisfied()

    def test_loss_tolerance_aware_satisfaction(self):
        """Packets dropped within the game's tolerance do not count
        against the 95 % on-time criterion."""
        buf = make_buffer()
        for k in range(20):
            seg = make_segment(k * 0.1, 0.1, loss_tolerance=0.3)
            seg.drop(2)  # 20% loss, within 30% tolerance
            buf.on_segment_arrival(seg, k * 0.1 + 0.05)
        st = buf.stats
        assert not st.is_satisfied()  # strict reading fails (80% < 95%)
        assert st.is_satisfied(loss_tolerance=0.3)

    def test_loss_above_tolerance_unsatisfies(self):
        buf = make_buffer()
        for k in range(20):
            seg = make_segment(k * 0.1, 0.1, loss_tolerance=0.5)
            seg.drop(4)  # 40% loss
            buf.on_segment_arrival(seg, k * 0.1 + 0.05)
        assert not buf.stats.is_satisfied(loss_tolerance=0.3)

    def test_fractions(self):
        buf = make_buffer()
        seg = make_segment(0.0, 0.1, loss_tolerance=0.5)
        seg.drop(5)
        buf.on_segment_arrival(seg, 0.05)
        st = buf.stats
        assert st.loss_fraction == pytest.approx(0.5)
        assert st.on_time_fraction_of_received == pytest.approx(1.0)


class TestBufferDynamics:
    def test_buffered_video_accumulates(self):
        buf = make_buffer()
        buf.on_segment_arrival(make_segment(duration_s=0.1), now_s=0.0)
        buf.on_segment_arrival(make_segment(duration_s=0.1), now_s=0.0)
        assert buf.buffered_video_s(0.0) == pytest.approx(0.2)
        assert buf.buffered_segments(0.0) == pytest.approx(2.0)

    def test_playback_drains_in_real_time(self):
        buf = make_buffer()
        buf.on_segment_arrival(make_segment(duration_s=0.1), now_s=0.0)
        assert buf.buffered_video_s(0.05) == pytest.approx(0.05)
        assert buf.buffered_video_s(0.1) == pytest.approx(0.0)

    def test_stall_accounting(self):
        buf = make_buffer()
        buf.on_segment_arrival(make_segment(duration_s=0.1), now_s=0.0)
        buf.buffered_video_s(0.5)  # drains dry at 0.1, stalls 0.4
        assert buf.stall_time_s == pytest.approx(0.4)
        assert buf.stall_count == 1

    def test_no_drain_before_playing(self):
        buf = make_buffer()
        assert buf.buffered_video_s(10.0) == 0.0
        assert buf.stall_time_s == 0.0

    def test_partial_segment_contributes_partial_video(self):
        buf = make_buffer()
        seg = make_segment(duration_s=0.1, n_packets=10)
        seg.drop(5)
        buf.on_segment_arrival(seg, now_s=0.0)
        assert buf.buffered_video_s(0.0) == pytest.approx(0.05)
