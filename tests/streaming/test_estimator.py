"""Tests for the literal Eq. 7/8 estimator, including the faithfulness
check against the ground-truth playback buffer."""

import numpy as np
import pytest

from repro.network.packet import PACKET_PAYLOAD_BYTES, VideoSegment
from repro.streaming.estimator import Eq7Estimator
from repro.streaming.playback import PlaybackBuffer

RATE = 800_000.0  # level-3 bitrate


class TestEq7Mechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            Eq7Estimator(0.0)
        with pytest.raises(ValueError):
            Eq7Estimator(RATE, segment_duration_s=0.0)

    def test_starts_empty(self):
        est = Eq7Estimator(RATE)
        assert est.buffered_segments == 0.0

    def test_accumulates_surplus(self):
        """d > b_p grows the buffer at the rate difference."""
        est = Eq7Estimator(RATE)
        est.update(0.0, download_rate_bps=2 * RATE)
        r = est.update(1.0, download_rate_bps=2 * RATE)
        # One second at surplus RATE = 1 s of video = 10 segments of 0.1 s.
        assert est.buffered_video_s == pytest.approx(1.0)
        assert r == pytest.approx(10.0)

    def test_drains_on_deficit(self):
        est = Eq7Estimator(RATE)
        est.update(0.0, 2 * RATE)
        est.update(1.0, 2 * RATE)      # 1 s buffered
        est.update(2.0, 0.0)           # starved for 1 s
        assert est.buffered_video_s == pytest.approx(0.0)

    def test_never_negative(self):
        est = Eq7Estimator(RATE)
        est.update(0.0, RATE)
        est.update(10.0, 0.0)
        assert est.buffered_video_s == 0.0

    def test_time_backwards_rejected(self):
        est = Eq7Estimator(RATE)
        est.update(5.0, RATE)
        with pytest.raises(ValueError):
            est.update(4.0, RATE)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Eq7Estimator(RATE).update(0.0, -1.0)

    def test_rate_change_preserves_seconds(self):
        est = Eq7Estimator(RATE)
        est.update(0.0, 2 * RATE)
        est.update(1.0, 2 * RATE)
        seconds = est.buffered_video_s
        est.set_playback_rate(2 * RATE)
        assert est.buffered_video_s == pytest.approx(seconds)


class TestFaithfulness:
    def test_eq7_tracks_ground_truth(self):
        """Eq. 7 driven by measured download rates must agree with the
        direct buffer accounting within one segment."""
        rng = np.random.default_rng(3)
        tau = 0.1
        seg_bytes = int(RATE * tau / 8)
        buffer = PlaybackBuffer(segment_duration_s=tau)
        est = Eq7Estimator(RATE, segment_duration_s=tau)

        now = 0.0
        est.update(now, 0.0)
        last_arrival = 0.0
        for k in range(100):
            # Variable inter-arrival: surplus then deficit phases.
            gap = 0.05 if k % 20 < 10 else 0.15
            now += gap
            seg = VideoSegment(
                player_id=0, quality_level=3, size_bytes=seg_bytes,
                duration_s=tau, action_time_s=now - 0.05,
                latency_req_s=1.0, loss_tolerance=0.0)
            buffer.on_segment_arrival(seg, now)
            # d(t_k): bits since last arrival over the elapsed time.
            d = 8.0 * seg_bytes / (now - last_arrival)
            est.update(now, d)
            last_arrival = now

            truth = buffer.buffered_segments(now)
            assert est.buffered_segments == pytest.approx(truth, abs=1.01)
