"""Unit tests for the Figure 2 quality ladder."""

import pytest

from repro.streaming.video import (
    FRAME_RATE_FPS,
    MAX_LEVEL,
    MIN_LEVEL,
    QUALITY_LADDER,
    SEGMENT_DURATION_S,
    QualityLevel,
    get_level,
    highest_level_for_latency,
    level_for_bitrate,
    max_adjust_up_factor,
)


class TestLadderContents:
    """The ladder must match paper Figure 2 row for row."""

    EXPECTED = [
        (1, (288, 216), 300_000, 0.030, 0.6),
        (2, (384, 216), 500_000, 0.050, 0.7),
        (3, (640, 480), 800_000, 0.070, 0.8),
        (4, (720, 486), 1_200_000, 0.090, 0.9),
        (5, (1280, 720), 1_800_000, 0.110, 1.0),
    ]

    @pytest.mark.parametrize("row", EXPECTED)
    def test_row(self, row):
        level, res, bitrate, req, rho = row
        ql = get_level(level)
        assert ql.resolution == res
        assert ql.bitrate_bps == bitrate
        assert ql.latency_req_s == pytest.approx(req)
        assert ql.latency_tolerance == pytest.approx(rho)

    def test_five_levels(self):
        assert len(QUALITY_LADDER) == 5
        assert MIN_LEVEL == 1 and MAX_LEVEL == 5

    def test_monotone_bitrate_and_latency(self):
        for lo, hi in zip(QUALITY_LADDER, QUALITY_LADDER[1:]):
            assert hi.bitrate_bps > lo.bitrate_bps
            assert hi.latency_req_s > lo.latency_req_s
            assert hi.latency_tolerance >= lo.latency_tolerance

    def test_frame_rate_is_onlive_30fps(self):
        assert FRAME_RATE_FPS == 30


class TestLookups:
    def test_get_level_bounds(self):
        with pytest.raises(ValueError):
            get_level(0)
        with pytest.raises(ValueError):
            get_level(6)

    def test_highest_level_for_90ms_is_4(self):
        """Paper §III-B: 90 ms requirement -> 1200 kbps (level 4)."""
        assert highest_level_for_latency(0.090).level == 4

    def test_highest_level_for_110ms_is_5(self):
        assert highest_level_for_latency(0.110).level == 5

    def test_strict_requirement_falls_to_lowest(self):
        assert highest_level_for_latency(0.010).level == 1

    def test_between_levels_rounds_down(self):
        assert highest_level_for_latency(0.080).level == 3

    def test_level_for_bitrate_exact(self):
        assert level_for_bitrate(800_000).level == 3

    def test_level_for_bitrate_between(self):
        assert level_for_bitrate(1_000_000).level == 3

    def test_level_for_bitrate_below_min(self):
        assert level_for_bitrate(100_000).level == 1


class TestSegmentBytes:
    def test_segment_size(self):
        ql = get_level(2)  # 500 kbps
        assert ql.segment_bytes(0.1) == round(500_000 * 0.1 / 8)

    def test_minimum_one_byte(self):
        ql = get_level(1)
        assert ql.segment_bytes(1e-9) == 1

    def test_segment_duration_sane(self):
        # A segment must be deliverable within the strictest requirement.
        assert 0.0 < SEGMENT_DURATION_S <= 0.2


class TestBeta:
    def test_beta_is_max_relative_step(self):
        """Eq. 10: the 800->1200 kbps step is the largest (50%)...
        unless another step is bigger; verify against the ladder."""
        steps = [
            (hi.bitrate_bps - lo.bitrate_bps) / lo.bitrate_bps
            for lo, hi in zip(QUALITY_LADDER, QUALITY_LADDER[1:])
        ]
        assert max_adjust_up_factor() == pytest.approx(max(steps))

    def test_beta_value(self):
        # 300->500 is 66.7%, the largest relative step in Figure 2.
        assert max_adjust_up_factor() == pytest.approx(2.0 / 3.0)


class TestValidation:
    def test_bad_bitrate(self):
        with pytest.raises(ValueError):
            QualityLevel(1, (10, 10), 0.0, 0.05, 0.5)

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            QualityLevel(1, (10, 10), 100.0, 0.05, 1.5)
