"""Unit tests for kd-tree partitioning."""

import numpy as np
import pytest

from repro.gameworld.partition import (
    KdTreePartitioner,
    Region,
    uniform_grid_assignment,
)


class TestRegion:
    def test_contains(self):
        r = Region(0, 0, 10, 10)
        assert r.contains((5, 5))
        assert r.contains((0, 10))
        assert not r.contains((11, 5))

    def test_area(self):
        assert Region(0, 0, 4, 5).area == 20.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(5, 0, 0, 10)


class TestKdTree:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            KdTreePartitioner(3)
        KdTreePartitioner(1)
        KdTreePartitioner(8)

    def test_single_region(self, rng):
        kd = KdTreePartitioner(1)
        pos = rng.uniform(0, 100, (50, 2))
        assignment = kd.partition(pos, 100.0)
        assert np.all(assignment == 0)
        assert len(kd.regions) == 1

    def test_assignment_shape_and_range(self, rng):
        kd = KdTreePartitioner(8)
        pos = rng.uniform(0, 100, (200, 2))
        assignment = kd.partition(pos, 100.0)
        assert assignment.shape == (200,)
        assert assignment.min() >= 0
        assert assignment.max() < 8

    def test_balanced_on_uniform(self, rng):
        kd = KdTreePartitioner(16)
        pos = rng.uniform(0, 1000, (1600, 2))
        assignment = kd.partition(pos, 1000.0)
        assert kd.imbalance(assignment) < 1.3

    def test_balanced_on_clustered(self, rng):
        """The Bezerra & Geyer claim: median splits stay balanced even
        when avatars crowd one spot."""
        kd = KdTreePartitioner(16)
        hot = rng.normal(100, 10, (900, 2))
        cold = rng.uniform(0, 1000, (100, 2))
        pos = np.clip(np.vstack([hot, cold]), 0, 1000)
        assignment = kd.partition(pos, 1000.0)
        assert kd.imbalance(assignment) < 1.5

    def test_grid_unbalanced_on_clustered(self, rng):
        hot = rng.normal(100, 10, (900, 2))
        cold = rng.uniform(0, 1000, (100, 2))
        pos = np.clip(np.vstack([hot, cold]), 0, 1000)
        assignment = uniform_grid_assignment(pos, 1000.0, 16)
        loads = np.bincount(assignment, minlength=16)
        assert loads.max() / loads.mean() > 3.0

    def test_regions_tile_the_map(self, rng):
        kd = KdTreePartitioner(8)
        pos = rng.uniform(0, 500, (100, 2))
        kd.partition(pos, 500.0)
        total_area = sum(r.area for r in kd.regions)
        assert total_area == pytest.approx(500.0 * 500.0)

    def test_locate_agrees_with_assignment(self, rng):
        kd = KdTreePartitioner(8)
        pos = rng.uniform(0, 100, (60, 2))
        assignment = kd.partition(pos, 100.0)
        for i in range(60):
            located = kd.locate(pos[i])
            # Boundary points may fall in an adjacent region; at least
            # the located region must contain the point.
            assert located is not None
            assert kd.regions[located].contains(pos[i])

    def test_locate_outside_none(self, rng):
        kd = KdTreePartitioner(4)
        kd.partition(rng.uniform(0, 10, (20, 2)), 10.0)
        assert kd.locate((999.0, 999.0)) is None

    def test_empty_positions(self, rng):
        kd = KdTreePartitioner(4)
        assignment = kd.partition(np.empty((0, 2)), 100.0)
        assert assignment.size == 0
        assert len(kd.regions) == 4

    def test_bad_positions(self, rng):
        with pytest.raises(ValueError):
            KdTreePartitioner(4).partition(np.zeros((5, 3)), 10.0)


class TestUniformGrid:
    def test_square_required(self, rng):
        with pytest.raises(ValueError):
            uniform_grid_assignment(np.zeros((5, 2)), 10.0, 8)

    def test_corner_cells(self):
        pos = np.array([[0.0, 0.0], [9.99, 9.99]])
        assignment = uniform_grid_assignment(pos, 10.0, 4)
        assert assignment[0] == 0
        assert assignment[1] == 3

    def test_boundary_clamped(self):
        pos = np.array([[10.0, 10.0]])
        assignment = uniform_grid_assignment(pos, 10.0, 4)
        assert assignment[0] == 3
