"""Unit tests for AOI filtering and update-message encoding."""

import numpy as np
import pytest

from repro.gameworld.avatar import AVATAR_DELTA_BYTES, AVATAR_STATE_BYTES
from repro.gameworld.interest import AreaOfInterest
from repro.gameworld.updates import (
    UPDATE_HEADER_BYTES,
    UpdateEncoder,
    UpdateMessage,
)
from repro.gameworld.world import World


@pytest.fixture
def world(rng):
    w = World(rng, n_avatars=20)
    return w


class TestAreaOfInterest:
    def test_radius_positive(self):
        with pytest.raises(ValueError):
            AreaOfInterest(radius=0.0)

    def test_excludes_self(self, world):
        aoi = AreaOfInterest(radius=1e6)
        visible = aoi.visible_to(world, 0)
        assert 0 not in visible
        assert visible.size == 19

    def test_radius_filters(self, world):
        # Put avatar 1 next to 0 and avatar 2 far away.
        world.avatars[1].position = world.avatars[0].position + 1.0
        world.avatars[2].position = world.avatars[0].position + 900.0
        aoi = AreaOfInterest(radius=10.0)
        visible = set(aoi.visible_to(world, 0).tolist())
        assert 1 in visible
        assert 2 not in visible

    def test_matrix_matches_scalar(self, world):
        aoi = AreaOfInterest(radius=150.0)
        observers = np.array([0, 3, 7])
        matrix = aoi.visible_matrix(world, observers)
        ids = np.array(sorted(world.avatars))
        for row, obs in enumerate(observers):
            expected = set(aoi.visible_to(world, int(obs)).tolist())
            got = set(ids[matrix[row]].tolist())
            assert got == expected

    def test_interest_set_includes_own_changes(self, world):
        aoi = AreaOfInterest(radius=5.0)
        out = aoi.interest_set(world, np.array([0]), dirty={0})
        assert 0 in out[0]

    def test_interest_set_filters_dirty(self, world):
        world.avatars[1].position = world.avatars[0].position + 1.0
        aoi = AreaOfInterest(radius=10.0)
        out = aoi.interest_set(world, np.array([0]), dirty={1, 15})
        assert 1 in out[0]
        assert 15 not in out[0]


class TestUpdateMessage:
    def test_wire_bytes(self):
        msg = UpdateMessage(0, 1, n_full_states=3, n_deltas=5)
        assert msg.wire_bytes == (UPDATE_HEADER_BYTES
                                  + 3 * AVATAR_STATE_BYTES
                                  + 5 * AVATAR_DELTA_BYTES)

    def test_empty_message(self):
        msg = UpdateMessage(0, 1, 0, 0)
        assert msg.wire_bytes == UPDATE_HEADER_BYTES


class TestUpdateEncoder:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            UpdateEncoder(AreaOfInterest(10.0), full_state_fraction=1.5)

    def test_one_message_per_supernode(self, world, rng):
        enc = UpdateEncoder(AreaOfInterest(100.0))
        dirty = world.step([])
        msgs = enc.encode_tick(world, dirty,
                               {0: [0, 1], 1: [2, 3], 2: []})
        assert len(msgs) == 3
        assert {m.supernode_id for m in msgs} == {0, 1, 2}

    def test_empty_supernode_header_only(self, world):
        enc = UpdateEncoder(AreaOfInterest(100.0))
        msgs = enc.encode_tick(world, {0, 1}, {9: []})
        assert msgs[0].wire_bytes == UPDATE_HEADER_BYTES

    def test_mean_update_bytes_positive(self, world, rng):
        enc = UpdateEncoder(AreaOfInterest(100.0))
        lam = enc.mean_update_bytes(world, rng, {0: list(range(10))},
                                    n_ticks=10)
        assert lam > UPDATE_HEADER_BYTES

    def test_lambda_matches_paper_constant(self, rng):
        """The measured Λ must be the same order as the 2 KB constant
        the main experiments assume (DESIGN.md derivation)."""
        from repro.core.cloud import UPDATE_MESSAGE_BYTES
        from repro.experiments.gameworld_exp import measured_lambda_bytes
        lam = measured_lambda_bytes()
        assert 0.5 * UPDATE_MESSAGE_BYTES < lam < 2.5 * UPDATE_MESSAGE_BYTES

    def test_larger_aoi_bigger_updates(self, rng):
        from repro.experiments.gameworld_exp import measured_lambda_bytes
        small = measured_lambda_bytes(aoi_radius=30.0)
        large = measured_lambda_bytes(aoi_radius=300.0)
        assert large > small
