"""Unit tests for the virtual world."""

import numpy as np
import pytest

from repro.gameworld.actions import Action, ActionKind
from repro.gameworld.avatar import Avatar
from repro.gameworld.world import World, WorldParams


@pytest.fixture
def world(rng):
    return World(rng, n_avatars=10)


class TestAvatar:
    def test_defaults(self):
        a = Avatar(0)
        assert a.alive
        assert a.health == 100.0

    def test_bad_vectors(self):
        with pytest.raises(ValueError):
            Avatar(0, position=np.zeros(3))

    def test_dirty_tracking(self):
        a = Avatar(0)
        assert not a.is_dirty(5)
        a.mark_dirty(5)
        assert a.is_dirty(5)
        assert not a.is_dirty(6)


class TestWorldBasics:
    def test_avatar_count(self, world):
        assert world.n_avatars == 10
        assert world.positions().shape == (10, 2)

    def test_positions_on_map(self, world):
        pos = world.positions()
        assert np.all(pos >= 0)
        assert np.all(pos <= world.params.map_size)

    def test_negative_avatars_rejected(self, rng):
        with pytest.raises(ValueError):
            World(rng, n_avatars=-1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            WorldParams(map_size=0.0)

    def test_empty_world_steps(self, rng):
        w = World(rng, n_avatars=0)
        assert w.step([]) == set()


class TestMovement:
    def test_move_action_sets_course(self, world):
        start = world.avatars[0].position.copy()
        target = (start[0] + 100.0, start[1])
        dirty = world.step([Action(0, ActionKind.MOVE,
                                   target_position=tuple(target))])
        assert 0 in dirty
        moved = world.avatars[0].position
        assert moved[0] > start[0]
        # One tick covers speed x tick distance.
        step = world.params.move_speed * world.params.tick_s
        assert np.hypot(*(moved - start)) == pytest.approx(step)

    def test_movement_continues_without_new_actions(self, world):
        start = world.avatars[0].position.copy()
        world.step([Action(0, ActionKind.MOVE,
                           target_position=(start[0] + 100, start[1]))])
        dirty = world.step([])
        assert 0 in dirty

    def test_arrival_stops(self, world):
        start = world.avatars[0].position.copy()
        near = (float(start[0]) + 0.1, float(start[1]))
        world.step([Action(0, ActionKind.MOVE, target_position=near)])
        assert np.allclose(world.avatars[0].position, near)
        dirty = world.step([])
        assert 0 not in dirty  # journey over

    def test_stop_action(self, world):
        start = world.avatars[0].position.copy()
        world.step([Action(0, ActionKind.MOVE,
                           target_position=(start[0] + 100, start[1]))])
        world.step([Action(0, ActionKind.STOP)])
        pos = world.avatars[0].position.copy()
        world.step([])
        assert np.allclose(world.avatars[0].position, pos)

    def test_target_clamped_to_map(self, world):
        world.step([Action(0, ActionKind.MOVE,
                           target_position=(-500.0, 99999.0))])
        for _ in range(100_000 // 60):
            world.step([])
        pos = world.avatars[0].position
        assert 0 <= pos[0] <= world.params.map_size
        assert 0 <= pos[1] <= world.params.map_size


class TestCombat:
    def _adjacent_pair(self, world):
        a, b = world.avatars[0], world.avatars[1]
        b.position = a.position + np.array([1.0, 0.0])
        return a, b

    def test_strike_in_range_lands(self, world):
        a, b = self._adjacent_pair(world)
        dirty = world.step([Action(0, ActionKind.STRIKE, target_id=1)])
        assert b.health == pytest.approx(
            100.0 - world.params.strike_damage, abs=0.5)
        assert 1 in dirty
        assert world.strikes_landed == 1

    def test_strike_out_of_range_misses(self, world):
        a, b = world.avatars[0], world.avatars[1]
        b.position = a.position + np.array([500.0, 0.0])
        world.step([Action(0, ActionKind.STRIKE, target_id=1)])
        assert b.health == 100.0
        assert world.strikes_missed == 1

    def test_health_floors_at_zero(self, world):
        a, b = self._adjacent_pair(world)
        for _ in range(30):
            world.step([Action(0, ActionKind.STRIKE, target_id=1)])
        assert b.health == 0.0
        assert not b.alive

    def test_dead_avatar_ignores_actions(self, world):
        a, b = self._adjacent_pair(world)
        b.health = 0.0
        dirty = world.step([Action(1, ActionKind.MOVE,
                                   target_position=(0.0, 0.0))])
        assert 1 not in dirty

    def test_regeneration(self, world):
        a = world.avatars[0]
        a.health = 50.0
        for _ in range(20):  # 2 seconds at 10 Hz
            world.step([])
        assert a.health == pytest.approx(52.0, abs=0.2)


class TestActionValidation:
    def test_move_needs_target(self):
        with pytest.raises(ValueError):
            Action(0, ActionKind.MOVE)

    def test_strike_needs_victim(self):
        with pytest.raises(ValueError):
            Action(0, ActionKind.STRIKE)

    def test_wire_bytes(self):
        assert Action(0, ActionKind.IDLE).wire_bytes == 8
        assert Action(0, ActionKind.MOVE,
                      target_position=(1, 1)).wire_bytes == 16


class TestRunTicks:
    def test_dirty_sets_returned(self, rng):
        world = World(rng, n_avatars=20)
        out = world.run_ticks(rng, n_ticks=10)
        assert len(out) == 10
        assert any(len(d) > 0 for d in out)

    def test_tick_counter(self, rng):
        world = World(rng, n_avatars=5)
        world.run_ticks(rng, n_ticks=7)
        assert world.tick == 7
