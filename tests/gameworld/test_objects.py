"""Unit tests for world objects and their update-message integration."""

import numpy as np
import pytest

from repro.gameworld.actions import Action, ActionKind
from repro.gameworld.interest import AreaOfInterest
from repro.gameworld.objects import (
    OBJECT_STATE_BYTES,
    ObjectKind,
    ObjectLayer,
    ObjectState,
    WorldObject,
)
from repro.gameworld.updates import UpdateEncoder, UpdateMessage
from repro.gameworld.world import World


@pytest.fixture
def layer(rng):
    return ObjectLayer(rng, n_objects=20, map_size=1000.0)


class TestWorldObject:
    def test_available_by_default(self):
        obj = WorldObject(0, ObjectKind.CHEST, np.zeros(2))
        assert obj.available

    def test_bad_position(self):
        with pytest.raises(ValueError):
            WorldObject(0, ObjectKind.CHEST, np.zeros(3))

    def test_dirty_tracking(self):
        obj = WorldObject(0, ObjectKind.DOOR, np.zeros(2))
        obj.mark_dirty(4)
        assert obj.is_dirty(4)
        assert not obj.is_dirty(5)


class TestObjectLayer:
    def test_counts_and_positions(self, layer):
        assert layer.n_objects == 20
        assert layer.positions().shape == (20, 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ObjectLayer(rng, -1, 100.0)
        with pytest.raises(ValueError):
            ObjectLayer(rng, 5, 100.0, interact_range=0.0)

    def test_interact_consumes_nearest(self, layer):
        target = layer.objects[0]
        near = target.position + np.array([1.0, 0.0])
        obj = layer.interact(near, tick=1)
        assert obj is not None
        assert not obj.available
        assert layer.interactions == 1

    def test_interact_out_of_range_fails(self, rng):
        layer = ObjectLayer(rng, 1, 1000.0, interact_range=5.0)
        far = layer.objects[0].position + np.array([500.0, 0.0])
        assert layer.interact(far, tick=1) is None
        assert layer.failed_interactions == 1

    def test_consumed_object_not_reusable(self, layer):
        pos = layer.objects[0].position
        first = layer.interact(pos, tick=1)
        second = layer.interact(first.position, tick=2)
        assert second is None or second.object_id != first.object_id

    def test_respawn(self, rng):
        layer = ObjectLayer(rng, 1, 100.0, respawn_ticks=10)
        obj = layer.interact(layer.objects[0].position, tick=0)
        assert obj is not None
        layer.step(5)
        assert not obj.available
        dirty = layer.step(10)
        assert obj.available
        assert obj.object_id in dirty

    def test_empty_layer(self, rng):
        layer = ObjectLayer(rng, 0, 100.0)
        assert layer.interact(np.zeros(2), tick=0) is None


class TestWorldIntegration:
    def test_interact_action_consumes_object(self, rng):
        world = World(rng, n_avatars=1, n_objects=30)
        avatar = world.avatars[0]
        # Teleport an object next to the avatar for determinism.
        world.objects.objects[0].position = avatar.position + 1.0
        dirty = world.step([Action(0, ActionKind.INTERACT, target_id=0)])
        assert world.objects.interactions == 1
        assert 0 in dirty
        assert world.dirty_objects

    def test_interact_without_objects_noop(self, rng):
        world = World(rng, n_avatars=1, n_objects=0)
        dirty = world.step([Action(0, ActionKind.INTERACT, target_id=0)])
        assert 0 not in dirty

    def test_objects_respawn_through_world_ticks(self, rng):
        world = World(rng, n_avatars=1, n_objects=5)
        avatar = world.avatars[0]
        world.objects.objects[0].position = avatar.position + 1.0
        world.step([Action(0, ActionKind.INTERACT, target_id=0)])
        consumed = [o for o in world.objects.objects.values()
                    if not o.available]
        assert consumed
        for _ in range(world.objects.respawn_ticks + 1):
            world.step([])
        assert all(o.available for o in world.objects.objects.values())


class TestUpdateIntegration:
    def test_message_carries_object_bytes(self):
        msg = UpdateMessage(0, 1, n_full_states=0, n_deltas=0, n_objects=3)
        base = UpdateMessage(0, 1, 0, 0, 0)
        assert msg.wire_bytes - base.wire_bytes == 3 * OBJECT_STATE_BYTES

    def test_dirty_object_in_aoi_counted(self, rng):
        world = World(rng, n_avatars=2, n_objects=10)
        avatar = world.avatars[0]
        world.objects.objects[0].position = avatar.position + 1.0
        world.step([Action(0, ActionKind.INTERACT, target_id=0)])
        enc = UpdateEncoder(AreaOfInterest(50.0))
        msgs = enc.encode_tick(world, {0}, {0: [0]})
        assert msgs[0].n_objects >= 1

    def test_far_dirty_object_not_counted(self, rng):
        world = World(rng, n_avatars=2, n_objects=10)
        avatar = world.avatars[0]
        far_obj = world.objects.objects[0]
        far_obj.position = np.clip(avatar.position + 900.0, 0, 1000)
        far_obj.state = ObjectState.CONSUMED
        far_obj.respawn_tick = world.tick + 1
        world.step([])  # respawn marks it dirty
        enc = UpdateEncoder(AreaOfInterest(10.0))
        msgs = enc.encode_tick(world, set(), {0: [0]})
        assert msgs[0].n_objects == 0
