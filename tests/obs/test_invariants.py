"""Invariant checkers must pass clean traces and fail corrupted ones.

Every checker gets a deliberately corrupted trace that must raise
:class:`InvariantViolation` — a checker that cannot catch its own
violation class is dead code.
"""

import pytest

from repro.obs.invariants import (
    LADDER_MAX_LEVEL,
    LADDER_MIN_LEVEL,
    ClockMonotonicityChecker,
    EdfOrderChecker,
    InvariantViolation,
    PacketConservationChecker,
    PlaybackNonNegativeChecker,
    QualityLadderChecker,
    default_checkers,
    run_checkers,
)
from repro.obs.trace import TraceEvent


def ev(t, component, kind, **data):
    return TraceEvent(t, component, kind, data)


def ledger(p_in, p_out, p_drop, p_pend):
    return dict(p_in=p_in, p_out=p_out, p_drop=p_drop, p_pend=p_pend)


class TestPacketConservation:
    def test_clean_ledger_passes(self):
        events = [
            ev(0.0, "server:1", "buffer.enqueue", disc="edf", deadline=1.0,
               **ledger(5, 0, 0, 5)),
            ev(0.1, "server:1", "buffer.drop", disc="edf",
               **ledger(5, 0, 2, 3)),
            ev(0.2, "server:1", "buffer.dequeue", disc="edf", deadline=1.0,
               **ledger(5, 3, 2, 0)),
        ]
        run_checkers(events, [PacketConservationChecker()])

    def test_lost_packet_fails(self):
        # One packet vanished: in=5 but out+drop+pend only covers 4.
        events = [ev(0.0, "server:1", "buffer.enqueue",
                     **ledger(5, 0, 0, 4))]
        with pytest.raises(InvariantViolation, match="conservation"):
            run_checkers(events, [PacketConservationChecker()])

    def test_conjured_packet_fails(self):
        # A packet appeared from nowhere: out+pend exceeds in.
        events = [ev(0.0, "server:1", "buffer.dequeue",
                     **ledger(5, 4, 0, 2))]
        with pytest.raises(InvariantViolation):
            run_checkers(events, [PacketConservationChecker()])

    def test_negative_pending_fails(self):
        events = [ev(0.0, "server:1", "buffer.dequeue",
                     **ledger(5, 6, 0, -1))]
        with pytest.raises(InvariantViolation, match="negative pending"):
            run_checkers(events, [PacketConservationChecker()])

    def test_non_buffer_events_ignored(self):
        run_checkers([ev(0.0, "x", "server.send", bytes=10)],
                     [PacketConservationChecker()])


class TestEdfOrder:
    def test_in_order_dequeues_pass(self):
        events = [
            ev(0.0, "s", "buffer.enqueue", disc="edf", deadline=2.0,
               **ledger(1, 0, 0, 1)),
            ev(0.0, "s", "buffer.enqueue", disc="edf", deadline=1.0,
               **ledger(2, 0, 0, 2)),
            ev(0.1, "s", "buffer.dequeue", disc="edf", deadline=1.0,
               **ledger(2, 1, 0, 1)),
            ev(0.2, "s", "buffer.dequeue", disc="edf", deadline=2.0,
               **ledger(2, 2, 0, 0)),
        ]
        run_checkers(events, [EdfOrderChecker()])

    def test_out_of_order_dequeue_fails(self):
        # Deadline 2.0 is dequeued while 1.0 still queues: EDF violated.
        events = [
            ev(0.0, "s", "buffer.enqueue", disc="edf", deadline=2.0),
            ev(0.0, "s", "buffer.enqueue", disc="edf", deadline=1.0),
            ev(0.1, "s", "buffer.dequeue", disc="edf", deadline=2.0),
        ]
        with pytest.raises(InvariantViolation, match="EDF order"):
            run_checkers(events, [EdfOrderChecker()])

    def test_dequeue_without_enqueue_fails(self):
        events = [ev(0.0, "s", "buffer.dequeue", disc="edf", deadline=1.0)]
        with pytest.raises(InvariantViolation, match="empty"):
            run_checkers(events, [EdfOrderChecker()])

    def test_fifo_buffers_are_exempt(self):
        # The FIFO baseline is *expected* to dequeue past deadlines in
        # arrival order — the checker only audits deadline discipline.
        events = [
            ev(0.0, "s", "buffer.enqueue", disc="fifo", deadline=2.0),
            ev(0.0, "s", "buffer.enqueue", disc="fifo", deadline=1.0),
            ev(0.1, "s", "buffer.dequeue", disc="fifo", deadline=2.0),
        ]
        run_checkers(events, [EdfOrderChecker()])

    def test_components_tracked_independently(self):
        events = [
            ev(0.0, "s1", "buffer.enqueue", disc="edf", deadline=1.0),
            ev(0.0, "s2", "buffer.enqueue", disc="edf", deadline=5.0),
            ev(0.1, "s2", "buffer.dequeue", disc="edf", deadline=5.0),
            ev(0.2, "s1", "buffer.dequeue", disc="edf", deadline=1.0),
        ]
        run_checkers(events, [EdfOrderChecker()])


class TestPlaybackNonNegative:
    def test_nonnegative_levels_pass(self):
        events = [
            ev(0.0, "p", "playback.arrival", buffered_s=0.1, packets=4),
            ev(0.5, "p", "playback.stall", stall_s=0.2),
        ]
        run_checkers(events, [PlaybackNonNegativeChecker()])

    def test_negative_buffer_fails(self):
        events = [ev(0.0, "p", "playback.arrival", buffered_s=-0.01)]
        with pytest.raises(InvariantViolation, match="negative playback"):
            run_checkers(events, [PlaybackNonNegativeChecker()])

    def test_negative_stall_fails(self):
        events = [ev(0.0, "p", "playback.stall", stall_s=-0.5)]
        with pytest.raises(InvariantViolation, match="negative stall"):
            run_checkers(events, [PlaybackNonNegativeChecker()])


class TestQualityLadder:
    def test_all_ladder_levels_pass(self):
        events = [ev(float(i), "p", "encoder.level", level=lvl)
                  for i, lvl in enumerate(
                      range(LADDER_MIN_LEVEL, LADDER_MAX_LEVEL + 1))]
        run_checkers(events, [QualityLadderChecker()])

    @pytest.mark.parametrize("bad_level", [
        LADDER_MIN_LEVEL - 1, LADDER_MAX_LEVEL + 1, 0, -3, 99])
    def test_out_of_ladder_level_fails(self, bad_level):
        events = [ev(0.0, "p", "encoder.level", level=bad_level)]
        with pytest.raises(InvariantViolation, match="outside ladder"):
            run_checkers(events, [QualityLadderChecker()])

    def test_bounds_match_streaming_ladder(self):
        # The obs package keeps the bounds literal to stay
        # import-cycle-free; this is the tripwire that keeps the copies
        # honest if the ladder ever changes.
        from repro.streaming import video
        assert LADDER_MIN_LEVEL == video.MIN_LEVEL
        assert LADDER_MAX_LEVEL == video.MAX_LEVEL


class TestClockMonotonicity:
    def test_monotone_clock_passes(self):
        events = [ev(t, "c", "k") for t in (0.0, 0.0, 0.5, 1.5)]
        run_checkers(events, [ClockMonotonicityChecker()])

    def test_backwards_clock_fails(self):
        events = [ev(1.0, "c", "k"), ev(0.5, "c", "k")]
        with pytest.raises(InvariantViolation, match="backwards"):
            run_checkers(events, [ClockMonotonicityChecker()])

    def test_scheduling_into_the_past_fails(self):
        events = [ev(1.0, "sim", "sim.schedule", at=0.5, event="Timeout")]
        with pytest.raises(InvariantViolation, match="past"):
            run_checkers(events, [ClockMonotonicityChecker()])

    def test_scheduling_forward_passes(self):
        events = [ev(1.0, "sim", "sim.schedule", at=1.5, event="Timeout")]
        run_checkers(events, [ClockMonotonicityChecker()])


class TestSessionReset:
    def test_session_start_resets_clock(self):
        # Back-to-back sessions each restart at t=0; the reset must keep
        # one recorder usable across a whole figure's variants.
        events = [
            ev(5.0, "c", "k"),
            ev(0.0, "session", "session.start", variant="cloud"),
            ev(0.0, "c", "k"),
        ]
        run_checkers(events, [ClockMonotonicityChecker()])

    def test_session_start_resets_edf_heaps(self):
        events = [
            ev(0.0, "s", "buffer.enqueue", disc="edf", deadline=1.0),
            ev(0.0, "session", "session.start", variant="cloud"),
            # The pre-reset enqueue must not leak into the new session.
            ev(0.0, "s", "buffer.enqueue", disc="edf", deadline=5.0),
            ev(0.1, "s", "buffer.dequeue", disc="edf", deadline=5.0),
        ]
        run_checkers(events, [EdfOrderChecker()])


class TestHarness:
    def test_default_checkers_cover_all_five(self):
        names = {c.name for c in default_checkers()}
        assert names == {
            "packet-conservation", "edf-order", "playback-nonnegative",
            "quality-ladder", "clock-monotonicity"}

    def test_violation_message_names_checker_and_event(self):
        events = [ev(3.0, "server:7", "buffer.dequeue", disc="edf",
                     deadline=1.0)]
        with pytest.raises(InvariantViolation) as exc:
            run_checkers(events, [EdfOrderChecker()])
        msg = str(exc.value)
        assert "edf-order" in msg
        assert "server:7" in msg
        assert "t=3.0" in msg

    def test_run_checkers_returns_checkers_on_clean_trace(self):
        out = run_checkers([ev(0.0, "c", "k")])
        assert len(out) == len(default_checkers())
