"""Unit tests for the trace recorder: canonical JSONL and digests."""

import pytest

from repro.obs.trace import TraceEvent, TraceRecorder, load_jsonl, load_trace


def make_recorder(events):
    rec = TraceRecorder()
    for t, comp, kind, data in events:
        rec.emit(t, comp, kind, **data)
    return rec


class TestTraceEvent:
    def test_json_round_trip(self):
        ev = TraceEvent(1.5, "server:3", "buffer.enqueue",
                        {"packets": 8, "deadline": 1.58})
        assert TraceEvent.from_json(ev.to_json()) == ev

    def test_canonical_form_sorts_keys(self):
        a = TraceEvent(0.0, "c", "k", {"b": 1, "a": 2})
        b = TraceEvent(0.0, "c", "k", {"a": 2, "b": 1})
        assert a.to_json() == b.to_json()

    def test_canonical_form_has_no_spaces(self):
        ev = TraceEvent(0.0, "c", "k", {"a": 1})
        assert " " not in ev.to_json()


class TestTraceRecorder:
    def test_emission_order_preserved(self):
        rec = make_recorder([
            (0.0, "a", "k1", {}), (1.0, "b", "k2", {"x": 1})])
        assert [e.kind for e in rec] == ["k1", "k2"]
        assert len(rec) == 2

    def test_digest_is_order_sensitive(self):
        fwd = make_recorder([(0.0, "a", "k", {}), (1.0, "b", "k", {})])
        rev = make_recorder([(1.0, "b", "k", {}), (0.0, "a", "k", {})])
        assert fwd.digest() != rev.digest()

    def test_digest_is_payload_sensitive(self):
        a = make_recorder([(0.0, "a", "k", {"n": 1})])
        b = make_recorder([(0.0, "a", "k", {"n": 2})])
        assert a.digest() != b.digest()

    def test_identical_streams_identical_digest(self):
        events = [(0.0, "a", "k", {"n": 1}), (0.5, "b", "k", {"n": 2})]
        assert make_recorder(events).digest() == \
            make_recorder(events).digest()

    def test_sink_sees_every_event(self):
        seen = []
        rec = TraceRecorder(sink=seen.append)
        rec.emit(0.0, "a", "k", n=1)
        assert seen == [rec.events[0]]

    def test_max_events_safety_valve(self):
        rec = TraceRecorder(max_events=2)
        rec.emit(0.0, "a", "k")
        rec.emit(1.0, "a", "k")
        with pytest.raises(RuntimeError, match="max_events"):
            rec.emit(2.0, "a", "k")

    def test_save_load_round_trip(self, tmp_path):
        rec = make_recorder([
            (0.0, "server:1", "buffer.enqueue", {"packets": 4}),
            (0.1, "player:2", "playback.arrival", {"buffered_s": 0.2}),
        ])
        path = str(tmp_path / "trace.jsonl")
        assert rec.save(path) == 2
        loaded = load_trace(path)
        assert loaded == rec.events

    def test_load_jsonl_skips_blank_lines(self):
        lines = [TraceEvent(0.0, "c", "k", {}).to_json(), "", "   "]
        assert len(load_jsonl(lines)) == 1
