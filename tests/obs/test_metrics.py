"""Unit tests for the metrics instruments and registry aggregation."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    null_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_kind(self):
        assert Counter("x").kind == "counter"


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("q")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0

    def test_can_go_negative(self):
        g = Gauge("q")
        g.dec(3.0)
        assert g.value == -3.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.7, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 1, 1]  # last = +inf overflow
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(sum((0.5, 1.5, 1.7, 3.0, 100.0)) / 5)

    def test_boundary_values_land_in_lower_bucket(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(2.0, 1.0))

    def test_merge(self):
        a = Histogram("lat", bounds=(1.0,))
        b = Histogram("lat", bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 2
        assert a.bucket_counts == [1, 1]
        assert a.min == 0.5 and a.max == 2.0

    def test_merge_rejects_different_bounds(self):
        a = Histogram("lat", bounds=(1.0,))
        b = Histogram("lat", bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_mean_is_zero(self):
        assert Histogram("lat").mean == 0.0


class TestMetricsRegistry:
    def test_duplicate_counters_sum_in_snapshot(self):
        reg = MetricsRegistry()
        # One instrument per component instance, aggregated per run —
        # exactly how every per-server sender buffer registers.
        a = reg.counter("sender.packets_dropped")
        b = reg.counter("sender.packets_dropped")
        a.inc(3)
        b.inc(4)
        snap = reg.snapshot()
        assert snap["sender.packets_dropped"] == {
            "kind": "counter", "value": 7}

    def test_gauges_keep_last_instrument_value(self):
        reg = MetricsRegistry()
        g1 = reg.gauge("qlen")
        g2 = reg.gauge("qlen")
        g1.set(5)
        g2.set(9)
        assert reg.snapshot()["qlen"]["value"] == 9

    def test_histograms_merge_in_snapshot(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", bounds=(1.0,))
        h2 = reg.histogram("lat", bounds=(1.0,))
        h1.observe(0.5)
        h2.observe(3.0)
        entry = reg.snapshot()["lat"]
        assert entry["kind"] == "histogram"
        assert entry["count"] == 2
        assert entry["buckets"] == [1, 1]
        assert entry["min"] == 0.5 and entry["max"] == 3.0

    def test_empty_histogram_snapshot_has_null_extrema(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        entry = reg.snapshot()["lat"]
        assert entry["count"] == 0
        assert entry["min"] is None and entry["max"] is None

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_null_registry_is_fresh(self):
        assert len(null_registry()) == 0


class TestAbsorbSnapshot:
    """Folding per-task registry snapshots into a parent registry —
    the merge step of the parallel sweep engine."""

    @staticmethod
    def task_snapshot(drops, qlen, latencies):
        reg = MetricsRegistry()
        reg.counter("drops").inc(drops)
        reg.gauge("qlen").set(qlen)
        h = reg.histogram("lat", bounds=(1.0, 2.0))
        for v in latencies:
            h.observe(v)
        return reg.snapshot()

    def test_counters_sum_across_tasks(self):
        parent = MetricsRegistry()
        parent.absorb_snapshot(self.task_snapshot(3, 1, [0.5]))
        parent.absorb_snapshot(self.task_snapshot(4, 2, [1.5]))
        assert parent.snapshot()["drops"]["value"] == 7

    def test_last_absorbed_gauge_wins(self):
        parent = MetricsRegistry()
        parent.absorb_snapshot(self.task_snapshot(0, 5, []))
        parent.absorb_snapshot(self.task_snapshot(0, 9, []))
        assert parent.snapshot()["qlen"]["value"] == 9

    def test_histograms_merge_bucketwise(self):
        parent = MetricsRegistry()
        parent.absorb_snapshot(self.task_snapshot(0, 0, [0.5, 1.5]))
        parent.absorb_snapshot(self.task_snapshot(0, 0, [3.0]))
        entry = parent.snapshot()["lat"]
        assert entry["count"] == 3
        assert entry["buckets"] == [1, 1, 1]
        assert entry["min"] == 0.5 and entry["max"] == 3.0
        assert entry["sum"] == pytest.approx(5.0)

    def test_empty_histogram_absorbs_without_poisoning_extrema(self):
        parent = MetricsRegistry()
        parent.absorb_snapshot(self.task_snapshot(0, 0, []))
        parent.absorb_snapshot(self.task_snapshot(0, 0, [1.5]))
        entry = parent.snapshot()["lat"]
        assert entry["min"] == 1.5 and entry["max"] == 1.5

    def test_absorb_equals_direct_observation(self):
        # Absorbing a snapshot must be indistinguishable from having
        # observed the values locally — the determinism contract.
        direct = MetricsRegistry()
        direct.counter("drops").inc(7)
        h = direct.histogram("lat", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        absorbed = MetricsRegistry()
        absorbed.absorb_snapshot(direct.snapshot())
        assert absorbed.snapshot() == direct.snapshot()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry().absorb_snapshot(
                {"x": {"kind": "meter", "value": 1}})
