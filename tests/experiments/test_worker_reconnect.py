"""Worker ``--reconnect``: surviving scheduler EOF with backoff.

A dialing worker historically exited the moment its scheduler hung up.
These tests pin the new behaviour — redial under the capped
exponential-backoff-with-jitter curve, reset after every established
connection, exit only on a clean ``bye`` — against a hand-rolled
scheduler on 127.0.0.1 real sockets.
"""

import socket
import threading

import pytest

from repro.experiments.backends.protocol import recv_frame, send_frame
from repro.experiments.backends.worker import (
    DEFAULT_RECONNECT_BASE_S,
    DEFAULT_RECONNECT_MAX_S,
    reconnect_delay_s,
    run_worker,
)


class TestReconnectDelay:
    def test_envelope_doubles_from_the_base(self):
        # Jitter pinned to its ceiling (u=1) exposes the raw envelope.
        assert reconnect_delay_s(1, u=1.0) == DEFAULT_RECONNECT_BASE_S
        assert reconnect_delay_s(2, u=1.0) == 2 * DEFAULT_RECONNECT_BASE_S
        assert reconnect_delay_s(3, u=1.0) == 4 * DEFAULT_RECONNECT_BASE_S

    def test_envelope_caps(self):
        assert reconnect_delay_s(50, u=1.0) == DEFAULT_RECONNECT_MAX_S
        # Attempt counts far past float-overflow territory still clamp.
        assert reconnect_delay_s(2**31, u=1.0) == DEFAULT_RECONNECT_MAX_S

    def test_jitter_spans_half_to_full_envelope(self):
        env = 2 * DEFAULT_RECONNECT_BASE_S
        assert reconnect_delay_s(2, u=0.0) == pytest.approx(env / 2)
        assert reconnect_delay_s(2, u=0.5) == pytest.approx(0.75 * env)
        for _ in range(20):
            d = reconnect_delay_s(2)
            assert env / 2 <= d <= env

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            reconnect_delay_s(0)


class TestReconnectLoop:
    def _scheduler(self, behaviours):
        """A fake scheduler: accept one connection per behaviour.

        ``"eof"`` hangs up right after the worker's hello; ``"bye"``
        answers it with a clean goodbye frame.
        """
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.bind(("127.0.0.1", 0))
        srv.listen(len(behaviours))
        host, port = srv.getsockname()[:2]
        seen = []

        def serve():
            for behaviour in behaviours:
                sock, _ = srv.accept()
                with sock:
                    kind, payload = recv_frame(sock)
                    seen.append((kind, payload.get("worker")))
                    if behaviour == "bye":
                        send_frame(sock, "bye")
            srv.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return f"{host}:{port}", thread, seen

    def test_exits_without_reconnect_on_eof(self):
        addr, thread, seen = self._scheduler(["eof"])
        rc = run_worker(connect=addr, worker_id="w0", heartbeat_s=30.0)
        thread.join(timeout=5.0)
        assert rc == 0
        assert len(seen) == 1

    def test_redials_after_eof_until_bye(self):
        addr, thread, seen = self._scheduler(["eof", "eof", "bye"])
        sleeps = []
        rc = run_worker(connect=addr, worker_id="w1", heartbeat_s=30.0,
                        reconnect=True, reconnect_base_s=0.01,
                        sleep=sleeps.append)
        thread.join(timeout=5.0)
        assert rc == 0
        assert [k for k, _ in seen] == ["hello"] * 3
        # One backoff sleep per redial; each connection was established,
        # so the curve reset and every delay sits on the first rung.
        assert len(sleeps) == 2
        assert all(0.005 <= d <= 0.01 for d in sleeps)

    def test_unreachable_scheduler_fails_fast_without_reconnect(self):
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.bind(("127.0.0.1", 0))
        host, port = srv.getsockname()[:2]
        srv.close()  # nothing listens here any more
        rc = run_worker(connect=f"{host}:{port}", worker_id="w2",
                        dial_retry_s=0.0)
        assert rc == 1

    def test_reconnect_requires_connect_mode(self):
        with pytest.raises(ValueError):
            run_worker(listen="127.0.0.1:0", reconnect=True)
