"""Tests for the dynamic (join/leave) population simulation."""

import numpy as np
import pytest

from repro.core.infrastructure import SessionConfig, SystemVariant
from repro.experiments.dynamic import DynamicSimulation, run_dynamic
from repro.experiments.scenarios import peersim_scenario


@pytest.fixture(scope="module")
def pop():
    return peersim_scenario(scale=0.15, seed=6).build()


@pytest.fixture(scope="module")
def result(pop):
    return run_dynamic(pop, SystemVariant.CLOUDFOG_B, horizon_s=60.0)


class TestDynamicRun:
    def test_joins_and_leaves_balance(self, result):
        assert result.joins > 0
        # Sessions are capped at the horizon, so everyone who joined
        # also left by the end of the run.
        assert result.leaves == result.joins

    def test_online_count_ramps_up(self, result):
        assert result.online[0] <= max(result.online)
        assert max(result.online) > 3

    def test_fog_serves_majority(self, result):
        later = result.fog_fraction[len(result.fog_fraction) // 2:]
        assert np.mean(later) > 0.5

    def test_qoe_collected(self, result):
        assert len(result.continuities) == result.leaves
        assert all(0.0 <= c <= 1.0 for c in result.continuities)
        assert 0.0 <= result.satisfied_fraction <= 1.0

    def test_slot_utilization_bounded(self, result):
        assert all(0.0 <= u <= 1.0 for u in result.slot_utilization)

    def test_series_export(self, result):
        series = result.series()
        labels = [s.label for s in series]
        assert labels == ["online players", "fog-served fraction",
                          "slot utilization"]
        for s in series:
            assert len(s.x) == len(result.times_s)

    def test_cloud_variant_runs(self, pop):
        res = run_dynamic(pop, SystemVariant.CLOUD, horizon_s=30.0)
        assert res.joins > 0
        assert all(f == 0.0 for f in res.fog_fraction)

    def test_edgecloud_rejected(self, pop):
        with pytest.raises(ValueError):
            DynamicSimulation(pop, SystemVariant.EDGECLOUD)

    def test_slots_released_on_leave(self, pop):
        sim = DynamicSimulation(pop, SystemVariant.CLOUDFOG_B,
                                horizon_s=40.0)
        sim.run()
        # Every session ended, so every slot must be free again.
        assert sim._sn_service.load.sum() == 0

    def test_deterministic(self, pop):
        a = run_dynamic(pop, SystemVariant.CLOUDFOG_B, horizon_s=25.0)
        b = run_dynamic(pop, SystemVariant.CLOUDFOG_B, horizon_s=25.0)
        assert a.joins == b.joins
        assert a.online == b.online
        assert a.continuities == b.continuities

    def test_diurnal_arrivals_concentrate_in_evening(self, pop):
        """With the compressed-day diurnal curve, the back half of the
        horizon (afternoon/evening) sees more joins than the front
        (night/morning trough sits in the first half)."""
        sim = DynamicSimulation(pop, SystemVariant.CLOUDFOG_B,
                                horizon_s=60.0, diurnal=True)
        res = sim.run()
        assert res.joins > 0
        # Peak hour 20:00 maps to t = 50 s of 60; online count near the
        # end should exceed the early-morning trough samples.
        assert res.online[-1] >= res.online[0]

    def test_diurnal_same_daily_volume(self, pop):
        flat = run_dynamic(pop, SystemVariant.CLOUDFOG_B, horizon_s=60.0)
        sim = DynamicSimulation(pop, SystemVariant.CLOUDFOG_B,
                                horizon_s=60.0, diurnal=True)
        diurnal = sim.run()
        # Thinning preserves the daily average rate (Poisson noise aside).
        assert diurnal.joins == pytest.approx(flat.joins, rel=0.5)
